//! Observability: the whole CLX loop under a live metric sink.
//!
//! An `InMemorySink` is attached at session construction, so every layer
//! reports into one place:
//!
//! * `core.phase.*` — per-phase latency histograms of the
//!   Cluster–Label–Transform loop (cluster, label, synthesize, compile,
//!   apply);
//! * `column.builder.*` / `column.interner.*` — column-build shard timings,
//!   interner hit/miss counters, arena byte gauges and eviction batches;
//! * `engine.stream.*` — per-chunk latency and rows/s histograms, the
//!   decision-cache hit/miss counters, memory gauges;
//! * `engine.dispatch.*` — dense vs hashed dispatch-tier hits.
//!
//! The stream runs a 100k-row duplicate-heavy phone workload under a
//! deliberately tight `max_distinct(256)` budget (the column has ~1k
//! distinct values), so interner evictions fire at chunk boundaries and
//! show up in the counters.
//!
//! The same pipeline without a sink pays nothing: no clock reads, no
//! atomic traffic — one `Option` branch per phase (see
//! `benches/telemetry_overhead.rs` for the measurement).
//!
//! Run with: `cargo run --release --example observability`

use std::sync::Arc;

use clx::datagen::duplicate_heavy_case;
use clx::{ClxOptions, ClxSession, InMemorySink, MetricSink, StreamBudget};

fn main() {
    let case = duplicate_heavy_case(100_000, 1_000, 42);
    let sink = InMemorySink::shared();

    // ---- Interactive phase on a sample, observed end to end ----------------
    let sample: Vec<String> = case.data.iter().take(2_000).cloned().collect();
    let session = ClxSession::with_telemetry(
        sample,
        ClxOptions::default(),
        Arc::clone(&sink) as Arc<dyn MetricSink>,
    );
    let session = session
        .label_by_example(&case.target_example)
        .expect("label");
    session.apply().expect("apply");

    // ---- Budgeted streaming ingest of the full column ----------------------
    // max_distinct(256) < ~1k distinct: evictions fire at chunk boundaries.
    let mut stream = session
        .stream_columns_with_budget(StreamBudget::max_distinct(256))
        .expect("compile");
    for rows in case.data.chunks(8_192) {
        stream.push_rows(rows);
    }
    let summary = stream.finish();
    println!(
        "streamed {} rows in {} chunks: {} evictions, decision cache {:.1}% hits ({} hits / {} misses)\n",
        summary.rows(),
        summary.chunks,
        summary.evictions,
        summary.decision_cache_hit_rate() * 100.0,
        summary.decision_cache_hits,
        summary.decision_cache_misses,
    );

    // ---- The live snapshot, both renderings --------------------------------
    let snapshot = sink.snapshot();

    println!("== phase latency (ns) ==");
    for (name, h) in &snapshot.histograms {
        if name.starts_with("core.phase.") {
            println!(
                "{name:<28} count {:>3}  p50 {:>12}  p95 {:>12}  p99 {:>12}",
                h.count, h.p50, h.p95, h.p99
            );
        }
    }

    println!("\n== counters ==");
    for (name, value) in &snapshot.counters {
        println!("{name:<36} {value}");
    }

    println!("\n== gauges ==");
    for (name, value) in &snapshot.gauges {
        println!("{name:<36} {value}");
    }

    println!("\n== JSON export (truncated) ==");
    let json = snapshot.to_json();
    println!("{}...", &json[..json.len().min(400)]);

    println!("\n== Prometheus export (first 20 lines) ==");
    for line in snapshot.to_prometheus().lines().take(20) {
        println!("{line}");
    }

    // The snapshot is live evidence, not decoration: assert the signals the
    // example exists to demonstrate.
    assert!(snapshot.counter("engine.dispatch.dense_hits").unwrap_or(0) > 0);
    assert!(
        snapshot
            .counter("column.interner.eviction_batches")
            .unwrap_or(0)
            > 0
    );
    assert!(snapshot.histogram("engine.stream.chunk_ns").is_some());
    assert!(snapshot.histogram("core.phase.apply_ns").is_some());
}
