//! A miniature version of the paper's §7.2 verification-effort study: run the
//! simulated CLX, FlashFill and RegexReplace users over the `10(2)`,
//! `100(4)` and `300(6)` phone datasets and report how verification effort
//! scales with data size and heterogeneity.
//!
//! Run with: `cargo run --release --example verification_study`

use clx::baselines::{run_clx_user, run_flashfill_user, run_regex_replace_user, UserModel};
use clx::datagen::study_cases;

fn main() {
    let model = UserModel::default();
    println!(
        "{:<10} {:>22} {:>22} {:>22}",
        "case", "RegexReplace (v/total)", "FlashFill (v/total)", "CLX (v/total)"
    );
    for case in study_cases(clx_seed()) {
        let expected: Vec<String> = case
            .data
            .iter()
            .map(|v| {
                let digits: String = v.chars().filter(|c| c.is_ascii_digit()).collect();
                format!("{}-{}-{}", &digits[0..3], &digits[3..6], &digits[6..10])
            })
            .collect();
        let target = case.target_pattern();

        let clx = model.clx_times(&run_clx_user(&case.data, &expected, &target));
        let ff = model.flashfill_times(&run_flashfill_user(&case.data, &expected, 40));
        let (rr_trace, _) = run_regex_replace_user(&case.data, &expected, &target, 40);
        let rr = model.regex_replace_times(&rr_trace);

        let fmt = |t: &clx::baselines::SystemTimes| {
            format!("{:>7.0}s /{:>7.0}s", t.verification_secs, t.completion_secs)
        };
        println!(
            "{:<10} {:>22} {:>22} {:>22}",
            case.name,
            fmt(&rr),
            fmt(&ff),
            fmt(&clx)
        );
    }
    println!(
        "\nThe paper's headline: growing the data 30x grows CLX verification ~1.3x\n\
         but FlashFill verification ~11.4x — rerun `cargo run -p clx-bench --bin exp_fig12`\n\
         for the growth factors measured on this build."
    );
}

fn clx_seed() -> u64 {
    42
}
