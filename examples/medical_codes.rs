//! Example 5 of the paper: normalizing messy medical billing codes into the
//! form `[CPT-XXXX]`, labelling a *generalized* target pattern and inspecting
//! the synthesized UniFi program.
//!
//! Run with: `cargo run --example medical_codes`

use clx::{parse_pattern, ClxSession};

fn main() {
    let column: Vec<String> = ["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    let session = ClxSession::new(column);
    println!("Raw pattern clusters:");
    for (pattern, count) in session.patterns() {
        println!("  {pattern}   ({count} rows)");
    }

    // The user labels the generalized target pattern [ '[', <U>+, '-', <D>+, ']' ].
    let target = parse_pattern("'['<U>+'-'<D>+']'").expect("valid pattern");
    let session = session.label(target).expect("label");

    // The UniFi program of Example 5 (a Switch over Match guards).
    println!("\nSynthesized UniFi program:");
    println!("{}", session.program().pretty());

    // ... explained as regexp Replace operations the user can verify.
    println!("\nExplained as Replace operations:");
    println!(
        "{}",
        session.suggested_operations("codes").expect("explain")
    );

    // Applying it reproduces Table 3 of the paper.
    let report = session.apply().expect("apply");
    println!("\nRaw data          Transformed data");
    for (input, row) in session.data().iter().zip(report.iter_rows()) {
        println!("{:<17} {}", input, row.value());
    }
    assert!(report.is_perfect());
}
