//! Static program diagnostics: proving properties before any row runs.
//!
//! The first half runs the normal CLX loop on a datagen workload and asks
//! the analyzer to certify the synthesized program — six language-level
//! passes (reachability, shadowing, overlap, redundancy, extract safety,
//! output conformance) over the same bit-parallel automaton the compiled
//! engine dispatches with. A program CLX synthesized is clean by
//! construction, and the report proves it: every branch reachable, every
//! extract in bounds.
//!
//! The second half hand-builds a deliberately flawed program — a shadowed
//! branch, an out-of-bounds extract, an output the target provably
//! rejects — and shows the findings, each with a stable `CLX00x` code and
//! machine-readable evidence. `compile` accepts it (default mode only
//! records); `compile_strict` rejects it with the proofs in the error.
//!
//! Run with: `cargo run --release --example analyze`

use std::sync::Arc;

use clx::analyze::analyze_program;
use clx::datagen::duplicate_heavy_case;
use clx::unifi::{Branch, Expr, StringExpr};
use clx::{
    parse_pattern, ClxOptions, ClxSession, DiagnosticCode, InMemorySink, MetricSink, Program,
    Severity,
};

fn main() {
    let case = duplicate_heavy_case(100_000, 1_000, 42);
    let sink = InMemorySink::shared();

    // ---- Certify the synthesized program -----------------------------------
    let sample: Vec<String> = case.data.iter().take(2_000).cloned().collect();
    let session = ClxSession::with_telemetry(
        sample,
        ClxOptions::default(),
        Arc::clone(&sink) as Arc<dyn MetricSink>,
    )
    .label_by_example(&case.target_example)
    .expect("label");

    let report = session.analyze();
    println!("== synthesized program ({} branches) ==", {
        session.program().branches.len()
    });
    println!("{report}");
    assert!(!report.has_errors(), "synthesis produced a flawed program");

    // The strict gate is a no-op for a clean program.
    let compiled = session.compile_strict().expect("clean program compiles");
    let batch = compiled.execute_column(session.data());
    println!(
        "strict compile ok: {} rows transformed, {} flagged\n",
        batch.stats.transformed, batch.stats.flagged
    );

    // ---- Diagnose a hand-built flawed program ------------------------------
    let target = parse_pattern("<D>3'-'<D>4").expect("target");
    let flawed = Program::new(vec![
        // Fires on "NNN.NNNN" rows; its plan rewrites them to the target.
        Branch::new(
            parse_pattern("<D>3'.'<D>4").expect("pattern"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
            ]),
        ),
        // Shadowed: every <D>3'.'<D>4 row is taken by the branch above.
        Branch::new(
            parse_pattern("<D>3'.'<D>4").expect("pattern"),
            Expr::concat(vec![StringExpr::const_str("000-0000")]),
        ),
        // Extract(5) is out of bounds: the source has three tokens.
        Branch::new(
            parse_pattern("<D>+'/'<D>+").expect("pattern"),
            Expr::concat(vec![StringExpr::extract(5)]),
        ),
        // Output is <D>+'-'<D>+, which the <D>3'-'<D>4 target can reject.
        Branch::new(
            parse_pattern("<D>+' '<D>+").expect("pattern"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
            ]),
        ),
    ]);

    let findings = analyze_program(&flawed, &target);
    println!("== hand-built flawed program ==");
    println!("{findings}");
    assert!(findings.has_errors());
    assert!(findings.by_code(DiagnosticCode::ShadowedBranch).count() > 0);
    assert!(findings.by_code(DiagnosticCode::UnsafeExtract).count() > 0);
    assert!(
        findings
            .by_code(DiagnosticCode::UnprovenConformance)
            .count()
            > 0
    );

    // Default compile records; strict compile rejects with the proofs.
    // (The shadowed branch is invisible to ordinary compilation — only the
    // out-of-bounds extract would be caught without the analyzer, so the
    // comparison uses the shadow-only half of the program.)
    let shadowed = Program::new(flawed.branches[..2].to_vec());
    assert!(clx::CompiledProgram::compile(&shadowed, &target).is_ok());
    let rejection = clx::CompiledProgram::compile_strict(&shadowed, &target, None)
        .expect_err("strict mode rejects error findings");
    println!("strict compile says: {rejection}\n");

    // ---- The analyzer's own telemetry --------------------------------------
    let snapshot = sink.snapshot();
    println!("== analyzer metrics ==");
    for (name, h) in &snapshot.histograms {
        if name.starts_with("engine.analyze.") {
            println!("{name:<32} count {:>3}  p50 {:>10} ns", h.count, h.p50);
        }
    }
    for (name, value) in &snapshot.counters {
        if name.starts_with("engine.analyze.") {
            println!("{name:<32} {value}");
        }
    }

    // Live evidence the example exists to demonstrate.
    assert!(snapshot.histogram("engine.analyze.total_ns").is_some());
    assert!(snapshot.counter("engine.analyze.runs").unwrap_or(0) > 0);
    assert_eq!(
        report.errors().count() + report.warnings().count(),
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .count()
    );
}
