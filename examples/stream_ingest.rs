//! Streaming columnar ingest: chunked ingest of a large generated column
//! through `ColumnStream`.
//!
//! The program is synthesized from a small *sample* of the column (the
//! interactive Cluster–Label–Transform loop), then the full column streams
//! through in chunks. Every chunk is interned into the stream's persistent
//! id space, so a value seen in chunk 0 is neither re-tokenized nor
//! re-transformed in chunk 40 — per-chunk work is O(new distinct values),
//! and the stream retains only O(distinct) state no matter how many rows
//! flow through.
//!
//! Run with: `cargo run --release --example stream_ingest`

use clx::datagen::duplicate_heavy_case;
use clx::ClxSession;

fn main() {
    // 200k rows, ≤1k distinct values — the duplicate-heavy shape real
    // columns have.
    let case = duplicate_heavy_case(200_000, 1_000, 42);

    // ---- Interactive phase on a sample -------------------------------------
    let sample: Vec<String> = case.data.iter().take(2_000).cloned().collect();
    let session = ClxSession::new(sample)
        .label_by_example(&case.target_example)
        .expect("label");
    println!(
        "synthesized a {}-branch program targeting {}",
        session.program().len(),
        session.target()
    );

    // ---- Streaming ingest of the full column --------------------------------
    let mut stream = session.stream_columns().expect("compile");
    for (i, rows) in case.data.chunks(16_384).enumerate() {
        let before = stream.interner().distinct_count();
        let report = stream.push_rows(rows);
        println!(
            "chunk {i:>2}: {:>6} rows  {:>4} distinct ({:>3} new)  \
             {:>6} transformed  {:>5} conforming  {:>4} flagged",
            report.len(),
            report.outcomes().len(),
            stream.interner().distinct_count() - before,
            report.stats.transformed,
            report.stats.conforming,
            report.stats.flagged,
        );
    }

    println!(
        "\nstream state: {} distinct values decided, {} leaf plans on the dense index",
        stream.distinct_decided(),
        stream.dispatch_cache().dense_len(),
    );

    let summary = stream.finish();
    println!(
        "ingested {} rows in {} chunks: {} transformed, {} conforming, {} flagged (target {})",
        summary.rows(),
        summary.chunks,
        summary.stats.transformed,
        summary.stats.conforming,
        summary.stats.flagged,
        summary.target,
    );
}
