//! Example 6 of the paper: normalizing employee names into `"Last, F."`,
//! including the *program repair* interaction — when the MDL-ranked default
//! plan picks the wrong field, the user selects one of the ranked
//! alternatives instead of providing more examples.
//!
//! Run with: `cargo run --example employee_names`

use clx::{parse_pattern, ClxSession};

fn main() {
    let column: Vec<String> = [
        "Eran Yahav",
        "Bill Gates",
        "Grace Hopper",
        "Barbara Liskov",
        "Yahav, E.",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Target: "<U><L>+, <U>."  — e.g. "Yahav, E."
    let target = parse_pattern("<U><L>+','' '<U>'.'").expect("valid pattern");
    let mut session = ClxSession::new(column.clone())
        .label(target)
        .expect("label");

    println!("Suggested operations:");
    println!(
        "{}",
        session.suggested_operations("names").expect("explain")
    );

    let report = session.apply().expect("apply");
    println!("\nInitial transformation:");
    for (input, row) in column.iter().zip(report.iter_rows()) {
        println!("  {:<18} -> {}", input, row.value());
    }

    // Verify at the pattern level: is the dominant plan extracting the right
    // fields? If not, repair it by picking a ranked alternative.
    let source = session
        .synthesis()
        .sources
        .iter()
        .map(|s| s.pattern.clone())
        .find(|p| p.matches("Eran Yahav"))
        .expect("a source pattern covers the name rows");
    let alternatives = session
        .alternatives(&source)
        .expect("alternatives")
        .to_vec();
    println!("\nRanked alternative plans for {source}:");
    for (i, alt) in alternatives.iter().enumerate() {
        println!(
            "  [{i}] {}   (description length {:.1})",
            alt.expr, alt.description_length
        );
    }
    // Find the alternative that puts the *last* name first.
    let want = "Yahav, E.";
    for i in 0..alternatives.len() {
        session.repair(&source, i);
        let out = session.apply().expect("apply");
        if out.row(0).value() == want {
            println!("\nRepaired with alternative [{i}]:");
            for (input, row) in column.iter().zip(out.iter_rows()) {
                println!("  {:<18} -> {}", input, row.value());
            }
            break;
        }
    }
}
