//! Quickstart: the paper's motivating example (Section 2).
//!
//! Bob has a column of phone numbers in many formats and wants them all as
//! `xxx-xxx-xxxx`. With CLX he verifies at the *pattern* level: review the
//! cluster list, pick the desired pattern, read the suggested Replace
//! operations, apply.
//!
//! Run with: `cargo run --example quickstart`

use clx::ClxSession;

fn main() {
    let column: Vec<String> = [
        "(734) 645-8397",
        "(734) 763-1147",
        "(734)586-7252",
        "734-422-8073",
        "734-936-2447",
        "734.236.3466",
        "N/A",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // ---- Cluster ----------------------------------------------------------
    let session = ClxSession::new(column);
    println!("Pattern clusters in the raw data (Figure 3):");
    for (pattern, count) in session.patterns() {
        println!(
            "  {:<40} {:>4} rows   e.g. {}",
            clx::pattern::wrangler::pattern_to_wrangler(&pattern),
            count,
            session
                .hierarchy()
                .find_leaf(&pattern)
                .and_then(|n| n.examples.first().cloned())
                .unwrap_or_default()
        );
    }

    // ---- Label -------------------------------------------------------------
    // Bob clicks the pattern he wants everything to look like; labelling
    // consumes the clustered session and unlocks the transform phase.
    let session = session.label_by_example("734-422-8073").expect("label");

    // ---- Transform ---------------------------------------------------------
    println!("\nSuggested data transformation operations (Figure 4):");
    println!(
        "{}",
        session.suggested_operations("column1").expect("explain")
    );

    let report = session.apply().expect("apply");
    println!("\nTransformed column:");
    // `iter_values` borrows straight out of the columnar report — no owned
    // `String` per row, unlike `values()`.
    for (value, row) in report.iter_values().zip(report.iter_rows()) {
        println!("  {:<20} {:?}", value, row);
    }
    println!(
        "\n{} transformed, {} already correct, {} flagged for review",
        report.transformed_count(),
        report.conforming_count(),
        report.flagged_count()
    );

    println!("\nPattern clusters after transformation (Figure 2):");
    for (pattern, count) in session.result_patterns().expect("result patterns") {
        println!(
            "  {:<40} {:>4} rows",
            clx::pattern::wrangler::pattern_to_wrangler(&pattern),
            count
        );
    }
}
