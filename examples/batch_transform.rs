//! Batch execution: compile a session's program once, then serve it.
//!
//! The interactive session (see `quickstart.rs`) is for the human in the
//! loop; this example shows the serving side: `ClxSession::compile()` hands
//! the synthesized program to the `clx-engine` subsystem, which executes it
//! over large columns in parallel chunks, streams columns that do not fit
//! in memory, and caches compiled programs across requests.
//!
//! Run with: `cargo run --release --example batch_transform`

use clx::datagen::large_case;
use clx::engine::ProgramCache;
use clx::{tokenize, ClxSession, TransformReport};

fn main() {
    // ---- Interactive phase: one labelled session ------------------------
    let case = large_case(50_000, 7);
    let session = ClxSession::new(case.data.clone())
        .label(tokenize("734-422-8073"))
        .expect("label");
    println!(
        "session over {} rows, {} pattern clusters",
        case.data.len(),
        session.patterns().len()
    );

    // ---- Compile once --------------------------------------------------
    let compiled = session.compile().expect("program compiles");
    println!(
        "compiled {} branches (fully signature-dispatched: {})",
        compiled.branches().len(),
        compiled.is_fully_transparent()
    );

    // ---- Execute in parallel chunks -------------------------------------
    let report = TransformReport::from_batch(compiled.execute(&case.data));
    println!(
        "parallel apply: {} transformed, {} conforming, {} flagged",
        report.transformed_count(),
        report.conforming_count(),
        report.flagged_count()
    );

    // ---- Stream a column larger than we want in memory ------------------
    let mut stream = compiled.stream();
    for chunk in case.data.chunks(8_192) {
        // In a real pipeline each returned chunk goes straight to a sink.
        let chunk_report = stream.push_chunk(chunk);
        drop(chunk_report);
    }
    let summary = stream.finish();
    println!(
        "streamed {} rows in {} chunks ({} flagged)",
        summary.rows(),
        summary.chunks,
        summary.stats.flagged
    );

    // ---- Cache compiled programs across requests ------------------------
    let cache = ProgramCache::new(32);
    let program = session.program();
    let target = session.target().clone();
    for _ in 0..3 {
        let served = cache.get_or_compile(&program, &target).expect("compile");
        let _ = served.execute(&case.data[..1_000]);
    }
    println!(
        "program cache: {} hits / {} misses over 3 requests",
        cache.hits(),
        cache.misses()
    );
}
