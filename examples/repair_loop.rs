//! The interactive repair loop, incrementally re-verified.
//!
//! The CLX loop the paper describes is *iterative*: the user applies the
//! synthesized program, spots a wrong cluster in the verification view,
//! repairs that one cluster's plan, and looks again. Re-running the whole
//! column after every repair would make the loop O(rows) per click; this
//! example shows the engine's incremental path instead:
//!
//! 1. `apply()` once — the report records its originating program
//!    (provenance);
//! 2. `repair()` one source cluster's plan choice;
//! 3. `reverify(&report)` — the session diffs old vs new program into a
//!    `ProgramDelta`, and patches the existing report in place,
//!    re-deciding **only the distincts the changed branch can affect**.
//!
//! The attached `InMemorySink` proves the claim with live counters:
//! `engine.delta.branches_changed` (how many branches the diff found
//! changed), `engine.delta.distincts_redecided` (how many stored outcomes
//! were actually re-run — the slash-date third of the column, not all of
//! it) and `engine.delta.outcomes_patched` (how many rewrites landed).
//!
//! Run with: `cargo run --release --example repair_loop`

use std::sync::Arc;

use clx::{ClxOptions, ClxSession, InMemorySink, MetricSink, Pattern};

/// A messy date column: `per_format` distinct dates in each of three
/// formats — slash (`12/11/2017`), dot (`12.11.2017`) and the dashed
/// target format itself.
fn date_column(per_format: usize) -> Vec<String> {
    let mut rows = Vec::with_capacity(per_format * 3);
    for i in 0..per_format {
        let month = 1 + (i % 12);
        let day = 1 + (i % 28);
        let year = 1990 + (i % 30);
        rows.push(format!("{month:02}/{day:02}/{year:04}"));
        rows.push(format!("{month:02}.{day:02}.{year:04}"));
        rows.push(format!("{month:02}-{day:02}-{year:04}"));
    }
    rows
}

fn main() {
    let per_format = 300;
    let rows = date_column(per_format);
    let total_rows = rows.len();
    let sink = InMemorySink::shared();

    // ---- Cluster, label, synthesize, apply --------------------------------
    let mut session = ClxSession::with_telemetry(
        rows,
        ClxOptions::default(),
        Arc::clone(&sink) as Arc<dyn MetricSink>,
    )
    .label_by_example("12-11-2017")
    .expect("label");
    let report = session.apply().expect("apply");
    println!(
        "applied to {total_rows} rows ({} distinct): {} transformed, {} conforming, {} flagged",
        report.distinct_outcomes().len(),
        report.transformed_count(),
        report.conforming_count(),
        report.flagged_count(),
    );

    // ---- Repair one cluster -----------------------------------------------
    // The user decides the slash cluster's selected plan is wrong and picks
    // the next ranked alternative for *that cluster only*.
    let slash: Pattern = clx::parse_pattern("<D>2'/'<D>2'/'<D>4").expect("pattern");
    let alternatives = session
        .alternatives(&slash)
        .expect("slash is a source")
        .len();
    assert!(alternatives >= 2, "need a real alternative to repair to");
    assert!(session.repair(&slash, 1), "repair accepted");

    // ---- Re-verify incrementally ------------------------------------------
    let patched = session.reverify(&report).expect("reverify");
    let snapshot = sink.snapshot();
    let redecided = snapshot
        .counter("engine.delta.distincts_redecided")
        .unwrap_or(0);
    println!(
        "repaired slash cluster and re-verified: {redecided} of {} distincts re-decided \
         ({} branches changed, {} outcomes rewritten)",
        patched.distinct_outcomes().len(),
        snapshot
            .counter("engine.delta.branches_changed")
            .unwrap_or(0),
        snapshot
            .counter("engine.delta.outcomes_patched")
            .unwrap_or(0),
    );

    // ---- The patched report is the ground truth ---------------------------
    let fresh = session.apply().expect("fresh apply");
    assert_eq!(patched, fresh, "patched report == full recompute");
    println!("patched report verified equal to a fresh full apply");

    // The point of the exercise: only the repaired cluster's distincts were
    // re-decided — a third of the column, not all of it.
    assert_eq!(redecided as usize, per_format);
    assert!(snapshot.histogram("core.phase.reverify_ns").is_some());
}
