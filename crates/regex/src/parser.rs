//! Recursive-descent parser for the `clx-regex` dialect.
//!
//! The dialect supports the constructs CLX needs to render and execute its
//! explained `Replace` programs, plus enough general syntax for the
//! RegexReplace baseline:
//!
//! * literals and escapes (`\.` `\\` `\d` `\w` `\s`)
//! * `.` (any character)
//! * character classes `[a-z0-9_-]`, negated classes `[^...]`
//! * Wrangler-style named classes `{digit}`, `{lower}`, `{upper}`,
//!   `{alpha}`, `{alnum}` — CLX presents patterns to users in this syntax,
//!   and supporting it here means the program the user *sees* is the program
//!   that is *executed*
//! * grouping `(...)` (capturing) and `(?:...)` (non-capturing)
//! * alternation `|`
//! * quantifiers `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`, each with an optional
//!   lazy `?` suffix
//! * anchors `^` and `$`

use crate::ast::{Ast, CharClass};
use crate::error::RegexError;

/// Parse a pattern string into an [`Ast`], also returning the number of
/// capture groups it defines.
pub fn parse(pattern: &str) -> Result<(Ast, usize), RegexError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parser = Parser {
        chars,
        pos: 0,
        group_count: 0,
        input: pattern,
    };
    let ast = parser.parse_alternation()?;
    if parser.pos != parser.chars.len() {
        return Err(parser.err("unexpected character (unbalanced ')'?)"));
    }
    Ok((ast, parser.group_count))
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    group_count: usize,
    input: &'a str,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> RegexError {
        RegexError::Syntax {
            position: self.byte_pos(),
            message: message.to_string(),
        }
    }

    fn byte_pos(&self) -> usize {
        self.input
            .char_indices()
            .nth(self.pos)
            .map(|(b, _)| b)
            .unwrap_or(self.input.len())
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(items.pop().expect("one item")),
            _ => Ok(Ast::Concat(items)),
        }
    }

    /// repeat := atom quantifier?
    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let start = self.pos;
        let rep = match self.peek() {
            Some('*') => {
                self.bump();
                Some((0, None))
            }
            Some('+') => {
                self.bump();
                Some((1, None))
            }
            Some('?') => {
                self.bump();
                Some((0, Some(1)))
            }
            Some('{') if self.looks_like_counted_repetition() => {
                Some(self.parse_counted_repetition()?)
            }
            _ => None,
        };
        match rep {
            None => Ok(atom),
            Some((min, max)) => {
                if matches!(atom, Ast::StartAnchor | Ast::EndAnchor | Ast::Empty) {
                    self.pos = start;
                    return Err(self.err("quantifier applied to an anchor or empty expression"));
                }
                let greedy = !self.eat('?');
                Ok(Ast::Repeat {
                    ast: Box::new(atom),
                    min,
                    max,
                    greedy,
                })
            }
        }
    }

    /// `{3}`, `{1,}`, `{2,5}` are counted repetitions; `{digit}` is a named
    /// class and must not be treated as a repetition.
    fn looks_like_counted_repetition(&self) -> bool {
        let mut i = self.pos + 1;
        matches!(self.chars.get(i), Some(c) if c.is_ascii_digit()) && {
            while matches!(self.chars.get(i), Some(c) if c.is_ascii_digit()) {
                i += 1;
            }
            if self.chars.get(i) == Some(&',') {
                i += 1;
                while matches!(self.chars.get(i), Some(c) if c.is_ascii_digit()) {
                    i += 1;
                }
            }
            self.chars.get(i) == Some(&'}')
        }
    }

    fn parse_counted_repetition(&mut self) -> Result<(u32, Option<u32>), RegexError> {
        let open_pos = self.byte_pos();
        self.bump(); // '{'
        let min = self.parse_number()?;
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                Some(self.parse_number()?)
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.err("expected '}' to close repetition"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(RegexError::InvalidRepetition {
                    position: open_pos,
                    message: format!("min {min} greater than max {max}"),
                });
            }
        }
        if min > 1000 || max.map(|m| m > 1000).unwrap_or(false) {
            return Err(RegexError::InvalidRepetition {
                position: open_pos,
                message: "repetition bound larger than 1000".into(),
            });
        }
        Ok((min, max))
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().map_err(|_| self.err("number too large"))
    }

    /// atom := '(' ... ')' | '[' ... ']' | '{name}' | '.' | '^' | '$'
    ///       | escape | literal
    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.peek() {
            None => Ok(Ast::Empty),
            Some('(') => {
                self.bump();
                let non_capturing = if self.peek() == Some('?') {
                    if self.chars.get(self.pos + 1) == Some(&':') {
                        self.bump();
                        self.bump();
                        true
                    } else {
                        return Err(self.err("only (?: non-capturing groups are supported"));
                    }
                } else {
                    false
                };
                let index = if non_capturing {
                    0
                } else {
                    self.group_count += 1;
                    self.group_count
                };
                let inner = self.parse_alternation()?;
                if !self.eat(')') {
                    return Err(self.err("expected ')'"));
                }
                if non_capturing {
                    Ok(Ast::NonCapturingGroup(Box::new(inner)))
                } else {
                    Ok(Ast::Group(Box::new(inner), index))
                }
            }
            Some('[') => self.parse_class(),
            Some('{') => self.parse_named_class(),
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('^') => {
                self.bump();
                Ok(Ast::StartAnchor)
            }
            Some('$') => {
                self.bump();
                Ok(Ast::EndAnchor)
            }
            Some('\\') => {
                self.bump();
                match self.bump() {
                    None => Err(self.err("dangling backslash")),
                    Some('d') => Ok(Ast::Class(CharClass::digit())),
                    Some('w') => Ok(Ast::Class(CharClass::alnum())),
                    Some('s') => Ok(Ast::Class(CharClass::whitespace())),
                    Some('D') => {
                        let mut c = CharClass::digit();
                        c.negated = true;
                        Ok(Ast::Class(c))
                    }
                    Some('S') => {
                        let mut c = CharClass::whitespace();
                        c.negated = true;
                        Ok(Ast::Class(c))
                    }
                    Some('n') => Ok(Ast::Literal('\n')),
                    Some('t') => Ok(Ast::Literal('\t')),
                    Some('r') => Ok(Ast::Literal('\r')),
                    Some(c) => Ok(Ast::Literal(c)),
                }
            }
            Some(')') => Err(self.err("unexpected ')'")),
            Some('*') | Some('+') | Some('?') => Err(self.err("quantifier with nothing to repeat")),
            Some(c) => {
                self.bump();
                Ok(Ast::Literal(c))
            }
        }
    }

    /// Named classes in the Wrangler presentation syntax: `{digit}`,
    /// `{lower}`, `{upper}`, `{alpha}`, `{alnum}` (and `{any}` for `.`).
    fn parse_named_class(&mut self) -> Result<Ast, RegexError> {
        let start = self.pos;
        self.bump(); // '{'
        let name_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
            self.bump();
        }
        let name: String = self.chars[name_start..self.pos].iter().collect();
        if !self.eat('}') {
            self.pos = start;
            return Err(self.err("expected '}' to close named class"));
        }
        match name.as_str() {
            "digit" => Ok(Ast::Class(CharClass::digit())),
            "lower" => Ok(Ast::Class(CharClass::lower())),
            "upper" => Ok(Ast::Class(CharClass::upper())),
            "alpha" => Ok(Ast::Class(CharClass::alpha())),
            "alnum" => Ok(Ast::Class(CharClass::alnum())),
            "any" => Ok(Ast::AnyChar),
            other => {
                self.pos = start;
                Err(self.err(&format!("unknown named class {{{other}}}")))
            }
        }
    }

    /// `[...]` character class.
    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        self.bump(); // '['
        let mut class = CharClass::new();
        if self.eat('^') {
            class.negated = true;
        }
        // A ']' immediately after the opening bracket is a literal ']'.
        if self.eat(']') {
            class.push_char(']');
        }
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    match self.bump() {
                        None => return Err(self.err("dangling backslash in class")),
                        Some('d') => {
                            for r in CharClass::digit().ranges {
                                class.ranges.push(r);
                            }
                        }
                        Some('w') => {
                            for r in CharClass::alnum().ranges {
                                class.ranges.push(r);
                            }
                        }
                        Some('s') => {
                            for r in CharClass::whitespace().ranges {
                                class.ranges.push(r);
                            }
                        }
                        Some('n') => class.push_char('\n'),
                        Some('t') => class.push_char('\t'),
                        Some(c) => class.push_char(c),
                    }
                }
                Some(c) => {
                    self.bump();
                    // Range `a-z` unless '-' is the last character before ']'.
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump(); // '-'
                        match self.bump() {
                            None => return Err(self.err("unterminated character class")),
                            Some('\\') => {
                                let esc = self
                                    .bump()
                                    .ok_or_else(|| self.err("dangling backslash in class"))?;
                                class.push_range(c, esc);
                            }
                            Some(hi) => {
                                if hi < c {
                                    return Err(self.err("invalid character range"));
                                }
                                class.push_range(c, hi);
                            }
                        }
                    } else {
                        class.push_char(c);
                    }
                }
            }
        }
        class.normalize();
        Ok(Ast::Class(class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(p: &str) -> (Ast, usize) {
        parse(p).unwrap_or_else(|e| panic!("parse {p:?} failed: {e}"))
    }

    #[test]
    fn literal_concat() {
        let (ast, n) = ok("abc");
        assert_eq!(n, 0);
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn single_char() {
        assert_eq!(ok("a").0, Ast::Literal('a'));
        assert_eq!(ok("").0, Ast::Empty);
    }

    #[test]
    fn escapes() {
        assert_eq!(ok("\\.").0, Ast::Literal('.'));
        assert_eq!(ok("\\(").0, Ast::Literal('('));
        assert_eq!(ok("\\\\").0, Ast::Literal('\\'));
        assert_eq!(ok("\\d").0, Ast::Class(CharClass::digit()));
        assert_eq!(ok("\\n").0, Ast::Literal('\n'));
    }

    #[test]
    fn classes() {
        let (ast, _) = ok("[a-z0-9_-]");
        match ast {
            Ast::Class(c) => {
                assert!(c.contains('q'));
                assert!(c.contains('7'));
                assert!(c.contains('_'));
                assert!(c.contains('-'));
                assert!(!c.contains('A'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn negated_class() {
        let (ast, _) = ok("[^0-9]");
        match ast {
            Ast::Class(c) => {
                assert!(c.negated);
                assert!(!c.contains('3'));
                assert!(c.contains('x'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn class_with_leading_bracket_and_trailing_dash() {
        let (ast, _) = ok("[]a-]");
        match ast {
            Ast::Class(c) => {
                assert!(c.contains(']'));
                assert!(c.contains('a'));
                assert!(c.contains('-'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn named_classes() {
        assert_eq!(ok("{digit}").0, Ast::Class(CharClass::digit()));
        assert_eq!(ok("{alnum}").0, Ast::Class(CharClass::alnum()));
        assert_eq!(ok("{any}").0, Ast::AnyChar);
        assert!(parse("{bogus}").is_err());
    }

    #[test]
    fn named_class_vs_counted_repetition() {
        // {digit}{3} : named class followed by a counted repetition.
        let (ast, _) = ok("{digit}{3}");
        match ast {
            Ast::Repeat { min, max, .. } => {
                assert_eq!(min, 3);
                assert_eq!(max, Some(3));
            }
            other => panic!("expected repeat, got {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        match ok("a+").0 {
            Ast::Repeat {
                min, max, greedy, ..
            } => {
                assert_eq!((min, max, greedy), (1, None, true));
            }
            other => panic!("{other:?}"),
        }
        match ok("a*?").0 {
            Ast::Repeat {
                min, max, greedy, ..
            } => {
                assert_eq!((min, max, greedy), (0, None, false));
            }
            other => panic!("{other:?}"),
        }
        match ok("a?").0 {
            Ast::Repeat { min, max, .. } => assert_eq!((min, max), (0, Some(1))),
            other => panic!("{other:?}"),
        }
        match ok("a{2,5}").0 {
            Ast::Repeat { min, max, .. } => assert_eq!((min, max), (2, Some(5))),
            other => panic!("{other:?}"),
        }
        match ok("a{3,}").0 {
            Ast::Repeat { min, max, .. } => assert_eq!((min, max), (3, None)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn groups_are_numbered_left_to_right() {
        let (ast, n) = ok("(a)((b)c)");
        assert_eq!(n, 3);
        match ast {
            Ast::Concat(items) => {
                assert!(matches!(&items[0], Ast::Group(_, 1)));
                assert!(matches!(&items[1], Ast::Group(_, 2)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_capturing_group() {
        let (ast, n) = ok("(?:ab)+");
        assert_eq!(n, 0);
        assert!(matches!(ast, Ast::Repeat { .. }));
    }

    #[test]
    fn alternation_and_anchors() {
        let (ast, _) = ok("^a|b$");
        assert!(matches!(ast, Ast::Alternate(ref v) if v.len() == 2));
    }

    #[test]
    fn paper_figure_4_regex_parses() {
        let (_, groups) = ok("^\\(({digit}{3})\\)({digit}{3})\\-({digit}{4})$");
        assert_eq!(groups, 3);
    }

    #[test]
    fn errors() {
        assert!(parse("(").is_err());
        assert!(parse(")").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("[a").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a{2000}").is_err());
        assert!(parse("\\").is_err());
        assert!(parse("(?=x)").is_err());
        assert!(parse("^+").is_err());
        assert!(parse("[z-a]").is_err());
    }

    #[test]
    fn curly_brace_without_repetition_or_name_is_error() {
        // `{` that is neither a counted repetition nor a known named class.
        assert!(parse("a{,3}").is_err() || parse("a{,3}").is_ok());
        assert!(parse("{3digit}").is_err());
    }
}
