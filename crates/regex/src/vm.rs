//! Pike-VM execution of compiled regex programs.
//!
//! The VM runs all alternative "threads" of the NFA in lock-step over the
//! input, carrying capture-slot vectors, so matching is linear in
//! `program size × input length` and never backtracks. Thread priority
//! implements leftmost-greedy semantics: earlier threads in the list
//! correspond to preferred alternatives.

use crate::program::{Inst, Program};

/// The capture slots of a successful match: byte... strictly speaking
/// *character* positions are tracked internally; the public API converts to
/// byte offsets. Each group `i` occupies slots `2i` (start) and `2i + 1`
/// (end); a `None` means the group did not participate in the match.
pub type Slots = Vec<Option<usize>>;

struct Thread {
    pc: usize,
    slots: Slots,
}

/// Executes `program` against `chars`, anchored at character position
/// `start`. Returns the capture slots (in character positions) of the best
/// match, if any.
///
/// "Best" follows leftmost-greedy semantics: the match preferred by thread
/// priority, which for greedy quantifiers is the longest available at the
/// earliest position.
pub fn exec_at(program: &Program, chars: &[char], start: usize) -> Option<Slots> {
    let nslots = program.slot_count();
    let mut clist: Vec<Thread> = Vec::new();
    let mut nlist: Vec<Thread> = Vec::new();
    let mut cseen = vec![false; program.insts.len()];
    let mut nseen = vec![false; program.insts.len()];
    let mut best: Option<Slots> = None;

    add_thread(
        program,
        &mut clist,
        &mut cseen,
        Thread {
            pc: 0,
            slots: vec![None; nslots],
        },
        chars,
        start,
    );

    let mut pos = start;
    loop {
        if clist.is_empty() {
            break;
        }
        nlist.clear();
        for f in nseen.iter_mut() {
            *f = false;
        }
        let c = chars.get(pos).copied();
        let mut matched_this_step = false;
        for thread in clist.drain(..) {
            if matched_this_step {
                // A higher-priority thread already matched at this position;
                // lower-priority threads cannot override it.
                break;
            }
            match &program.insts[thread.pc] {
                Inst::Match => {
                    best = Some(thread.slots);
                    matched_this_step = true;
                }
                Inst::Char(expected) => {
                    if c == Some(*expected) {
                        add_thread(
                            program,
                            &mut nlist,
                            &mut nseen,
                            Thread {
                                pc: thread.pc + 1,
                                slots: thread.slots,
                            },
                            chars,
                            pos + 1,
                        );
                    }
                }
                Inst::Any => {
                    if c.is_some() {
                        add_thread(
                            program,
                            &mut nlist,
                            &mut nseen,
                            Thread {
                                pc: thread.pc + 1,
                                slots: thread.slots,
                            },
                            chars,
                            pos + 1,
                        );
                    }
                }
                Inst::Class(class) => {
                    if let Some(ch) = c {
                        if class.contains(ch) {
                            add_thread(
                                program,
                                &mut nlist,
                                &mut nseen,
                                Thread {
                                    pc: thread.pc + 1,
                                    slots: thread.slots,
                                },
                                chars,
                                pos + 1,
                            );
                        }
                    }
                }
                // Epsilon instructions are resolved eagerly by `add_thread`,
                // so encountering them here is impossible.
                Inst::Jmp(_)
                | Inst::Split { .. }
                | Inst::Save(_)
                | Inst::AssertStart
                | Inst::AssertEnd => {
                    unreachable!("epsilon instruction in character step")
                }
            }
        }
        std::mem::swap(&mut clist, &mut nlist);
        std::mem::swap(&mut cseen, &mut nseen);
        if pos >= chars.len() {
            break;
        }
        pos += 1;
    }
    best
}

/// Add a thread to `list`, eagerly following epsilon transitions (jumps,
/// splits, saves, assertions). `pos` is the current character position used
/// for `Save` and the anchors.
fn add_thread(
    program: &Program,
    list: &mut Vec<Thread>,
    seen: &mut [bool],
    thread: Thread,
    chars: &[char],
    pos: usize,
) {
    let Thread { pc, slots } = thread;
    if seen[pc] {
        return;
    }
    seen[pc] = true;
    match &program.insts[pc] {
        Inst::Jmp(target) => add_thread(
            program,
            list,
            seen,
            Thread { pc: *target, slots },
            chars,
            pos,
        ),
        Inst::Split { first, second } => {
            add_thread(
                program,
                list,
                seen,
                Thread {
                    pc: *first,
                    slots: slots.clone(),
                },
                chars,
                pos,
            );
            add_thread(
                program,
                list,
                seen,
                Thread { pc: *second, slots },
                chars,
                pos,
            );
        }
        Inst::Save(slot) => {
            let mut slots = slots;
            slots[*slot] = Some(pos);
            add_thread(
                program,
                list,
                seen,
                Thread { pc: pc + 1, slots },
                chars,
                pos,
            );
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(
                    program,
                    list,
                    seen,
                    Thread { pc: pc + 1, slots },
                    chars,
                    pos,
                );
            }
        }
        Inst::AssertEnd => {
            if pos == chars.len() {
                add_thread(
                    program,
                    list,
                    seen,
                    Thread { pc: pc + 1, slots },
                    chars,
                    pos,
                );
            }
        }
        _ => list.push(Thread { pc, slots }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::program::compile;

    fn run(pattern: &str, text: &str) -> Option<Slots> {
        let (ast, groups) = parse(pattern).unwrap();
        let program = compile(&ast, groups).unwrap();
        let chars: Vec<char> = text.chars().collect();
        exec_at(&program, &chars, 0)
    }

    fn whole(pattern: &str, text: &str) -> Option<(usize, usize)> {
        run(pattern, text).map(|s| (s[0].unwrap(), s[1].unwrap()))
    }

    #[test]
    fn literal_match() {
        assert_eq!(whole("abc", "abc"), Some((0, 3)));
        assert_eq!(whole("abc", "abx"), None);
        // Unanchored semantics at position 0: prefix match succeeds.
        assert_eq!(whole("ab", "abc"), Some((0, 2)));
    }

    #[test]
    fn anchors() {
        assert_eq!(whole("^abc$", "abc"), Some((0, 3)));
        assert_eq!(whole("^abc$", "abcd"), None);
        assert_eq!(whole("^$", ""), Some((0, 0)));
    }

    #[test]
    fn greedy_star_takes_longest() {
        assert_eq!(whole("a*", "aaab"), Some((0, 3)));
        assert_eq!(whole("a*", "bbb"), Some((0, 0)));
    }

    #[test]
    fn lazy_star_takes_shortest() {
        assert_eq!(whole("a*?", "aaa"), Some((0, 0)));
        assert_eq!(whole("a+?", "aaa"), Some((0, 1)));
    }

    #[test]
    fn alternation_prefers_left_branch() {
        // both alternatives match; the left one wins, even though shorter
        assert_eq!(whole("a|ab", "ab"), Some((0, 1)));
        assert_eq!(whole("ab|a", "ab"), Some((0, 2)));
    }

    #[test]
    fn captures_record_group_positions() {
        let slots = run("(a+)(b+)", "aabbb").unwrap();
        assert_eq!(slots[2], Some(0));
        assert_eq!(slots[3], Some(2));
        assert_eq!(slots[4], Some(2));
        assert_eq!(slots[5], Some(5));
    }

    #[test]
    fn optional_group_not_participating_is_none() {
        let slots = run("a(b)?c", "ac").unwrap();
        assert_eq!(slots[2], None);
        assert_eq!(slots[3], None);
    }

    #[test]
    fn counted_repetitions() {
        assert_eq!(whole("[0-9]{3}", "1234"), Some((0, 3)));
        assert_eq!(whole("^[0-9]{3}$", "1234"), None);
        assert_eq!(whole("[0-9]{2,4}", "123456"), Some((0, 4)));
        assert_eq!(whole("[0-9]{2,}", "123456"), Some((0, 6)));
    }

    #[test]
    fn backtracking_free_overlap() {
        // <AN>+-<AN>+ style pattern where the class includes '-'.
        assert_eq!(
            whole("^[a-z-]+x$", "ab-cdx"),
            Some((0, 6)),
            "NFA simulation must handle overlapping class/literal"
        );
    }

    #[test]
    fn pathological_case_is_fast() {
        // (a*)*b against many a's — catastrophic for backtrackers, linear here.
        let text = "a".repeat(200);
        assert_eq!(whole("(a*)*b", &text), None);
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        assert_eq!(whole("", "xyz"), Some((0, 0)));
    }
}
