//! Abstract syntax tree for the `clx-regex` dialect.

/// A set of characters, represented as a union of inclusive ranges.
///
/// Classes are kept small and sorted; membership checks are linear over the
/// ranges, which is plenty for the classes CLX generates (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Inclusive character ranges, sorted by start.
    pub ranges: Vec<(char, char)>,
    /// When `true` the class matches any character *not* in `ranges`.
    pub negated: bool,
}

impl CharClass {
    /// An empty, non-negated class (matches nothing).
    pub fn new() -> Self {
        CharClass {
            ranges: Vec::new(),
            negated: false,
        }
    }

    /// Build a class from ranges.
    pub fn from_ranges(ranges: Vec<(char, char)>) -> Self {
        let mut c = CharClass {
            ranges,
            negated: false,
        };
        c.normalize();
        c
    }

    /// Add a single character.
    pub fn push_char(&mut self, c: char) {
        self.ranges.push((c, c));
    }

    /// Add an inclusive range.
    pub fn push_range(&mut self, lo: char, hi: char) {
        self.ranges.push((lo, hi));
    }

    /// Sort and merge overlapping ranges.
    pub fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            if let Some(last) = merged.last_mut() {
                if lo as u32 <= last.1 as u32 + 1 {
                    if hi > last.1 {
                        last.1 = hi;
                    }
                    continue;
                }
            }
            merged.push((lo, hi));
        }
        self.ranges = merged;
    }

    /// Does the class contain `c`?
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
        inside != self.negated
    }

    /// The `[0-9]` class.
    pub fn digit() -> Self {
        CharClass::from_ranges(vec![('0', '9')])
    }

    /// The `[a-z]` class.
    pub fn lower() -> Self {
        CharClass::from_ranges(vec![('a', 'z')])
    }

    /// The `[A-Z]` class.
    pub fn upper() -> Self {
        CharClass::from_ranges(vec![('A', 'Z')])
    }

    /// The `[a-zA-Z]` class.
    pub fn alpha() -> Self {
        CharClass::from_ranges(vec![('a', 'z'), ('A', 'Z')])
    }

    /// The `[a-zA-Z0-9_-]` class (the paper's `<AN>`).
    pub fn alnum() -> Self {
        CharClass::from_ranges(vec![
            ('a', 'z'),
            ('A', 'Z'),
            ('0', '9'),
            ('_', '_'),
            ('-', '-'),
        ])
    }

    /// The `\s` whitespace class.
    pub fn whitespace() -> Self {
        CharClass::from_ranges(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')])
    }
}

impl Default for CharClass {
    fn default() -> Self {
        CharClass::new()
    }
}

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty expression (matches the empty string).
    Empty,
    /// A single literal character.
    Literal(char),
    /// Any character (`.`).
    AnyChar,
    /// A character class.
    Class(CharClass),
    /// Start-of-string anchor (`^`).
    StartAnchor,
    /// End-of-string anchor (`$`).
    EndAnchor,
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation (`a|b|c`).
    Alternate(Vec<Ast>),
    /// A capturing group `(...)` with its 1-based group index.
    Group(Box<Ast>, usize),
    /// A non-capturing group `(?:...)`.
    NonCapturingGroup(Box<Ast>),
    /// Repetition of a sub-expression.
    Repeat {
        /// The repeated sub-expression.
        ast: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
        /// Greedy (`true`) or lazy (`false`, written with a trailing `?`).
        greedy: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_membership() {
        assert!(CharClass::digit().contains('5'));
        assert!(!CharClass::digit().contains('a'));
        assert!(CharClass::alpha().contains('a'));
        assert!(CharClass::alpha().contains('Z'));
        assert!(!CharClass::alpha().contains('0'));
        assert!(CharClass::alnum().contains('-'));
        assert!(CharClass::alnum().contains('_'));
        assert!(!CharClass::alnum().contains(' '));
        assert!(CharClass::whitespace().contains(' '));
    }

    #[test]
    fn negated_class() {
        let mut c = CharClass::digit();
        c.negated = true;
        assert!(!c.contains('5'));
        assert!(c.contains('a'));
    }

    #[test]
    fn normalize_merges_overlapping_ranges() {
        let c = CharClass::from_ranges(vec![('a', 'f'), ('d', 'k'), ('m', 'p')]);
        assert_eq!(c.ranges, vec![('a', 'k'), ('m', 'p')]);
    }

    #[test]
    fn normalize_merges_adjacent_ranges() {
        let c = CharClass::from_ranges(vec![('a', 'c'), ('d', 'f')]);
        assert_eq!(c.ranges, vec![('a', 'f')]);
    }

    #[test]
    fn push_then_contains() {
        let mut c = CharClass::new();
        c.push_char('x');
        c.push_range('0', '3');
        c.normalize();
        assert!(c.contains('x'));
        assert!(c.contains('2'));
        assert!(!c.contains('9'));
    }
}
