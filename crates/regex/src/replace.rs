//! Replacement-template expansion for `Replace` operations.
//!
//! CLX explains its synthesized programs as regexp replace operations whose
//! replacement strings use `$1`-style group references (Figure 4 of the
//! paper): `Replace '/^({digit}{3})\-({digit}{3})\-({digit}{4})$/' with
//! '($1) $2-$3'`.

use crate::error::RegexError;

/// One piece of a parsed replacement template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplatePart {
    /// Literal text copied verbatim.
    Literal(String),
    /// A `$n` group reference.
    Group(usize),
}

/// A parsed replacement template such as `($1) $2-$3`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplacementTemplate {
    parts: Vec<TemplatePart>,
}

impl ReplacementTemplate {
    /// Parse a template. `$1`..`$99` reference capture groups, `${n}` is the
    /// braced form, and `$$` is a literal dollar sign.
    pub fn parse(template: &str) -> Self {
        let chars: Vec<char> = template.chars().collect();
        let mut parts: Vec<TemplatePart> = Vec::new();
        let mut literal = String::new();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '$' && i + 1 < chars.len() {
                let next = chars[i + 1];
                if next == '$' {
                    literal.push('$');
                    i += 2;
                    continue;
                }
                // ${n}
                if next == '{' {
                    let mut j = i + 2;
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                    if j > i + 2 && chars.get(j) == Some(&'}') {
                        let n: usize = chars[i + 2..j].iter().collect::<String>().parse().unwrap();
                        if !literal.is_empty() {
                            parts.push(TemplatePart::Literal(std::mem::take(&mut literal)));
                        }
                        parts.push(TemplatePart::Group(n));
                        i = j + 1;
                        continue;
                    }
                }
                // $n
                if next.is_ascii_digit() {
                    let mut j = i + 1;
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                    let n: usize = chars[i + 1..j].iter().collect::<String>().parse().unwrap();
                    if !literal.is_empty() {
                        parts.push(TemplatePart::Literal(std::mem::take(&mut literal)));
                    }
                    parts.push(TemplatePart::Group(n));
                    i = j;
                    continue;
                }
            }
            literal.push(chars[i]);
            i += 1;
        }
        if !literal.is_empty() {
            parts.push(TemplatePart::Literal(literal));
        }
        ReplacementTemplate { parts }
    }

    /// The parts of the template.
    pub fn parts(&self) -> &[TemplatePart] {
        &self.parts
    }

    /// The largest group number referenced, if any.
    pub fn max_group(&self) -> Option<usize> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                TemplatePart::Group(n) => Some(*n),
                TemplatePart::Literal(_) => None,
            })
            .max()
    }

    /// Check that every referenced group exists among `available` groups.
    pub fn validate(&self, available: usize) -> Result<(), RegexError> {
        if let Some(max) = self.max_group() {
            if max > available {
                return Err(RegexError::UnknownGroup {
                    group: max,
                    available,
                });
            }
        }
        Ok(())
    }

    /// Expand the template given the text of each group (`groups[0]` is the
    /// whole match). Missing groups expand to the empty string.
    pub fn expand(&self, groups: &[Option<&str>]) -> String {
        let mut out = String::new();
        for part in &self.parts {
            match part {
                TemplatePart::Literal(s) => out.push_str(s),
                TemplatePart::Group(n) => {
                    if let Some(Some(text)) = groups.get(*n) {
                        out.push_str(text);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_groups() {
        let t = ReplacementTemplate::parse("($1) $2-$3");
        assert_eq!(
            t.parts(),
            &[
                TemplatePart::Literal("(".into()),
                TemplatePart::Group(1),
                TemplatePart::Literal(") ".into()),
                TemplatePart::Group(2),
                TemplatePart::Literal("-".into()),
                TemplatePart::Group(3),
            ]
        );
        assert_eq!(t.max_group(), Some(3));
    }

    #[test]
    fn expand_figure_4_style() {
        let t = ReplacementTemplate::parse("($1) $2-$3");
        let out = t.expand(&[Some("734-422-8073"), Some("734"), Some("422"), Some("8073")]);
        assert_eq!(out, "(734) 422-8073");
    }

    #[test]
    fn dollar_escape() {
        let t = ReplacementTemplate::parse("$$1 = $1");
        assert_eq!(t.expand(&[Some("x"), Some("v")]), "$1 = v");
    }

    #[test]
    fn braced_group() {
        let t = ReplacementTemplate::parse("${1}0");
        assert_eq!(t.expand(&[Some("m"), Some("5")]), "50");
    }

    #[test]
    fn multi_digit_group() {
        let t = ReplacementTemplate::parse("$12");
        assert_eq!(t.max_group(), Some(12));
    }

    #[test]
    fn missing_group_expands_empty() {
        let t = ReplacementTemplate::parse("[$1][$2]");
        assert_eq!(t.expand(&[Some("w"), Some("a")]), "[a][]");
        assert_eq!(t.expand(&[Some("w"), None]), "[][]");
    }

    #[test]
    fn trailing_dollar_is_literal() {
        let t = ReplacementTemplate::parse("abc$");
        assert_eq!(t.expand(&[Some("")]), "abc$");
    }

    #[test]
    fn no_groups_is_pure_literal() {
        let t = ReplacementTemplate::parse("hello");
        assert_eq!(t.max_group(), None);
        assert_eq!(t.expand(&[]), "hello");
        assert!(t.validate(0).is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let t = ReplacementTemplate::parse("$3");
        assert!(t.validate(2).is_err());
        assert!(t.validate(3).is_ok());
    }

    #[test]
    fn group_zero_is_whole_match() {
        let t = ReplacementTemplate::parse("<$0>");
        assert_eq!(t.expand(&[Some("whole")]), "<whole>");
    }
}
