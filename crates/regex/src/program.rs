//! Compilation of a parsed [`Ast`] into a Pike-VM instruction sequence.

use crate::ast::{Ast, CharClass};
use crate::error::RegexError;

/// Upper bound on the number of instructions of a compiled program. CLX
/// patterns are tiny; this bound only guards against pathological inputs to
/// the RegexReplace baseline.
pub const MAX_PROGRAM_SIZE: usize = 16_384;

/// A single Pike-VM instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match one specific character.
    Char(char),
    /// Match any character.
    Any,
    /// Match one character belonging to the class.
    Class(CharClass),
    /// Succeed.
    Match,
    /// Unconditional jump.
    Jmp(usize),
    /// Try `first` (preferred) then `second`.
    Split {
        /// Preferred branch (tried first → greedy/lazy preference).
        first: usize,
        /// Alternative branch.
        second: usize,
    },
    /// Save the current input position into capture slot `slot`.
    Save(usize),
    /// Assert start of input.
    AssertStart,
    /// Assert end of input.
    AssertEnd,
}

/// A compiled regular expression program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The instruction sequence.
    pub insts: Vec<Inst>,
    /// Number of capture groups (excluding the implicit whole-match group 0).
    pub group_count: usize,
}

impl Program {
    /// Number of capture slots (2 per group, plus 2 for the whole match).
    pub fn slot_count(&self) -> usize {
        (self.group_count + 1) * 2
    }
}

/// Compile an AST (as returned by [`crate::parser::parse`]) into a
/// [`Program`]. The whole match is wrapped in capture slots 0 and 1.
pub fn compile(ast: &Ast, group_count: usize) -> Result<Program, RegexError> {
    let mut c = Compiler { insts: Vec::new() };
    c.push(Inst::Save(0))?;
    c.compile_ast(ast)?;
    c.push(Inst::Save(1))?;
    c.push(Inst::Match)?;
    Ok(Program {
        insts: c.insts,
        group_count,
    })
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<usize, RegexError> {
        if self.insts.len() >= MAX_PROGRAM_SIZE {
            return Err(RegexError::ProgramTooLarge {
                size: self.insts.len() + 1,
            });
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn compile_ast(&mut self, ast: &Ast) -> Result<(), RegexError> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => self.push(Inst::Char(*c)).map(|_| ()),
            Ast::AnyChar => self.push(Inst::Any).map(|_| ()),
            Ast::Class(c) => self.push(Inst::Class(c.clone())).map(|_| ()),
            Ast::StartAnchor => self.push(Inst::AssertStart).map(|_| ()),
            Ast::EndAnchor => self.push(Inst::AssertEnd).map(|_| ()),
            Ast::Concat(items) => {
                for item in items {
                    self.compile_ast(item)?;
                }
                Ok(())
            }
            Ast::Group(inner, index) => {
                self.push(Inst::Save(index * 2))?;
                self.compile_ast(inner)?;
                self.push(Inst::Save(index * 2 + 1))?;
                Ok(())
            }
            Ast::NonCapturingGroup(inner) => self.compile_ast(inner),
            Ast::Alternate(branches) => self.compile_alternation(branches),
            Ast::Repeat {
                ast,
                min,
                max,
                greedy,
            } => self.compile_repeat(ast, *min, *max, *greedy),
        }
    }

    fn compile_alternation(&mut self, branches: &[Ast]) -> Result<(), RegexError> {
        // Compile branch-by-branch with a chain of splits; collect the jumps
        // at the end of each branch and patch them to the end.
        let mut end_jumps = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_pc = self.push(Inst::Split {
                    first: 0,
                    second: 0,
                })?;
                let branch_start = self.insts.len();
                self.compile_ast(branch)?;
                let jmp_pc = self.push(Inst::Jmp(0))?;
                end_jumps.push(jmp_pc);
                let next_branch = self.insts.len();
                self.insts[split_pc] = Inst::Split {
                    first: branch_start,
                    second: next_branch,
                };
            } else {
                self.compile_ast(branch)?;
            }
        }
        let end = self.insts.len();
        for pc in end_jumps {
            self.insts[pc] = Inst::Jmp(end);
        }
        Ok(())
    }

    fn compile_repeat(
        &mut self,
        ast: &Ast,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    ) -> Result<(), RegexError> {
        // Mandatory copies.
        for _ in 0..min {
            self.compile_ast(ast)?;
        }
        match max {
            None => {
                // `x*` loop after the mandatory prefix.
                let split_pc = self.push(Inst::Split {
                    first: 0,
                    second: 0,
                })?;
                let body_start = self.insts.len();
                self.compile_ast(ast)?;
                self.push(Inst::Jmp(split_pc))?;
                let after = self.insts.len();
                self.insts[split_pc] = if greedy {
                    Inst::Split {
                        first: body_start,
                        second: after,
                    }
                } else {
                    Inst::Split {
                        first: after,
                        second: body_start,
                    }
                };
                Ok(())
            }
            Some(max) => {
                // (max - min) optional copies.
                let mut exit_splits = Vec::new();
                for _ in min..max {
                    let split_pc = self.push(Inst::Split {
                        first: 0,
                        second: 0,
                    })?;
                    exit_splits.push(split_pc);
                    let body_start = self.insts.len();
                    self.compile_ast(ast)?;
                    // Patch later: first/second depend on greediness.
                    self.insts[split_pc] = Inst::Split {
                        first: body_start,
                        second: 0, // patched below
                    };
                }
                let after = self.insts.len();
                for split_pc in exit_splits {
                    let body_start = match &self.insts[split_pc] {
                        Inst::Split { first, .. } => *first,
                        _ => unreachable!("patched instruction must be a split"),
                    };
                    self.insts[split_pc] = if greedy {
                        Inst::Split {
                            first: body_start,
                            second: after,
                        }
                    } else {
                        Inst::Split {
                            first: after,
                            second: body_start,
                        }
                    };
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compiled(pattern: &str) -> Program {
        let (ast, groups) = parse(pattern).unwrap();
        compile(&ast, groups).unwrap()
    }

    #[test]
    fn literal_program_shape() {
        let p = compiled("ab");
        assert_eq!(
            p.insts,
            vec![
                Inst::Save(0),
                Inst::Char('a'),
                Inst::Char('b'),
                Inst::Save(1),
                Inst::Match
            ]
        );
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn group_saves_slots() {
        let p = compiled("(a)");
        assert!(p.insts.contains(&Inst::Save(2)));
        assert!(p.insts.contains(&Inst::Save(3)));
        assert_eq!(p.slot_count(), 4);
    }

    #[test]
    fn star_compiles_to_loop() {
        let p = compiled("a*");
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Split { .. })));
        assert!(p.insts.iter().any(|i| matches!(i, Inst::Jmp(_))));
    }

    #[test]
    fn counted_repetition_expands() {
        let p = compiled("a{3}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn bounded_repetition_has_optional_tail() {
        let p = compiled("a{1,3}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 3);
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split { .. }))
            .count();
        assert_eq!(splits, 2);
    }

    #[test]
    fn program_size_is_bounded() {
        let (ast, groups) = parse("(a{1000}){1000}").unwrap_or_else(|_| parse("a").unwrap());
        // Either the parse is rejected or the compile is; both are fine, but
        // a successful compile must stay under the limit.
        if let Ok(p) = compile(&ast, groups) {
            assert!(p.insts.len() <= MAX_PROGRAM_SIZE);
        }
    }

    #[test]
    fn alternation_compiles_all_branches() {
        let p = compiled("a|b|c");
        for c in ['a', 'b', 'c'] {
            assert!(p.insts.contains(&Inst::Char(c)));
        }
    }
}
