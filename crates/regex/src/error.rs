use std::fmt;

/// Errors produced while parsing or compiling a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Syntax error in the regular expression.
    Syntax {
        /// Byte position of the error within the pattern string.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// A repetition bound such as `{3,1}` is inverted or too large.
    InvalidRepetition {
        /// Byte position of the repetition.
        position: usize,
        /// Description of what is wrong.
        message: String,
    },
    /// A replacement template referenced a capture group that the regular
    /// expression does not define.
    UnknownGroup {
        /// The referenced group number.
        group: usize,
        /// The number of groups the regex defines.
        available: usize,
    },
    /// The compiled program exceeded an internal size limit.
    ProgramTooLarge {
        /// The number of instructions that would have been generated.
        size: usize,
    },
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Syntax { position, message } => {
                write!(f, "regex syntax error at byte {position}: {message}")
            }
            RegexError::InvalidRepetition { position, message } => {
                write!(f, "invalid repetition at byte {position}: {message}")
            }
            RegexError::UnknownGroup { group, available } => write!(
                f,
                "replacement references group ${group} but the regex only has {available} group(s)"
            ),
            RegexError::ProgramTooLarge { size } => {
                write!(f, "compiled regex program too large ({size} instructions)")
            }
        }
    }
}

impl std::error::Error for RegexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RegexError::Syntax {
            position: 2,
            message: "unexpected )".into(),
        };
        assert!(e.to_string().contains("byte 2"));
        let e = RegexError::UnknownGroup {
            group: 3,
            available: 1,
        };
        assert!(e.to_string().contains("$3"));
        let e = RegexError::ProgramTooLarge { size: 100000 };
        assert!(e.to_string().contains("100000"));
        let e = RegexError::InvalidRepetition {
            position: 5,
            message: "min greater than max".into(),
        };
        assert!(e.to_string().contains("byte 5"));
    }
}
