//! # clx-regex
//!
//! A small, self-contained regular-expression engine used by CLX to
//! *execute* the regexp `Replace` operations it presents to users (Figure 4
//! of the paper) and to power the RegexReplace baseline of the evaluation.
//!
//! The engine is a Thompson-NFA ("Pike VM") simulation: matching is linear
//! in pattern-size × input-length, never backtracks, and supports capture
//! groups — exactly what is needed to run `Replace(regex, "$1-$2")`-style
//! transformations safely over large messy columns.
//!
//! Supported syntax is documented on the (private) `parser` module; it notably
//! includes the Wrangler-style named classes (`{digit}`, `{alnum}`, ...) so
//! the regex the CLX user *reads* is the regex that is *run*.
//!
//! # Example
//!
//! ```
//! use clx_regex::Regex;
//!
//! let re = Regex::new(r"^({digit}{3})\-({digit}{3})\-({digit}{4})$").unwrap();
//! assert!(re.is_match("734-422-8073"));
//! assert_eq!(
//!     re.replace_all("734-422-8073", "($1) $2-$3"),
//!     "(734) 422-8073",
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
mod error;
mod parser;
mod program;
mod replace;
mod vm;

pub use error::RegexError;
pub use replace::{ReplacementTemplate, TemplatePart};

use program::Program;

/// A compiled regular expression.
///
/// Compilation happens once in [`Regex::new`]; matching never mutates the
/// compiled Pike-VM program, so a `Regex` is immutable, `Send + Sync`, and
/// can be shared freely across the worker threads of a batch executor such
/// as `clx-engine` (compile once, match everywhere).
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

// The batch-execution layer shares compiled regexes across threads; keep the
// thread-safety guarantee compiler-checked rather than incidental.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Regex>();
    assert_send_sync::<Match>();
    assert_send_sync::<Captures>();
    assert_send_sync::<ReplacementTemplate>();
};

/// A single match: its byte span within the haystack and the matched text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the start of the match.
    pub start: usize,
    /// Byte offset one past the end of the match.
    pub end: usize,
    /// The matched text.
    pub text: String,
}

/// The capture groups of a match. Index 0 is the whole match; groups that
/// did not participate are `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captures {
    groups: Vec<Option<Match>>,
}

impl Captures {
    /// The capture group at `index` (0 = whole match).
    pub fn get(&self, index: usize) -> Option<&Match> {
        self.groups.get(index).and_then(|g| g.as_ref())
    }

    /// The number of groups (including the whole match).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` if there are no groups (never the case for a real match).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Group texts as `Option<&str>` slices suitable for
    /// [`ReplacementTemplate::expand`].
    pub fn group_texts(&self) -> Vec<Option<&str>> {
        self.groups
            .iter()
            .map(|g| g.as_ref().map(|m| m.text.as_str()))
            .collect()
    }
}

impl Regex {
    /// Compile a regular expression.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let (ast, group_count) = parser::parse(pattern)?;
        let program = program::compile(&ast, group_count)?;
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The source pattern this regex was compiled from.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// The number of capture groups (excluding the implicit whole match).
    pub fn group_count(&self) -> usize {
        self.program.group_count
    }

    /// Does the regex match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Does the regex match the *entire* `text`?
    ///
    /// Equivalent to anchoring with `^...$`, which is how CLX uses patterns
    /// as `Match(s, p)` predicates.
    pub fn is_full_match(&self, text: &str) -> bool {
        match self.captures(text) {
            Some(c) => {
                let whole = c.get(0).expect("whole match present");
                whole.start == 0 && whole.end == text.len()
            }
            None => false,
        }
    }

    /// Find the leftmost match in `text`.
    pub fn find(&self, text: &str) -> Option<Match> {
        self.find_at_char(text, 0).map(|(m, _)| m)
    }

    /// Find the leftmost match and return all capture groups.
    pub fn captures(&self, text: &str) -> Option<Captures> {
        let chars: Vec<char> = text.chars().collect();
        let byte_offsets = byte_offsets(text, &chars);
        for start in 0..=chars.len() {
            if let Some(slots) = vm::exec_at(&self.program, &chars, start) {
                return Some(slots_to_captures(&slots, &chars, &byte_offsets));
            }
        }
        None
    }

    /// Iterate over all non-overlapping matches, leftmost-first.
    pub fn find_iter<'t>(&'t self, text: &'t str) -> FindIter<'t> {
        FindIter {
            regex: self,
            text,
            next_char: 0,
            done: false,
        }
    }

    /// Replace every non-overlapping match of the regex in `text` with the
    /// expansion of `template` (see [`ReplacementTemplate`]).
    pub fn replace_all(&self, text: &str, template: &str) -> String {
        let template = ReplacementTemplate::parse(template);
        self.replace_all_template(text, &template)
    }

    /// [`Regex::replace_all`] with a pre-parsed template.
    pub fn replace_all_template(&self, text: &str, template: &ReplacementTemplate) -> String {
        let chars: Vec<char> = text.chars().collect();
        let byte_offsets = byte_offsets(text, &chars);
        let mut out = String::with_capacity(text.len());
        let mut pos = 0usize; // character position
        while pos <= chars.len() {
            let mut found = None;
            for start in pos..=chars.len() {
                if let Some(slots) = vm::exec_at(&self.program, &chars, start) {
                    found = Some(slots_to_captures(&slots, &chars, &byte_offsets));
                    break;
                }
            }
            match found {
                None => break,
                Some(caps) => {
                    let whole = caps.get(0).expect("whole match present").clone();
                    // Copy the text between the previous position and the match.
                    let prefix_start = byte_offsets[pos];
                    out.push_str(&text[prefix_start..whole.start]);
                    out.push_str(&template.expand(&caps.group_texts()));
                    // Advance; for empty matches step one character to avoid
                    // looping forever.
                    let match_end_char = char_pos_of_byte(&byte_offsets, whole.end);
                    if whole.start == whole.end {
                        if match_end_char < chars.len() {
                            out.push(chars[match_end_char]);
                        }
                        pos = match_end_char + 1;
                    } else {
                        pos = match_end_char;
                    }
                }
            }
        }
        if pos <= chars.len() {
            out.push_str(&text[byte_offsets[pos.min(chars.len())]..]);
        }
        out
    }

    /// Internal: find the leftmost match starting at or after character
    /// position `from`; returns the match and the character position of its
    /// end.
    fn find_at_char(&self, text: &str, from: usize) -> Option<(Match, usize)> {
        let chars: Vec<char> = text.chars().collect();
        let byte_offsets = byte_offsets(text, &chars);
        for start in from..=chars.len() {
            if let Some(slots) = vm::exec_at(&self.program, &chars, start) {
                let s = slots[0].expect("slot 0 set on match");
                let e = slots[1].expect("slot 1 set on match");
                let m = Match {
                    start: byte_offsets[s],
                    end: byte_offsets[e],
                    text: chars[s..e].iter().collect(),
                };
                return Some((m, e));
            }
        }
        None
    }
}

/// Iterator over non-overlapping matches; see [`Regex::find_iter`].
pub struct FindIter<'t> {
    regex: &'t Regex,
    text: &'t str,
    next_char: usize,
    done: bool,
}

impl Iterator for FindIter<'_> {
    type Item = Match;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let (m, end_char) = self.regex.find_at_char(self.text, self.next_char)?;
        if m.start == m.end {
            // empty match: advance by one character to guarantee progress
            self.next_char = end_char + 1;
        } else {
            self.next_char = end_char;
        }
        if self.next_char > self.text.chars().count() {
            self.done = true;
        }
        Some(m)
    }
}

fn byte_offsets(text: &str, chars: &[char]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(chars.len() + 1);
    let mut off = 0;
    for c in chars {
        offsets.push(off);
        off += c.len_utf8();
    }
    offsets.push(text.len());
    offsets
}

fn char_pos_of_byte(byte_offsets: &[usize], byte: usize) -> usize {
    byte_offsets
        .iter()
        .position(|&b| b == byte)
        .expect("byte offset on a character boundary")
}

fn slots_to_captures(slots: &[Option<usize>], chars: &[char], byte_offsets: &[usize]) -> Captures {
    let groups = slots
        .chunks(2)
        .map(|pair| match (pair[0], pair[1]) {
            (Some(s), Some(e)) => Some(Match {
                start: byte_offsets[s],
                end: byte_offsets[e],
                text: chars[s..e].iter().collect(),
            }),
            _ => None,
        })
        .collect();
    Captures { groups }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_match_and_full_match() {
        let re = Regex::new("[0-9]{3}").unwrap();
        assert!(re.is_match("abc123def"));
        assert!(!re.is_match("abcdef"));
        assert!(re.is_full_match("123"));
        assert!(!re.is_full_match("1234"));
        assert!(!re.is_full_match("a123"));
    }

    #[test]
    fn find_reports_byte_spans() {
        let re = Regex::new("[0-9]+").unwrap();
        let m = re.find("ab 123 cd").unwrap();
        assert_eq!((m.start, m.end), (3, 6));
        assert_eq!(m.text, "123");
    }

    #[test]
    fn find_leftmost_not_longest_overall() {
        let re = Regex::new("[0-9]+").unwrap();
        let m = re.find("a1b22222").unwrap();
        assert_eq!(m.text, "1");
    }

    #[test]
    fn captures_groups() {
        let re = Regex::new(r"^\(([0-9]{3})\) ([0-9]{3})-([0-9]{4})$").unwrap();
        let caps = re.captures("(734) 645-8397").unwrap();
        assert_eq!(caps.get(1).unwrap().text, "734");
        assert_eq!(caps.get(2).unwrap().text, "645");
        assert_eq!(caps.get(3).unwrap().text, "8397");
        assert_eq!(caps.len(), 4);
    }

    #[test]
    fn replace_all_phone_example_from_figure_4() {
        let re = Regex::new(r"^([0-9]{3})\-([0-9]{3})\-([0-9]{4})$").unwrap();
        assert_eq!(
            re.replace_all("734-422-8073", "($1) $2-$3"),
            "(734) 422-8073"
        );
        // Non-matching strings are untouched.
        assert_eq!(re.replace_all("N/A", "($1) $2-$3"), "N/A");
    }

    #[test]
    fn replace_all_with_wrangler_named_classes() {
        let re = Regex::new(r"^\(({digit}{3})\)({digit}{3})\-({digit}{4})$").unwrap();
        assert_eq!(
            re.replace_all("(734)586-7252", "($1) $2-$3"),
            "(734) 586-7252"
        );
    }

    #[test]
    fn replace_all_multiple_occurrences() {
        let re = Regex::new("[0-9]+").unwrap();
        assert_eq!(re.replace_all("a1b22c333", "<$0>"), "a<1>b<22>c<333>");
    }

    #[test]
    fn replace_all_empty_match_progresses() {
        let re = Regex::new("x*").unwrap();
        // Every position matches the empty string; must terminate and keep
        // the original characters.
        let out = re.replace_all("ab", "-");
        assert!(out.contains('a') && out.contains('b'));
    }

    #[test]
    fn find_iter_collects_all() {
        let re = Regex::new("[0-9]+").unwrap();
        let all: Vec<String> = re.find_iter("1 22 333").map(|m| m.text).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_on_no_match_is_empty() {
        let re = Regex::new("[0-9]+").unwrap();
        assert_eq!(re.find_iter("abc").count(), 0);
    }

    #[test]
    fn unicode_text() {
        let re = Regex::new("[0-9]+").unwrap();
        let m = re.find("héllo 42").unwrap();
        assert_eq!(m.text, "42");
        assert_eq!(&"héllo 42"[m.start..m.end], "42");
    }

    #[test]
    fn group_count() {
        assert_eq!(Regex::new("(a)(b)").unwrap().group_count(), 2);
        assert_eq!(Regex::new("ab").unwrap().group_count(), 0);
    }

    #[test]
    fn as_str_roundtrip() {
        let re = Regex::new("a+b").unwrap();
        assert_eq!(re.as_str(), "a+b");
    }

    #[test]
    fn invalid_pattern_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new("[").is_err());
    }

    #[test]
    fn alternation_in_replace() {
        let re = Regex::new("(cat|dog)").unwrap();
        assert_eq!(re.replace_all("cat dog cow", "pet"), "pet pet cow");
    }
}
