//! The program-synthesis framework (Section 6, Algorithm 2 of the paper).
//!
//! Given the pattern-cluster hierarchy and the user-labelled target pattern,
//! the synthesizer traverses the hierarchy top-down, validates candidate
//! source patterns with the token-frequency heuristic, aligns each accepted
//! candidate against the target, and ranks the resulting atomic
//! transformation plans by description length. The best plan per source
//! pattern forms the default UniFi program; the remaining ranked plans are
//! kept as repair alternatives (§6.4).

use clx_cluster::{ClusterNode, PatternHierarchy};
use clx_column::Column;
use clx_pattern::Pattern;
use clx_unifi::{eval_expr, eval_expr_on_slices, Branch, Expr, Program};

use crate::align::align;
use crate::dedup::dedup_plans;
use crate::mdl::rank_plans;
use crate::validate::validate;

/// Options controlling synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisOptions {
    /// Cap on the number of plans enumerated from one alignment DAG before
    /// ranking. Small patterns enumerate exhaustively well below this cap.
    pub max_plans_per_source: usize,
    /// Number of ranked, deduplicated alternative plans kept per source
    /// pattern for the repair interaction.
    pub top_k: usize,
    /// Drop candidate source patterns whose whole language is already
    /// claimed by branches that precede them in the synthesized program
    /// (first-match semantics would starve such a branch, so skipping it —
    /// and its children, whose languages are subsets — changes no output;
    /// see [`Synthesis::pruned`]). On by default; turn off to see every
    /// candidate the hierarchy offered.
    pub prune_unreachable: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            max_plans_per_source: 2_000,
            top_k: 5,
            prune_unreachable: true,
        }
    }
}

/// A ranked atomic transformation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPlan {
    /// The plan.
    pub expr: Expr,
    /// Its description length (lower = simpler = preferred).
    pub description_length: f64,
}

/// The synthesis result for one candidate source pattern.
#[derive(Debug, Clone)]
pub struct SourceSynthesis {
    /// The source pattern (a node of the hierarchy accepted by `validate`).
    pub pattern: Pattern,
    /// Deduplicated plans, simplest first (at most `top_k`).
    pub plans: Vec<RankedPlan>,
    /// Index into `plans` of the currently selected plan (0 unless repaired).
    pub chosen: usize,
    /// Number of data rows covered by this source pattern's cluster.
    pub rows: usize,
}

impl SourceSynthesis {
    /// The currently selected plan.
    pub fn selected(&self) -> &Expr {
        &self.plans[self.chosen].expr
    }
}

/// The complete output of synthesis over a hierarchy.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The labelled target pattern.
    pub target: Pattern,
    /// Per-source synthesis results, ordered by descending cluster size.
    pub sources: Vec<SourceSynthesis>,
    /// Patterns whose rows already match the target (no transformation
    /// needed).
    pub already_correct: Vec<Pattern>,
    /// Leaf patterns for which no transformation could be synthesized; their
    /// rows are left unchanged and flagged for review (§6.1).
    pub rejected: Vec<Pattern>,
    /// Candidate source patterns dropped before MDL ranking because the
    /// branches ordered ahead of them already claim their whole language
    /// (the static dead/shadow verdict): such a branch could never fire,
    /// so its rows are transformed by the covering branches either way.
    /// Empty when [`SynthesisOptions::prune_unreachable`] is off.
    pub pruned: Vec<Pattern>,
}

impl Synthesis {
    /// Build the UniFi program from the currently selected plans.
    pub fn program(&self) -> Program {
        Program::new(
            self.sources
                .iter()
                .map(|s| Branch::new(s.pattern.clone(), s.selected().clone()))
                .collect(),
        )
    }

    /// The repair alternatives for a source pattern.
    pub fn alternatives(&self, pattern: &Pattern) -> Option<&[RankedPlan]> {
        self.sources
            .iter()
            .find(|s| &s.pattern == pattern)
            .map(|s| s.plans.as_slice())
    }

    /// Select a different ranked plan for `pattern` (the repair interaction
    /// of §6.4). Returns `false` if the pattern or index is unknown.
    pub fn repair(&mut self, pattern: &Pattern, choice: usize) -> bool {
        match self.sources.iter_mut().find(|s| &s.pattern == pattern) {
            Some(s) if choice < s.plans.len() => {
                s.chosen = choice;
                true
            }
            _ => false,
        }
    }

    /// Total number of source branches.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }
}

/// Algorithm 2: synthesize a UniFi program from a pattern hierarchy and a
/// target pattern.
pub fn synthesize(
    hierarchy: &PatternHierarchy,
    target: &Pattern,
    options: &SynthesisOptions,
) -> Synthesis {
    synthesize_impl(hierarchy, None, target, options)
}

/// [`synthesize`] over the shared column data plane: identical search, plus
/// a final *data check* of every ranked plan against the cluster's cached
/// distinct values.
///
/// Alignment proves a plan maps the source **pattern** into the target
/// pattern; the data check proves it maps the cluster's actual **values**
/// there too, evaluating each candidate plan on a few cached distinct
/// examples (through the column's cached token streams — nothing is
/// re-tokenized) and dropping plans whose output fails to match the target.
/// A source whose every plan fails the check is treated like a failed
/// validation: the search descends to more specific children.
pub fn synthesize_column(
    hierarchy: &PatternHierarchy,
    column: &Column,
    target: &Pattern,
    options: &SynthesisOptions,
) -> Synthesis {
    synthesize_impl(hierarchy, Some(column), target, options)
}

/// Number of cached distinct examples each candidate plan is checked
/// against when a column is available.
const DATA_CHECK_EXAMPLES: usize = 3;

/// Evaluate `expr` on one distinct value of `column`, reusing the value's
/// cached token stream when the source pattern *is* its leaf pattern (the
/// common case; constant-folded patterns fall back to a fresh split).
fn eval_on_distinct(
    expr: &Expr,
    pattern: &Pattern,
    value: clx_column::DistinctValue<'_>,
) -> Result<String, clx_unifi::EvalError> {
    if pattern == value.leaf() {
        eval_expr_on_slices(expr, value.token_slices())
    } else {
        eval_expr(expr, pattern, value.text())
    }
}

/// The data check: keep only the plans that transform every sampled
/// distinct value of `node`'s cluster into a target-matching string.
fn data_checked_plans(
    plans: Vec<RankedPlan>,
    node: &ClusterNode,
    column: &Column,
    target: &Pattern,
) -> Vec<RankedPlan> {
    let mut sample: Vec<usize> = Vec::new();
    for &row in &node.rows {
        let v = column.distinct_index_of(row);
        if !sample.contains(&v) {
            sample.push(v);
            if sample.len() >= DATA_CHECK_EXAMPLES {
                break;
            }
        }
    }
    plans
        .into_iter()
        .filter(|plan| {
            sample.iter().all(|&v| {
                let value = column.distinct(v);
                matches!(
                    eval_on_distinct(&plan.expr, &node.pattern, value),
                    Ok(out) if target.matches(&out)
                )
            })
        })
        .collect()
}

fn synthesize_impl(
    hierarchy: &PatternHierarchy,
    column: Option<&Column>,
    target: &Pattern,
    options: &SynthesisOptions,
) -> Synthesis {
    let mut unsolved: Vec<usize> = hierarchy.roots().iter().map(|n| n.id).collect();
    let mut sources: Vec<SourceSynthesis> = Vec::new();
    let mut already_correct: Vec<Pattern> = Vec::new();
    let mut rejected: Vec<Pattern> = Vec::new();
    let mut pruned: Vec<Pattern> = Vec::new();

    while let Some(id) = unsolved.pop() {
        let node = hierarchy.node(id);
        let pattern = &node.pattern;

        // Rows already in the desired form need no transformation.
        if target.covers(pattern) || pattern == target {
            already_correct.push(pattern.clone());
            continue;
        }

        // Static reachability pruning, before any alignment or MDL work:
        // if the already-accepted sources that will *definitely* sort
        // ahead of this candidate (more rows, or equal rows and an
        // earlier notation — the final presentation order) jointly cover
        // its whole language, the candidate's branch could never fire
        // under first-match semantics, and every one of its rows is
        // transformed by those covering branches instead. Its children
        // are language subsets, so the whole subtree is skipped. (Sources
        // accepted *later* can also end up ahead of a candidate; the
        // final sweep below catches those.)
        if options.prune_unreachable {
            let preceding: Vec<&Pattern> = sources
                .iter()
                .filter(|s| {
                    s.rows > node.size()
                        || (s.rows == node.size() && s.pattern.notation() < pattern.notation())
                })
                .map(|s| &s.pattern)
                .collect();
            if !preceding.is_empty()
                && clx_pattern::automaton::patterns_subsumed(pattern, &preceding) == Some(true)
            {
                pruned.push(pattern.clone());
                continue;
            }
        }

        let mut accepted = false;
        if validate(pattern, target) {
            let dag = align(pattern, target);
            if dag.has_complete_path() {
                let plans = dag.enumerate_plans(options.max_plans_per_source);
                let ranked = rank_plans(plans, pattern);
                let deduped = dedup_plans(ranked.into_iter().map(|(e, _)| e).collect(), pattern);
                let ranked_deduped = rank_plans(deduped, pattern);
                let mut plans: Vec<RankedPlan> = ranked_deduped
                    .into_iter()
                    .take(options.top_k)
                    .map(|(expr, description_length)| RankedPlan {
                        expr,
                        description_length,
                    })
                    .collect();
                if let Some(column) = column {
                    plans = data_checked_plans(plans, node, column, target);
                }
                if !plans.is_empty() {
                    sources.push(SourceSynthesis {
                        pattern: pattern.clone(),
                        plans,
                        chosen: 0,
                        rows: node.size(),
                    });
                    accepted = true;
                }
            }
        }

        if !accepted {
            if node.is_leaf() {
                rejected.push(pattern.clone());
            } else {
                unsolved.extend(node.children.iter().copied());
            }
        }
    }

    // Present larger clusters first, like the pattern list shown to the user.
    sources.sort_by(|a, b| {
        b.rows
            .cmp(&a.rows)
            .then_with(|| a.pattern.notation().cmp(&b.pattern.notation()))
    });

    if options.prune_unreachable {
        prune_unreachable_sources(&mut sources, &mut pruned);
    }

    Synthesis {
        target: target.clone(),
        sources,
        already_correct,
        rejected,
        pruned,
    }
}

/// The order-exact half of reachability pruning: with the final branch
/// order known, drop every source whose language the kept sources ahead
/// of it jointly cover. Such a branch can never fire (first-match), so
/// removing it is output-identical — the covering branches' plans were
/// handling its rows already. Sound on `Some(true)` only: an inconclusive
/// automaton verdict (width or search budget) keeps the source.
fn prune_unreachable_sources(sources: &mut Vec<SourceSynthesis>, pruned: &mut Vec<Pattern>) {
    let mut kept: Vec<SourceSynthesis> = Vec::with_capacity(sources.len());
    for source in sources.drain(..) {
        let ahead: Vec<&Pattern> = kept.iter().map(|k| &k.pattern).collect();
        let subsumed = !ahead.is_empty()
            && clx_pattern::automaton::patterns_subsumed(&source.pattern, &ahead) == Some(true);
        if subsumed {
            pruned.push(source.pattern);
        } else {
            kept.push(source);
        }
    }
    *sources = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_cluster::PatternProfiler;
    use clx_pattern::{parse_pattern, tokenize};
    use clx_unifi::{transform, TransformOutcome};

    fn options() -> SynthesisOptions {
        SynthesisOptions::default()
    }

    #[test]
    fn phone_numbers_end_to_end() {
        // The motivating example: normalize phones to <D>3-<D>3-<D>4.
        let data = vec![
            "(734) 645-8397",
            "(734) 763-1147",
            "(734)586-7252",
            "734-422-8073",
            "734.236.3466",
            "N/A",
        ];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("734-422-8073");
        let synthesis = synthesize(&hierarchy, &target, &options());

        // The target-format cluster is recognized as already correct.
        assert!(synthesis.already_correct.iter().any(|p| p == &target));
        // "N/A" can never reach the target.
        assert!(synthesis.rejected.iter().any(|p| p == &tokenize("N/A")));

        let program = synthesis.program();
        for (input, expected) in [
            ("(734) 645-8397", "734-645-8397"),
            ("(734)586-7252", "734-586-7252"),
            ("734.236.3466", "734-236-3466"),
        ] {
            let out = transform(&program, input).unwrap();
            assert_eq!(
                out,
                TransformOutcome::Transformed(expected.to_string()),
                "input {input:?}"
            );
        }
        // Rows already correct or noise are not matched by any branch.
        assert!(transform(&program, "734-422-8073").unwrap().is_flagged());
        assert!(transform(&program, "N/A").unwrap().is_flagged());
    }

    #[test]
    fn medical_codes_with_generalized_target() {
        // Example 5 of the paper, labelling the generalized target pattern.
        let data = vec!["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = parse_pattern("'['<U>+'-'<D>+']'").unwrap();
        let synthesis = synthesize(&hierarchy, &target, &options());
        let program = synthesis.program();
        for (input, expected) in [
            ("CPT-00350", "[CPT-00350]"),
            ("[CPT-00340", "[CPT-00340]"),
            ("CPT115", "[CPT-115]"),
        ] {
            let out = transform(&program, input).unwrap();
            assert_eq!(out.value(), expected, "input {input:?}");
            assert!(out.is_transformed());
        }
        // The already-correct row is covered by the target.
        let correct = transform(&program, "[CPT-11536]").unwrap();
        assert_eq!(correct.value(), "[CPT-11536]");
    }

    #[test]
    fn every_selected_plan_produces_target_matching_output() {
        let data = vec![
            "(734) 645-8397",
            "(734)586-7252",
            "734.236.3466",
            "7344228073",
        ];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("734-422-8073");
        let synthesis = synthesize(&hierarchy, &target, &options());
        for source in &synthesis.sources {
            // Evaluate the chosen plan on one of the cluster's example rows.
            let node = hierarchy.find_pattern(&source.pattern).unwrap();
            let example = &node.examples[0];
            let out = clx_unifi::eval_expr(source.selected(), &source.pattern, example).unwrap();
            assert!(
                target.matches(&out),
                "plan for {} produced {out:?}",
                source.pattern
            );
        }
    }

    #[test]
    fn plans_are_ranked_simplest_first_and_deduplicated() {
        let data = vec!["12/11/2017", "01/02/2018", "11-12-2017"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("11-12-2017");
        let synthesis = synthesize(&hierarchy, &target, &options());
        for source in &synthesis.sources {
            let dls: Vec<f64> = source.plans.iter().map(|p| p.description_length).collect();
            assert!(dls.windows(2).all(|w| w[0] <= w[1]), "not sorted: {dls:?}");
            // No two plans in the list are equivalent.
            for i in 0..source.plans.len() {
                for j in (i + 1)..source.plans.len() {
                    assert!(!crate::dedup::plans_equivalent(
                        &source.plans[i].expr,
                        &source.plans[j].expr,
                        &source.pattern
                    ));
                }
            }
        }
    }

    #[test]
    fn repair_switches_the_selected_plan() {
        // The date example: DD/MM/YYYY -> MM-DD-YYYY is ambiguous; repair
        // lets the user pick the swapped alternative.
        let data = vec!["12/11/2017", "03/04/2018", "11-12-2017"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("11-12-2017");
        let mut synthesis = synthesize(&hierarchy, &target, &options());
        let source_pattern = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let alts = synthesis.alternatives(&source_pattern).unwrap().to_vec();
        assert!(alts.len() >= 2, "expected repair alternatives");

        let before = synthesis.program();
        let out_before = transform(&before, "12/11/2017")
            .unwrap()
            .value()
            .to_string();

        // Pick the first alternative that gives a *different* output.
        let mut repaired_output = None;
        for (i, alt) in alts.iter().enumerate().skip(1) {
            let out = clx_unifi::eval_expr(&alt.expr, &source_pattern, "12/11/2017").unwrap();
            if out != out_before {
                assert!(synthesis.repair(&source_pattern, i));
                repaired_output = Some(out);
                break;
            }
        }
        let repaired_output = repaired_output.expect("an alternative with different output");
        let after = synthesis.program();
        assert_eq!(
            transform(&after, "12/11/2017").unwrap().value(),
            repaired_output
        );
        assert!(target.matches(&repaired_output));
    }

    #[test]
    fn repair_rejects_bad_indices_and_unknown_patterns() {
        let data = vec!["ab-1", "cd-2", "x1"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("x1");
        let mut synthesis = synthesize(&hierarchy, &target, &options());
        assert!(!synthesis.repair(&tokenize("zzzz"), 0));
        if let Some(first) = synthesis.sources.first() {
            let pattern = first.pattern.clone();
            let len = first.plans.len();
            assert!(!synthesis.repair(&pattern, len + 10));
        }
    }

    #[test]
    fn repair_choice_boundaries_are_exact() {
        let data = vec!["12/11/2017", "03/04/2018", "11-12-2017"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("11-12-2017");
        let mut synthesis = synthesize(&hierarchy, &target, &options());
        let pattern = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let len = synthesis.alternatives(&pattern).unwrap().len();
        assert!(len >= 2);

        // The last valid index is accepted...
        assert!(synthesis.repair(&pattern, len - 1));
        let chosen = |s: &Synthesis| {
            s.sources
                .iter()
                .find(|src| src.pattern == pattern)
                .unwrap()
                .chosen
        };
        assert_eq!(chosen(&synthesis), len - 1);

        // ...the one-past-the-end index is rejected and leaves the
        // selection untouched (off-by-one would panic in `selected()`).
        assert!(!synthesis.repair(&pattern, len));
        assert_eq!(chosen(&synthesis), len - 1);
        let _ = synthesis.program(); // `selected()` must not be out of range

        // Back to the boundary at the other end.
        assert!(synthesis.repair(&pattern, 0));
        assert_eq!(chosen(&synthesis), 0);
    }

    #[test]
    fn noise_only_data_rejects_everything() {
        let data = vec!["N/A", "??", "-"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("734-422-8073");
        let synthesis = synthesize(&hierarchy, &target, &options());
        assert!(synthesis.sources.is_empty());
        assert_eq!(synthesis.program().len(), 0);
        assert!(!synthesis.rejected.is_empty());
    }

    #[test]
    fn all_data_already_correct_produces_empty_program() {
        let data = vec!["734-422-8073", "555-936-2447"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("734-422-8073");
        let synthesis = synthesize(&hierarchy, &target, &options());
        assert!(synthesis.sources.is_empty());
        assert!(!synthesis.already_correct.is_empty());
        assert!(synthesis.rejected.is_empty());
    }

    #[test]
    fn sources_are_ordered_by_cluster_size() {
        let data = vec![
            "(734) 645-8397",
            "(734) 763-1147",
            "(734) 936-2447",
            "734.236.3466",
            "734-422-8073",
        ];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("734-422-8073");
        let synthesis = synthesize(&hierarchy, &target, &options());
        let rows: Vec<usize> = synthesis.sources.iter().map(|s| s.rows).collect();
        assert!(rows.windows(2).all(|w| w[0] >= w[1]), "{rows:?}");
    }

    #[test]
    fn synthesize_column_agrees_with_synthesize_on_distinct_data() {
        let data = vec![
            "(734) 645-8397",
            "(734)586-7252",
            "734.236.3466",
            "734-422-8073",
            "N/A",
        ];
        let column = clx_column::Column::from_values(&data);
        let hierarchy = PatternProfiler::new().profile_column(&column);
        let target = tokenize("734-422-8073");
        let plain = synthesize(&hierarchy, &target, &options());
        let checked = synthesize_column(&hierarchy, &column, &target, &options());
        // The data check can only drop plans, never add or reorder them;
        // on this workload every aligned plan survives.
        assert_eq!(plain.program(), checked.program());
        assert_eq!(plain.rejected, checked.rejected);
        assert_eq!(plain.already_correct, checked.already_correct);
    }

    #[test]
    fn duplicated_values_synthesize_a_working_program() {
        // Regression: a column holding one value many times used to
        // constant-fold into a single literal and synthesize an *empty*
        // program (every row flagged). With distinct-value statistics the
        // leaf keeps its base tokens and synthesis succeeds.
        let data = vec!["Dr. Eran Yahav"; 40];
        let column = clx_column::Column::from_values(&data);
        let hierarchy = PatternProfiler::new().profile_column(&column);
        let target = tokenize("Eran Yahav");
        let synthesis = synthesize_column(&hierarchy, &column, &target, &options());
        assert!(
            !synthesis.sources.is_empty(),
            "repeated values must still synthesize, got rejected={:?}",
            synthesis.rejected
        );
        let program = synthesis.program();
        let out = transform(&program, "Dr. Eran Yahav").unwrap();
        assert_eq!(out, TransformOutcome::Transformed("Eran Yahav".into()));
    }

    #[test]
    fn data_check_reads_cached_token_streams() {
        // The sampled plan evaluations run on the column's cached slices
        // when the source pattern is the leaf; outputs must be identical to
        // a fresh eval_expr on the raw text.
        let data = vec!["(734) 645-8397", "(735) 646-8398", "734-422-8073"];
        let column = clx_column::Column::from_values(&data);
        let hierarchy = PatternProfiler::new().profile_column(&column);
        let target = tokenize("734-422-8073");
        let synthesis = synthesize_column(&hierarchy, &column, &target, &options());
        for source in &synthesis.sources {
            for plan in &source.plans {
                for value in column.distinct_values() {
                    if value.leaf() != &source.pattern {
                        continue;
                    }
                    let cached = eval_expr_on_slices(&plan.expr, value.token_slices()).unwrap();
                    let fresh = eval_expr(&plan.expr, &source.pattern, value.text()).unwrap();
                    assert_eq!(cached, fresh);
                }
            }
        }
    }

    #[test]
    fn prune_sweep_drops_sources_covered_by_branches_ahead() {
        let source = |p: &str, rows: usize| SourceSynthesis {
            pattern: parse_pattern(p).unwrap(),
            plans: vec![RankedPlan {
                expr: Expr::concat(vec![clx_unifi::StringExpr::const_str("0")]),
                description_length: 1.0,
            }],
            chosen: 0,
            rows,
        };
        // Presentation order: <AN>+ first. <D>+ and <L>2 are language
        // subsets of it (shadowed at runtime); <D>'.'<D> is not ('.' is
        // outside <AN>).
        let mut sources = vec![
            source("<AN>+", 5),
            source("<D>+", 3),
            source("<D>'.'<D>", 2),
            source("<L>2", 1),
        ];
        let mut pruned = Vec::new();
        prune_unreachable_sources(&mut sources, &mut pruned);
        let kept: Vec<String> = sources.iter().map(|s| s.pattern.to_string()).collect();
        assert_eq!(kept, ["<AN>+", "<D>'.'<D>"]);
        let dropped: Vec<String> = pruned.iter().map(|p| p.to_string()).collect();
        assert_eq!(dropped, ["<D>+", "<L>2"]);
    }

    #[test]
    fn pruning_on_and_off_produce_identical_transformations() {
        // Pruning only removes branches that can never fire, so the two
        // programs must transform every input identically — on workloads
        // with and without actual subsumption.
        let workloads: [(&[&str], &str); 3] = [
            (
                &[
                    "(734) 645-8397",
                    "(734)586-7252",
                    "734.236.3466",
                    "734-422-8073",
                    "N/A",
                ],
                "734-422-8073",
            ),
            (
                &["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"],
                "[CPT-00350]",
            ),
            (&["1.2.3", "11.22.33", "111.222.333"], "1-2-3"),
        ];
        for (data, target_text) in workloads {
            let hierarchy = PatternProfiler::new().profile(data);
            let target = tokenize(target_text);
            let with_prune = synthesize(&hierarchy, &target, &options());
            let without_prune = synthesize(
                &hierarchy,
                &target,
                &SynthesisOptions {
                    prune_unreachable: false,
                    ..options()
                },
            );
            assert!(without_prune.pruned.is_empty());
            let a = with_prune.program();
            let b = without_prune.program();
            for input in data {
                assert_eq!(
                    transform(&a, input).unwrap(),
                    transform(&b, input).unwrap(),
                    "on {input:?} (target {target_text:?})"
                );
            }
            // Every pruned pattern really is covered by kept branches
            // ordered ahead of it — the runtime guarantee behind the
            // output identity above.
            for (i, p) in with_prune.pruned.iter().enumerate() {
                let ahead: Vec<&Pattern> = with_prune.sources.iter().map(|s| &s.pattern).collect();
                assert_eq!(
                    clx_pattern::automaton::patterns_subsumed(p, &ahead),
                    Some(true),
                    "pruned[{i}] = {p} not covered (target {target_text:?})"
                );
            }
        }
    }

    #[test]
    fn top_k_limits_alternatives() {
        let data = vec!["1.2.3.4.5.6.7.8", "9-9"];
        let hierarchy = PatternProfiler::new().profile(&data);
        let target = tokenize("9-9");
        let opts = SynthesisOptions {
            top_k: 2,
            ..options()
        };
        let synthesis = synthesize(&hierarchy, &target, &opts);
        for s in &synthesis.sources {
            assert!(s.plans.len() <= 2);
        }
    }
}
