//! Token alignment (Section 6.2, Algorithm 3 of the paper).
//!
//! Given a candidate source pattern and the target pattern, token alignment
//! discovers, for every token of the target, all operations that can yield
//! it — `Extract` of syntactically-similar source tokens or `ConstStr` for
//! literal target tokens — and stores them as edges of a DAG whose nodes are
//! positions within the target pattern. Sequential extracts (runs of
//! consecutive source tokens producing runs of consecutive target tokens)
//! are then discovered by combining adjacent `Extract` edges.
//!
//! Any path through the DAG from node 0 to node `|T|` is an atomic
//! transformation plan; Appendix A proves the construction sound and
//! complete, and the tests here exercise both properties.

use std::collections::HashMap;

use clx_pattern::{Pattern, Quantifier, Token};
use clx_unifi::{Expr, StringExpr};

/// Are two tokens *syntactically similar* (Definition 6.1)?
///
/// * base tokens: same class, and quantifiers are identical natural numbers
///   or at least one of them is `+`;
/// * literal tokens: identical constant values (this is what allows a target
///   separator to be extracted from the source rather than re-created, which
///   in turn enables sequential extracts to span separators — see Example 9).
pub fn syntactically_similar(a: &Token, b: &Token) -> bool {
    match (a.literal_value(), b.literal_value()) {
        (Some(x), Some(y)) => x == y,
        (None, None) => {
            a.class == b.class
                && match (a.quantifier, b.quantifier) {
                    (Quantifier::Exact(x), Quantifier::Exact(y)) => x == y,
                    _ => true,
                }
        }
        _ => false,
    }
}

/// Can extracting the literal source token `source_tok` produce the base
/// target token `target_tok`?
///
/// This covers patterns refined by constant discovery: a folded constant
/// such as `'CPT'` still supplies three upper-case characters, so it can be
/// extracted wherever the target asks for `<U>3` or `<U>+`.
fn literal_supplies_base(source_tok: &Token, target_tok: &Token) -> bool {
    let (Some(value), None) = (source_tok.literal_value(), target_tok.literal_value()) else {
        return false;
    };
    if value.is_empty() || !value.chars().all(|c| target_tok.class.contains_char(c)) {
        return false;
    }
    match target_tok.quantifier {
        Quantifier::Exact(n) => value.chars().count() == n,
        Quantifier::OneOrMore => true,
    }
}

/// The token-alignment DAG `G(η̃, ηs, ηt, ξ)`.
///
/// Nodes are positions `0..=target_len` within the target pattern; an edge
/// from `i` to `j` (with `i < j`) carries the operations able to produce
/// target tokens `i+1..=j` (one-based).
#[derive(Debug, Clone)]
pub struct AlignmentDag {
    target_len: usize,
    edges: HashMap<(usize, usize), Vec<StringExpr>>,
}

impl AlignmentDag {
    /// Number of target tokens (the target node is `target_len`).
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// The operations on the edge from node `i` to node `j`.
    pub fn edge(&self, i: usize, j: usize) -> &[StringExpr] {
        self.edges.get(&(i, j)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All edges, as `((from, to), operations)` pairs sorted by position.
    pub fn edges(&self) -> Vec<((usize, usize), &[StringExpr])> {
        let mut out: Vec<_> = self.edges.iter().map(|(&k, v)| (k, v.as_slice())).collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Total number of operations across all edges.
    pub fn operation_count(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// Is there at least one complete path from node 0 to the target node?
    pub fn has_complete_path(&self) -> bool {
        let mut reachable = vec![false; self.target_len + 1];
        reachable[0] = true;
        for i in 0..self.target_len {
            if !reachable[i] {
                continue;
            }
            for (j, slot) in reachable.iter_mut().enumerate().skip(i + 1) {
                if !self.edge(i, j).is_empty() {
                    *slot = true;
                }
            }
        }
        reachable[self.target_len]
    }

    /// Enumerate atomic transformation plans (paths from node 0 to the
    /// target node), up to `limit` plans. The enumeration is exhaustive when
    /// the number of paths does not exceed the limit.
    pub fn enumerate_plans(&self, limit: usize) -> Vec<Expr> {
        let mut plans = Vec::new();
        let mut current = Vec::new();
        self.enumerate_from(0, &mut current, &mut plans, limit);
        plans
    }

    fn enumerate_from(
        &self,
        node: usize,
        current: &mut Vec<StringExpr>,
        plans: &mut Vec<Expr>,
        limit: usize,
    ) {
        if plans.len() >= limit {
            return;
        }
        if node == self.target_len {
            plans.push(Expr::concat(current.clone()));
            return;
        }
        for next in (node + 1)..=self.target_len {
            for op in self.edge(node, next) {
                if plans.len() >= limit {
                    return;
                }
                current.push(op.clone());
                self.enumerate_from(next, current, plans, limit);
                current.pop();
            }
        }
    }
}

/// Algorithm 3: build the token-alignment DAG between `source` (the
/// candidate source pattern) and `target`.
pub fn align(source: &Pattern, target: &Pattern) -> AlignmentDag {
    let mut edges: HashMap<(usize, usize), Vec<StringExpr>> = HashMap::new();
    let m = target.len();

    // Lines 2-9: individual token matches.
    for (ti_idx, ti) in target.iter().enumerate() {
        let i = ti_idx + 1; // one-based target index
        for (tj_idx, tj) in source.iter().enumerate() {
            let j = tj_idx + 1; // one-based source index
            if syntactically_similar(ti, tj) || literal_supplies_base(tj, ti) {
                edges
                    .entry((i - 1, i))
                    .or_default()
                    .push(StringExpr::extract(j));
            }
        }
        if let Some(value) = ti.literal_value() {
            edges
                .entry((i - 1, i))
                .or_default()
                .push(StringExpr::const_str(value));
        }
    }

    // Lines 10-17 (generalized as in the Appendix A proof): combine an
    // incoming Extract edge ending at node i with the single-token Extract
    // edge (i, i+1) whenever the source tokens are consecutive. Processing
    // nodes in increasing order lets longer runs build up incrementally.
    for i in 1..m {
        let incoming: Vec<((usize, usize), StringExpr)> = edges
            .iter()
            .filter(|(&(_, to), _)| to == i)
            .flat_map(|(&k, ops)| {
                ops.iter()
                    .filter(|op| op.is_extract())
                    .cloned()
                    .map(move |op| (k, op))
            })
            .collect();
        let outgoing: Vec<StringExpr> = edges
            .get(&(i, i + 1))
            .map(|ops| ops.iter().filter(|op| op.is_extract()).cloned().collect())
            .unwrap_or_default();
        for ((from_node, _), inc) in &incoming {
            let StringExpr::Extract {
                from: src_from,
                to: src_to,
            } = inc
            else {
                continue;
            };
            for out in &outgoing {
                let StringExpr::Extract {
                    from: out_from,
                    to: out_to,
                } = out
                else {
                    continue;
                };
                if src_to + 1 == *out_from {
                    let combined = StringExpr::extract_range(*src_from, *out_to);
                    let entry = edges.entry((*from_node, i + 1)).or_default();
                    if !entry.contains(&combined) {
                        entry.push(combined);
                    }
                }
            }
        }
    }

    // Deduplicate operations on each edge while preserving insertion order.
    for ops in edges.values_mut() {
        let mut seen = Vec::new();
        ops.retain(|op| {
            if seen.contains(op) {
                false
            } else {
                seen.push(op.clone());
                true
            }
        });
    }

    AlignmentDag {
        target_len: m,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize, TokenClass};
    use clx_unifi::eval_expr;

    #[test]
    fn syntactic_similarity_rules() {
        let d3 = Token::base(TokenClass::Digit, 3);
        let d4 = Token::base(TokenClass::Digit, 4);
        let dplus = Token::plus(TokenClass::Digit);
        let l3 = Token::base(TokenClass::Lower, 3);
        assert!(syntactically_similar(&d3, &d3));
        assert!(!syntactically_similar(&d3, &d4));
        assert!(syntactically_similar(&d3, &dplus));
        assert!(syntactically_similar(&dplus, &d4));
        assert!(syntactically_similar(&dplus, &dplus));
        assert!(!syntactically_similar(&d3, &l3));
        assert!(syntactically_similar(
            &Token::literal("-"),
            &Token::literal("-")
        ));
        assert!(!syntactically_similar(
            &Token::literal("-"),
            &Token::literal(".")
        ));
        assert!(!syntactically_similar(&Token::literal("-"), &d3));
    }

    #[test]
    fn example_8_phone_alignment() {
        // Source [<D>3, '.', <D>3, '.', <D>4]; target
        // ['(', <D>3, ')', ' ', <D>3, '-', <D>4] — Figure 9 of the paper.
        let source = tokenize("734.236.3466");
        let target = tokenize("(734) 645-8397");
        let dag = align(&source, &target);

        // Target token 2 (<D>3) can be extracted from source tokens 1 and 3.
        let ops: Vec<String> = dag.edge(1, 2).iter().map(|o| o.to_string()).collect();
        assert!(ops.contains(&"Extract(1)".to_string()));
        assert!(ops.contains(&"Extract(3)".to_string()));
        // Target token 1 '(' must be a ConstStr (no '(' in the source).
        let ops: Vec<String> = dag.edge(0, 1).iter().map(|o| o.to_string()).collect();
        assert_eq!(ops, vec!["ConstStr('(')"]);
        // Target token 7 (<D>4) only from source token 5.
        let ops: Vec<String> = dag.edge(6, 7).iter().map(|o| o.to_string()).collect();
        assert_eq!(ops, vec!["Extract(5)"]);
        assert!(dag.has_complete_path());
    }

    #[test]
    fn figure_10_sequential_extract_combination() {
        // Source <U><D>+..., target <U><D>+ — Extract(1) and Extract(2)
        // combine into Extract(1,2).
        let source = parse_pattern("<U><D>+").unwrap();
        let target = parse_pattern("<U><D>+").unwrap();
        let dag = align(&source, &target);
        let combined: Vec<String> = dag.edge(0, 2).iter().map(|o| o.to_string()).collect();
        assert!(combined.contains(&"Extract(1,2)".to_string()));
    }

    #[test]
    fn example_9_extract_spanning_separator() {
        // Source <D>2'/'<D>2'/'<D>4, target <D>2'/'<D>2: the plan
        // Concat(Extract(1,3)) must be discoverable.
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let target = parse_pattern("<D>2'/'<D>2").unwrap();
        let dag = align(&source, &target);
        let spanning: Vec<String> = dag.edge(0, 3).iter().map(|o| o.to_string()).collect();
        assert!(
            spanning.contains(&"Extract(1,3)".to_string()),
            "expected Extract(1,3), got {spanning:?}"
        );
    }

    #[test]
    fn soundness_every_plan_produces_a_target_match() {
        // Appendix A soundness: every enumerated plan, evaluated on a string
        // of the source pattern, yields a string matching the target pattern.
        let cases = [
            ("734.236.3466", "(734) 645-8397"),
            ("CPT115", "[CPT-00350]"),
            ("12/11/2017", "11-12"),
        ];
        for (src_str, tgt_str) in cases {
            let source = tokenize(src_str);
            let target = tokenize(tgt_str);
            let dag = align(&source, &target);
            for plan in dag.enumerate_plans(500) {
                let out = eval_expr(&plan, &source, src_str).unwrap();
                assert!(
                    target.matches(&out),
                    "plan {plan} on {src_str:?} gave {out:?} which does not match {target}"
                );
            }
        }
    }

    #[test]
    fn completeness_medical_code_plans_exist() {
        // Example 5: each source pattern admits a plan reaching the target.
        // The target is the generalized pattern the user labels, as in the
        // paper's UniFi program for this task.
        let target = parse_pattern("'['<U>+'-'<D>+']'").unwrap();
        for src in ["CPT-00350", "[CPT-00340", "CPT115"] {
            let source = tokenize(src);
            let dag = align(&source, &target);
            assert!(
                dag.has_complete_path(),
                "no complete path for source {src:?}"
            );
            let plans = dag.enumerate_plans(1000);
            assert!(!plans.is_empty());
            // And at least one plan produces the *value-correct* output.
            let expected = match src {
                "CPT-00350" => "[CPT-00350]",
                "[CPT-00340" => "[CPT-00340]",
                "CPT115" => "[CPT-115]",
                _ => unreachable!(),
            };
            assert!(
                plans
                    .iter()
                    .any(|p| eval_expr(p, &source, src).unwrap() == expected),
                "no plan produces {expected:?} for {src:?}"
            );
        }
    }

    #[test]
    fn no_path_when_target_token_cannot_be_built() {
        // Target needs an uppercase token; the source has none and it is not
        // a literal, so the DAG has no complete path.
        let source = tokenize("1234");
        let target = tokenize("AB12");
        let dag = align(&source, &target);
        assert!(!dag.has_complete_path());
        assert!(dag.enumerate_plans(10).is_empty());
    }

    #[test]
    fn literal_targets_always_have_conststr() {
        let source = tokenize("abc");
        let target = tokenize("a-b");
        let dag = align(&source, &target);
        // Every target position has at least one edge option... except the
        // base-token positions that cannot match (here <L> vs <L>3 differ),
        // so check the literal one explicitly.
        let ops: Vec<String> = dag.edge(1, 2).iter().map(|o| o.to_string()).collect();
        assert!(ops.contains(&"ConstStr('-')".to_string()));
    }

    #[test]
    fn plan_enumeration_respects_limit() {
        let source = tokenize("1.2.3.4.5.6");
        let target = tokenize("7.8");
        let dag = align(&source, &target);
        let plans = dag.enumerate_plans(5);
        assert_eq!(plans.len(), 5);
    }

    #[test]
    fn empty_target_has_single_empty_plan() {
        let source = tokenize("abc");
        let target = Pattern::empty();
        let dag = align(&source, &target);
        assert!(dag.has_complete_path());
        let plans = dag.enumerate_plans(10);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].is_empty());
    }

    #[test]
    fn dag_edge_accessors() {
        let source = tokenize("12-34");
        let target = tokenize("12");
        let dag = align(&source, &target);
        assert_eq!(dag.target_len(), 1);
        assert!(dag.operation_count() >= 1);
        assert!(!dag.edges().is_empty());
        assert!(dag.edge(5, 6).is_empty());
    }
}
