//! # clx-synth
//!
//! Program synthesis for CLX (Section 6 of *CLX: Towards verifiable PBE
//! data transformation*): given the pattern-cluster hierarchy produced by
//! `clx-cluster` and a user-labelled target pattern, synthesize a UniFi
//! program that transforms every transformable source pattern into the
//! target.
//!
//! The pipeline mirrors the paper exactly:
//!
//! 1. [`validate`] — token-frequency screening of candidate source patterns
//!    (Eq. 1–2);
//! 2. [`align`] — token alignment into a DAG of `Extract`/`ConstStr`
//!    operations (Algorithm 3), including sequential-extract combination;
//! 3. [`rank_plans`] — Minimum-Description-Length ranking of the enumerated
//!    atomic transformation plans (Eq. 3–6);
//! 4. [`dedup_plans`] — equivalence-class deduplication (Appendix B);
//! 5. [`synthesize`] — the top-down hierarchy traversal of Algorithm 2 that
//!    puts it all together and supports the *program repair* interaction.
//!
//! ```
//! use clx_cluster::PatternProfiler;
//! use clx_pattern::tokenize;
//! use clx_synth::{synthesize, SynthesisOptions};
//! use clx_unifi::transform;
//!
//! let data = vec!["(734) 645-8397", "734.236.3466", "734-422-8073"];
//! let hierarchy = PatternProfiler::new().profile(&data);
//! let target = tokenize("734-422-8073");
//! let synthesis = synthesize(&hierarchy, &target, &SynthesisOptions::default());
//! let program = synthesis.program();
//! assert_eq!(
//!     transform(&program, "(734) 645-8397").unwrap().value(),
//!     "734-645-8397",
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod align;
mod dedup;
mod mdl;
mod synthesize;
mod validate;

pub use align::{align, syntactically_similar, AlignmentDag};
pub use dedup::{dedup_plans, plans_equivalent};
pub use mdl::{data_length, description_length, model_length, rank_plans, source_reuse_penalty};
pub use synthesize::{
    synthesize, synthesize_column, RankedPlan, SourceSynthesis, Synthesis, SynthesisOptions,
};
pub use validate::{class_frequency, validate, validate_report, ValidationReport};
