//! Source-candidate validation (Section 6.1 of the paper).
//!
//! Before synthesizing a transformation for a source pattern, CLX quickly
//! checks whether the pattern can plausibly be transformed into the target
//! at all, using the token-frequency heuristic of Eq. 1–2: the source must
//! contain at least as many base tokens of every class as the target,
//! because base tokens carry semantic content that cannot be invented
//! "de novo" without external knowledge.

use clx_pattern::{Pattern, TokenClass, BASE_TOKEN_CLASSES};

/// Token frequency used by validation: the paper's `Q` (Eq. 1) extended so
/// that characters inside *literal* tokens also count towards their class.
///
/// The extension matters when constant discovery has folded a base token
/// into a literal (e.g. `'CPT'`): the characters are still physically
/// present in the source data and remain extractable, so rejecting the
/// pattern for "missing" upper-case tokens would be a false negative. For
/// patterns without folded constants this is exactly Eq. 1.
pub fn class_frequency(pattern: &Pattern, class: &TokenClass) -> usize {
    let base: usize = pattern.token_frequency(class.clone());
    let literal: usize = pattern
        .iter()
        .filter_map(|t| t.literal_value())
        .map(|s| s.chars().filter(|&c| class.contains_char(c)).count())
        .sum();
    base + literal
}

/// The token-frequency validation `V(p1, p2)` of Eq. 2: `true` when
/// `Q(t, source) >= Q(t, target)` for every base token class `t`.
///
/// The *demand* side (target) uses the paper's `Q` exactly: literal tokens
/// in the target cost nothing because they can always be produced with
/// `ConstStr`. The *supply* side (source) uses [`class_frequency`], i.e.
/// base tokens plus characters inside folded constants, because those
/// characters remain extractable.
pub fn validate(source: &Pattern, target: &Pattern) -> bool {
    BASE_TOKEN_CLASSES
        .iter()
        .all(|class| class_frequency(source, class) >= target.token_frequency(class.clone()))
}

/// A breakdown of the validation decision, useful for explaining to the user
/// why a pattern was rejected (and in tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Per-class `(class, Q(source), Q(target))` counts.
    pub counts: Vec<(TokenClass, usize, usize)>,
    /// The overall verdict (`true` = candidate source pattern).
    pub accepted: bool,
}

/// Compute the full validation report for a source/target pair.
pub fn validate_report(source: &Pattern, target: &Pattern) -> ValidationReport {
    let counts: Vec<(TokenClass, usize, usize)> = BASE_TOKEN_CLASSES
        .iter()
        .map(|class| {
            (
                class.clone(),
                class_frequency(source, class),
                target.token_frequency(class.clone()),
            )
        })
        .collect();
    let accepted = counts.iter().all(|(_, s, t)| s >= t);
    ValidationReport { counts, accepted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};

    #[test]
    fn example_7_accepts_cpt_prefix_pattern() {
        // Target [ '[', <U>+, '-', <D>+, ']' ]; source from "[CPT-00350".
        let target = parse_pattern("'['<U>+'-'<D>+']'").unwrap();
        let source = tokenize("[CPT-00350");
        assert!(validate(&source, &target));
    }

    #[test]
    fn example_7_rejects_pattern_without_digits() {
        let target = parse_pattern("'['<U>+'-'<D>+']'").unwrap();
        let source = tokenize("[CPT-");
        assert!(!validate(&source, &target));
        let report = validate_report(&source, &target);
        assert!(!report.accepted);
        let digit_row = report
            .counts
            .iter()
            .find(|(c, _, _)| *c == TokenClass::Digit)
            .unwrap();
        assert_eq!((digit_row.1, digit_row.2), (0, 1));
    }

    #[test]
    fn noise_values_are_rejected() {
        // "N/A" in a phone column (the paper's example of a noise pattern).
        let target = parse_pattern("<D>3'-'<D>3'-'<D>4").unwrap();
        let source = tokenize("N/A");
        assert!(!validate(&source, &target));
    }

    #[test]
    fn identical_patterns_validate() {
        let p = tokenize("734-422-8073");
        assert!(validate(&p, &p));
    }

    #[test]
    fn plus_counts_as_one() {
        let source = parse_pattern("<D>+").unwrap();
        let target = parse_pattern("<D>3").unwrap();
        // Q(D, source) = 1 < 3: rejected, which is what pushes Algorithm 2
        // down to more specific children.
        assert!(!validate(&source, &target));
        // And the reverse direction passes.
        assert!(validate(&target, &source));
    }

    #[test]
    fn general_patterns_are_rejected_for_specific_targets() {
        // "<AN>+','<AN>+" cannot be validated against "<U><L>+':'<D>+"
        // (reason 3 in §6.1: too general).
        let source = parse_pattern("<AN>+','<AN>+").unwrap();
        let target = parse_pattern("<U><L>+':'<D>+").unwrap();
        assert!(!validate(&source, &target));
        // Its more specific child passes.
        let child = parse_pattern("<U><L>+','<D>+").unwrap();
        assert!(validate(&child, &target));
    }

    #[test]
    fn folded_constants_still_contribute_their_characters() {
        // Constant discovery may have folded "abc123" into a literal; the
        // characters are still in the data, so validation accepts it.
        let source = parse_pattern("'abc123'").unwrap();
        let target = parse_pattern("<L>3<D>3").unwrap();
        assert!(validate(&source, &target));
        // But a literal with too few characters of a class is rejected.
        let source = parse_pattern("'ab12'").unwrap();
        assert!(!validate(&source, &target));
    }

    #[test]
    fn class_frequency_extends_eq1_with_literal_characters() {
        let p = parse_pattern("'CPT-'<D>5").unwrap();
        assert_eq!(class_frequency(&p, &TokenClass::Upper), 3);
        assert_eq!(class_frequency(&p, &TokenClass::Digit), 5);
        assert_eq!(class_frequency(&p, &TokenClass::Lower), 0);
        // Pure base-token patterns reduce to the paper's Q exactly.
        let q = parse_pattern("<U>3'-'<D>5").unwrap();
        assert_eq!(
            class_frequency(&q, &TokenClass::Upper),
            q.token_frequency(TokenClass::Upper)
        );
    }

    #[test]
    fn empty_target_accepts_everything() {
        let target = Pattern::empty();
        assert!(validate(&tokenize("anything"), &target));
        assert!(validate(&Pattern::empty(), &target));
    }

    #[test]
    fn report_lists_all_five_base_classes() {
        let report = validate_report(&tokenize("a1"), &tokenize("b2"));
        assert_eq!(report.counts.len(), 5);
        assert!(report.accepted);
    }
}
