//! Equivalent-plan detection and deduplication (Section 6.4 and Appendix B
//! of the paper).
//!
//! Two atomic transformation plans are *equivalent* when, for the same
//! source pattern, they always yield the same result on any matching string
//! (Definition 6.2) — e.g. extracting a `'/'` literal token versus
//! re-creating it with `ConstStr('/')`. Presenting both to the user during
//! program repair is pure noise, so CLX keeps only the simplest member of
//! each equivalence class.

use clx_pattern::Pattern;
use clx_unifi::{Expr, StringExpr};

use crate::mdl::{description_length, source_reuse_penalty};

/// Appendix B, step 1: split every `Extract(m, n)` into the unit extracts
/// `Extract(m), Extract(m+1), ..., Extract(n)`.
fn normalize(expr: &Expr) -> Vec<StringExpr> {
    let mut out = Vec::new();
    for part in &expr.parts {
        match part {
            StringExpr::Extract { from, to } => {
                for i in *from..=*to {
                    out.push(StringExpr::extract(i));
                }
            }
            StringExpr::ConstStr(s) => out.push(StringExpr::ConstStr(s.clone())),
        }
    }
    out
}

/// Are the two (normalized) operations interchangeable given the source
/// pattern? Either they are identical, or one extracts a literal source
/// token whose constant value equals the other's `ConstStr` content.
fn ops_equivalent(a: &StringExpr, b: &StringExpr, source: &Pattern) -> bool {
    if a == b {
        return true;
    }
    let literal_of = |op: &StringExpr| -> Option<String> {
        match op {
            StringExpr::Extract { from, to } if from == to => source
                .token_one_based(*from)
                .ok()
                .and_then(|t| t.literal_value().map(str::to_string)),
            StringExpr::ConstStr(s) => Some(s.clone()),
            _ => None,
        }
    };
    match (literal_of(a), literal_of(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Are two plans equivalent for the given source pattern (Definition 6.2,
/// decided with the Appendix B procedure)?
pub fn plans_equivalent(a: &Expr, b: &Expr, source: &Pattern) -> bool {
    let na = normalize(a);
    let nb = normalize(b);
    if na.len() != nb.len() {
        return false;
    }
    na.iter()
        .zip(nb.iter())
        .all(|(x, y)| ops_equivalent(x, y, source))
}

/// Deduplicate a ranked list of plans, keeping only the simplest (lowest
/// description length — the list order for ties) member of each equivalence
/// class. The input order is preserved for the survivors.
pub fn dedup_plans(plans: Vec<Expr>, source: &Pattern) -> Vec<Expr> {
    let mut kept: Vec<Expr> = Vec::new();
    for plan in plans {
        match kept.iter_mut().find(|k| plans_equivalent(k, &plan, source)) {
            None => kept.push(plan),
            Some(existing) => {
                // Keep the simpler representative, using the same ordering
                // as plan ranking (no source reuse first, then MDL).
                let key = |e: &Expr| (source_reuse_penalty(e), description_length(e, source));
                if key(&plan) < key(existing) {
                    *existing = plan;
                }
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::parse_pattern;

    fn source() -> Pattern {
        // [<D>2, '/', <D>2]
        parse_pattern("<D>2'/'<D>2").unwrap()
    }

    #[test]
    fn paper_appendix_b_example() {
        // E1 = [Extract(3), ConstStr('/'), Extract(1)]
        // E2 = [Extract(3), Extract(2), Extract(1)]
        let e1 = Expr::concat(vec![
            StringExpr::extract(3),
            StringExpr::const_str("/"),
            StringExpr::extract(1),
        ]);
        let e2 = Expr::concat(vec![
            StringExpr::extract(3),
            StringExpr::extract(2),
            StringExpr::extract(1),
        ]);
        assert!(plans_equivalent(&e1, &e2, &source()));
    }

    #[test]
    fn range_extract_normalization() {
        // Extract(1,3) is equivalent to Extract(1),Extract(2),Extract(3)
        // and to Extract(1),ConstStr('/'),Extract(3).
        let a = Expr::concat(vec![StringExpr::extract_range(1, 3)]);
        let b = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::extract(2),
            StringExpr::extract(3),
        ]);
        let c = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::const_str("/"),
            StringExpr::extract(3),
        ]);
        assert!(plans_equivalent(&a, &b, &source()));
        assert!(plans_equivalent(&a, &c, &source()));
        assert!(plans_equivalent(&b, &c, &source()));
    }

    #[test]
    fn different_extract_targets_are_not_equivalent() {
        let a = Expr::concat(vec![StringExpr::extract(1)]);
        let b = Expr::concat(vec![StringExpr::extract(3)]);
        assert!(!plans_equivalent(&a, &b, &source()));
    }

    #[test]
    fn const_differs_from_base_token_extract() {
        // Extract(1) pulls a digit token, not a literal, so it is not
        // interchangeable with any ConstStr.
        let a = Expr::concat(vec![StringExpr::extract(1)]);
        let b = Expr::concat(vec![StringExpr::const_str("12")]);
        assert!(!plans_equivalent(&a, &b, &source()));
    }

    #[test]
    fn const_with_different_content_is_not_equivalent() {
        let a = Expr::concat(vec![StringExpr::extract(2)]);
        let b = Expr::concat(vec![StringExpr::const_str("-")]);
        assert!(!plans_equivalent(&a, &b, &source()));
    }

    #[test]
    fn different_lengths_are_not_equivalent() {
        let a = Expr::concat(vec![StringExpr::extract(1)]);
        let b = Expr::concat(vec![StringExpr::extract(1), StringExpr::extract(2)]);
        assert!(!plans_equivalent(&a, &b, &source()));
    }

    #[test]
    fn dedup_keeps_one_representative_per_class() {
        let plans = vec![
            Expr::concat(vec![StringExpr::extract_range(1, 3)]),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("/"),
                StringExpr::extract(3),
            ]),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::extract(2),
                StringExpr::extract(3),
            ]),
            Expr::concat(vec![StringExpr::extract(1)]),
        ];
        let deduped = dedup_plans(plans, &source());
        assert_eq!(deduped.len(), 2);
        // The surviving representative of the big class is the simplest one.
        assert_eq!(
            deduped[0],
            Expr::concat(vec![StringExpr::extract_range(1, 3)])
        );
    }

    #[test]
    fn dedup_preserves_distinct_plans() {
        let plans = vec![
            Expr::concat(vec![StringExpr::extract(1)]),
            Expr::concat(vec![StringExpr::extract(3)]),
        ];
        let deduped = dedup_plans(plans.clone(), &source());
        assert_eq!(deduped, plans);
    }

    #[test]
    fn dedup_empty_input() {
        assert!(dedup_plans(Vec::new(), &source()).is_empty());
    }

    #[test]
    fn equivalence_is_reflexive_and_symmetric() {
        let plans = vec![
            Expr::concat(vec![StringExpr::extract_range(1, 3)]),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("/"),
                StringExpr::extract(3),
            ]),
            Expr::concat(vec![StringExpr::extract(1)]),
        ];
        let s = source();
        for a in &plans {
            assert!(plans_equivalent(a, a, &s));
            for b in &plans {
                assert_eq!(plans_equivalent(a, b, &s), plans_equivalent(b, a, &s));
            }
        }
    }
}
