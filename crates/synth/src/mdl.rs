//! Minimum-Description-Length ranking of atomic transformation plans
//! (Section 6.3, Eq. 3–6 of the paper).
//!
//! Of all plans the alignment DAG admits, CLX presents the *simplest* one
//! first, following Occam's razor formalized as MDL: the description length
//! of a plan is the length needed to encode the plan itself (`L(E)`) plus
//! the length needed to encode the target given the plan (`L(T|E)`).

use clx_pattern::Pattern;
use clx_unifi::{Expr, StringExpr};

/// Size of the printable character set used to cost `ConstStr` parameters
/// (`c = 95` in the paper).
pub const PRINTABLE_CHARSET_SIZE: f64 = 95.0;

/// Number of distinct operation types in the DSL (`Extract` and `ConstStr`),
/// the `m` of Eq. 4.
pub const OPERATION_TYPES: f64 = 2.0;

/// `L(E)` — the model description length (Eq. 4): `|E| · log m`.
pub fn model_length(expr: &Expr) -> f64 {
    expr.len() as f64 * OPERATION_TYPES.ln()
}

/// `L(T|E)` — the data description length (Eq. 5): the cost of the
/// parameters of every string expression. `Extract` costs `log |P_cand|²`;
/// `ConstStr(s)` costs `log c^|s| = |s| · log c`.
pub fn data_length(expr: &Expr, source: &Pattern) -> f64 {
    let p = source.len().max(1) as f64;
    expr.parts
        .iter()
        .map(|part| match part {
            StringExpr::Extract { .. } => (p * p).ln(),
            StringExpr::ConstStr(s) => s.chars().count() as f64 * PRINTABLE_CHARSET_SIZE.ln(),
        })
        .sum()
}

/// `L(E, T)` — the total description length (Eq. 3).
pub fn description_length(expr: &Expr, source: &Pattern) -> f64 {
    model_length(expr) + data_length(expr, source)
}

/// How many source-token slots does the plan extract more than once?
///
/// Plans that copy the same source token into several places of the target
/// (`Extract(5,6)` followed by `Extract(5,7)`, or `Extract(1)` twice) are
/// almost never what the user wants — they duplicate one field and drop
/// another — yet they can have a *lower* description length than the
/// intended plan because spanning extracts are so cheap. The ranking
/// therefore prefers plans without repeated source coverage and only then
/// applies MDL, which keeps Occam's razor for the genuinely ambiguous cases
/// (the paper's date example) while avoiding degenerate duplicates.
pub fn source_reuse_penalty(expr: &Expr) -> usize {
    let mut covered: Vec<usize> = Vec::new();
    let mut repeats = 0usize;
    for part in &expr.parts {
        if let StringExpr::Extract { from, to } = part {
            for i in *from..=*to {
                if covered.contains(&i) {
                    repeats += 1;
                } else {
                    covered.push(i);
                }
            }
        }
    }
    repeats
}

/// Sort plans simplest-first: primarily by [`source_reuse_penalty`], then by
/// ascending description length, with ties broken deterministically by the
/// plan's textual form so the ranking is stable across runs.
pub fn rank_plans(plans: Vec<Expr>, source: &Pattern) -> Vec<(Expr, f64)> {
    let mut scored: Vec<(Expr, f64, usize)> = plans
        .into_iter()
        .map(|e| {
            let dl = description_length(&e, source);
            let penalty = source_reuse_penalty(&e);
            (e, dl, penalty)
        })
        .collect();
    scored.sort_by(|a, b| {
        a.2.cmp(&b.2)
            .then_with(|| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
    });
    scored.into_iter().map(|(e, dl, _)| (e, dl)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::parse_pattern;

    #[test]
    fn example_9_prefers_single_spanning_extract() {
        // Source <D>2'/'<D>2'/'<D>4, target <D>2'/'<D>2.
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let e1 = Expr::concat(vec![StringExpr::extract_range(1, 3)]);
        let e2 = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::const_str("/"),
            StringExpr::extract(3),
        ]);
        assert!(
            description_length(&e1, &source) < description_length(&e2, &source),
            "the single Extract(1,3) plan must be simpler"
        );
    }

    #[test]
    fn extract_is_cheaper_than_const_for_single_separator() {
        // A plan that extracts the separator beats one that re-creates it,
        // when the source pattern is small.
        let source = parse_pattern("<D>2'/'<D>2").unwrap();
        let extract_sep = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::extract(2),
            StringExpr::extract(3),
        ]);
        let const_sep = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::const_str("/"),
            StringExpr::extract(3),
        ]);
        assert!(
            description_length(&extract_sep, &source) < description_length(&const_sep, &source)
        );
    }

    #[test]
    fn longer_constants_cost_more() {
        let source = parse_pattern("<D>3").unwrap();
        let short = Expr::concat(vec![StringExpr::const_str("x")]);
        let long = Expr::concat(vec![StringExpr::const_str("xyzw")]);
        assert!(description_length(&short, &source) < description_length(&long, &source));
    }

    #[test]
    fn fewer_operations_cost_less_model_length() {
        let one = Expr::concat(vec![StringExpr::extract(1)]);
        let three = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::extract(2),
            StringExpr::extract(3),
        ]);
        assert!(model_length(&one) < model_length(&three));
    }

    #[test]
    fn empty_plan_has_zero_length() {
        let source = parse_pattern("<D>3").unwrap();
        assert_eq!(description_length(&Expr::default(), &source), 0.0);
    }

    #[test]
    fn rank_plans_orders_simplest_first_and_is_stable() {
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let plans = vec![
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("/"),
                StringExpr::extract(3),
            ]),
            Expr::concat(vec![StringExpr::extract_range(1, 3)]),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::extract(2),
                StringExpr::extract(3),
            ]),
        ];
        let ranked = rank_plans(plans.clone(), &source);
        assert_eq!(
            ranked[0].0,
            Expr::concat(vec![StringExpr::extract_range(1, 3)])
        );
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
        // Deterministic: ranking twice gives the same order.
        let ranked2 = rank_plans(plans, &source);
        let order1: Vec<String> = ranked.iter().map(|(e, _)| e.to_string()).collect();
        let order2: Vec<String> = ranked2.iter().map(|(e, _)| e.to_string()).collect();
        assert_eq!(order1, order2);
    }

    #[test]
    fn larger_source_patterns_make_extracts_costlier() {
        let small = parse_pattern("<D>2'/'<D>2").unwrap();
        let large = parse_pattern("<D>2'/'<D>2'/'<D>2'/'<D>2'/'<D>2'/'<D>2").unwrap();
        let plan = Expr::concat(vec![StringExpr::extract(1)]);
        assert!(data_length(&plan, &small) < data_length(&plan, &large));
    }
}
