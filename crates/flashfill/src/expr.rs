//! The expression language of the FlashFill-style baseline: concatenations
//! of constant strings and position-delimited substrings, guarded by the
//! input's token signature (a restricted form of Gulwani's conditional
//! `Switch`).

use std::fmt;

use clx_pattern::{tokenize, Pattern};

use crate::pos::{eval_pos, PosExpr};

/// One atom of a concatenation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A constant string.
    ConstStr(String),
    /// The substring of the input between two position expressions.
    SubStr {
        /// Left (start) position.
        left: PosExpr,
        /// Right (end) position.
        right: PosExpr,
    },
}

impl Atom {
    /// Evaluate the atom on `input`.
    pub fn eval(&self, input: &str) -> Option<String> {
        match self {
            Atom::ConstStr(s) => Some(s.clone()),
            Atom::SubStr { left, right } => {
                let l = eval_pos(left, input)?;
                let r = eval_pos(right, input)?;
                if l > r {
                    return None;
                }
                let chars: Vec<char> = input.chars().collect();
                Some(chars[l..r].iter().collect())
            }
        }
    }

    /// `true` for substring atoms (which generalize, unlike constants).
    pub fn is_substr(&self) -> bool {
        matches!(self, Atom::SubStr { .. })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::ConstStr(s) => write!(f, "ConstStr({s:?})"),
            Atom::SubStr { left, right } => write!(f, "SubStr({left}, {right})"),
        }
    }
}

/// A trace expression: a concatenation of atoms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Concat {
    /// The atoms, in output order.
    pub atoms: Vec<Atom>,
}

impl Concat {
    /// Create a concatenation.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Concat { atoms }
    }

    /// Evaluate the concatenation on one input.
    pub fn eval(&self, input: &str) -> Option<String> {
        let mut out = String::new();
        for atom in &self.atoms {
            out.push_str(&atom.eval(input)?);
        }
        Some(out)
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// `true` when there are no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }
}

impl fmt::Display for Concat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Concat(")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A conditional branch: inputs whose leaf token pattern equals `guard` are
/// transformed by `body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseBranch {
    /// The token-signature guard.
    pub guard: Pattern,
    /// The trace expression applied to matching inputs.
    pub body: Concat,
}

/// A FlashFill-style program: a switch over token-signature guards.
///
/// Unlike CLX's UniFi programs, this structure is *not* meant to be read by
/// the end user — it is the opaque artifact whose behaviour the user can
/// only probe by testing, which is exactly the verification gap the paper's
/// user studies measure.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlashFillProgram {
    /// The branches, in the order their first example was provided.
    pub branches: Vec<CaseBranch>,
}

impl FlashFillProgram {
    /// Apply the program to one input.
    ///
    /// The branch whose guard matches the input's token pattern is used; if
    /// none matches, the branches are tried in order and the first one that
    /// evaluates successfully wins. The fallback mirrors how opaque PBE
    /// programs "function unexpectedly on new input" (the `+1 724-285-5210`
    /// anecdote in the paper's Example 1): some branch fires, but not
    /// necessarily the semantically right one.
    pub fn apply(&self, input: &str) -> Option<String> {
        let signature = tokenize(input);
        for branch in &self.branches {
            if branch.guard == signature {
                return branch.body.eval(input);
            }
        }
        for branch in &self.branches {
            if let Some(out) = branch.body.eval(input) {
                return Some(out);
            }
        }
        None
    }

    /// Apply to one input, returning the input unchanged when the program
    /// has no applicable branch.
    pub fn apply_or_passthrough(&self, input: &str) -> String {
        self.apply(input).unwrap_or_else(|| input.to_string())
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// `true` when the program has no branches.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }
}

impl fmt::Display for FlashFillProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Switch(")?;
        for b in &self.branches {
            writeln!(f, "  Case({}): {}", b.guard, b.body)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::{boundary_at, PosExpr};

    fn substr(input: &str, l: usize, r: usize) -> Atom {
        Atom::SubStr {
            left: PosExpr::BoundaryPos {
                boundary: boundary_at(input, l),
                occurrence: occurrence_of(input, l),
            },
            right: PosExpr::BoundaryPos {
                boundary: boundary_at(input, r),
                occurrence: occurrence_of(input, r),
            },
        }
    }

    fn occurrence_of(input: &str, pos: usize) -> i32 {
        let b = boundary_at(input, pos);
        let matches: Vec<usize> = (0..=input.chars().count())
            .filter(|&p| boundary_at(input, p) == b)
            .collect();
        (matches.iter().position(|&p| p == pos).unwrap() + 1) as i32
    }

    #[test]
    fn atom_eval() {
        assert_eq!(
            Atom::ConstStr("x".into()).eval("whatever"),
            Some("x".into())
        );
        let a = substr("734-422-8073", 4, 7);
        assert_eq!(a.eval("734-422-8073"), Some("422".into()));
        assert_eq!(a.eval("555-936-2447"), Some("936".into()));
    }

    #[test]
    fn concat_eval() {
        let input = "734-422-8073";
        let c = Concat::new(vec![
            Atom::ConstStr("(".into()),
            substr(input, 0, 3),
            Atom::ConstStr(") ".into()),
            substr(input, 4, 7),
            Atom::ConstStr("-".into()),
            substr(input, 8, 12),
        ]);
        assert_eq!(c.eval(input), Some("(734) 422-8073".into()));
        assert_eq!(c.eval("555-936-2447"), Some("(555) 936-2447".into()));
        assert_eq!(c.len(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn concat_eval_fails_when_position_missing() {
        let c = Concat::new(vec![substr("734-422-8073", 4, 7)]);
        // No '-' boundary in this input: the substring cannot be located.
        assert_eq!(c.eval("7344228073"), None);
    }

    #[test]
    fn program_prefers_matching_guard() {
        let dashed = "734-422-8073";
        let dotted = "734.236.3466";
        let program = FlashFillProgram {
            branches: vec![
                CaseBranch {
                    guard: tokenize(dashed),
                    body: Concat::new(vec![Atom::ConstStr("dash".into())]),
                },
                CaseBranch {
                    guard: tokenize(dotted),
                    body: Concat::new(vec![Atom::ConstStr("dot".into())]),
                },
            ],
        };
        assert_eq!(program.apply("111-222-3333"), Some("dash".into()));
        assert_eq!(program.apply("111.222.3333"), Some("dot".into()));
        // Unknown format: falls through to the first branch that evaluates —
        // possibly the wrong one, as with real opaque PBE programs.
        assert_eq!(program.apply("+1 724-285-5210"), Some("dash".into()));
        assert_eq!(program.apply_or_passthrough("+1 724-285-5210"), "dash");
    }

    #[test]
    fn empty_program_passthrough() {
        let program = FlashFillProgram::default();
        assert!(program.is_empty());
        assert_eq!(program.apply("x"), None);
        assert_eq!(program.apply_or_passthrough("x"), "x");
    }

    #[test]
    fn display_forms() {
        let program = FlashFillProgram {
            branches: vec![CaseBranch {
                guard: tokenize("1-2"),
                body: Concat::new(vec![Atom::ConstStr("x".into())]),
            }],
        };
        let s = program.to_string();
        assert!(s.contains("Switch("));
        assert!(s.contains("Case("));
        assert!(Atom::ConstStr("x".into()).to_string().contains("ConstStr"));
    }
}
