//! # clx-flashfill
//!
//! A FlashFill-style programming-by-example string-transformation
//! synthesizer, built as the comparison baseline for the CLX evaluation
//! (Section 7 of *CLX: Towards verifiable PBE data transformation*).
//!
//! The real FlashFill (Gulwani, POPL 2011; now a Microsoft Excel feature and
//! part of the PROSE SDK) is closed source, so this crate implements the
//! same *interaction contract* with a compact version of the same
//! ingredients: an expression language of position-delimited substrings and
//! constants, boundary-based position descriptors that generalize across
//! values of the same format, a per-format conditional, and synthesis from
//! input/output examples. What matters for reproducing the paper's
//! experiments is preserved:
//!
//! * the user specifies intent by giving *examples*, one interaction each;
//! * the learned program is consistent with all provided examples;
//! * the learned program is an opaque artifact — verifying it means reading
//!   the transformed column instance by instance;
//! * it may behave arbitrarily on formats never exemplified.
//!
//! ```
//! use clx_flashfill::{Example, FlashFill};
//!
//! let ff = FlashFill::new();
//! let program = ff
//!     .learn(&[Example::new("(734) 645-8397", "734-645-8397")])
//!     .unwrap();
//! assert_eq!(program.apply("(231) 555-0199").unwrap(), "231-555-0199");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod expr;
mod pos;
mod synth;

pub use expr::{Atom, CaseBranch, Concat, FlashFillProgram};
pub use pos::{boundary_at, candidate_positions, eval_pos, Boundary, CharKind, PosExpr};
pub use synth::{synthesize_program, Example, FlashFillOptions};

/// The FlashFill baseline engine: a thin, configurable wrapper around
/// [`synthesize_program`].
#[derive(Debug, Clone, Default)]
pub struct FlashFill {
    options: FlashFillOptions,
}

impl FlashFill {
    /// An engine with default search bounds.
    pub fn new() -> Self {
        FlashFill {
            options: FlashFillOptions::default(),
        }
    }

    /// An engine with custom search bounds.
    pub fn with_options(options: FlashFillOptions) -> Self {
        FlashFill { options }
    }

    /// Learn a program from input/output examples.
    pub fn learn(&self, examples: &[Example]) -> Option<FlashFillProgram> {
        synthesize_program(examples, &self.options)
    }

    /// Learn a program and apply it to a whole column, leaving rows the
    /// program cannot handle unchanged (that is what a spreadsheet user
    /// sees: untouched cells).
    pub fn learn_and_apply(&self, examples: &[Example], column: &[String]) -> Vec<String> {
        match self.learn(examples) {
            Some(program) => column
                .iter()
                .map(|v| program.apply_or_passthrough(v))
                .collect(),
            None => column.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_wrapper_learns_and_applies() {
        let ff = FlashFill::new();
        let column: Vec<String> = vec![
            "(734) 645-8397".into(),
            "(231) 555-0199".into(),
            "734.236.3466".into(),
        ];
        let examples = vec![
            Example::new("(734) 645-8397", "734-645-8397"),
            Example::new("734.236.3466", "734-236-3466"),
        ];
        let out = ff.learn_and_apply(&examples, &column);
        assert_eq!(out, vec!["734-645-8397", "231-555-0199", "734-236-3466"]);
    }

    #[test]
    fn no_examples_leaves_column_unchanged() {
        let ff = FlashFill::new();
        let column: Vec<String> = vec!["a".into(), "b".into()];
        assert_eq!(ff.learn_and_apply(&[], &column), column);
    }

    #[test]
    fn custom_options() {
        let ff = FlashFill::with_options(FlashFillOptions {
            max_occurrences: 1,
            max_positions_per_side: 1,
            max_candidates: 8,
        });
        let program = ff
            .learn(&[Example::new("ab 12", "12")])
            .expect("still synthesizes under tight bounds");
        assert_eq!(program.apply("cd 99").unwrap(), "99");
    }
}
