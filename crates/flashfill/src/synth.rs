//! Example-driven synthesis for the FlashFill-style baseline.
//!
//! The synthesizer follows the spirit of Gulwani's POPL 2011 algorithm in a
//! deliberately compact form:
//!
//! 1. examples are partitioned by the token signature of their inputs (the
//!    restricted conditional of the language);
//! 2. for the representative example of each partition, the output string is
//!    segmented into spans that can be produced by generalizing `SubStr`
//!    atoms (boundary-delimited substrings of the input) or, failing that,
//!    by `ConstStr` atoms — the segmentation with the fewest atoms and the
//!    least constant text wins;
//! 3. the candidate atom combinations for that segmentation are checked
//!    against the remaining examples of the partition and the first
//!    consistent combination is selected.
//!
//! The result is sound with respect to the provided examples; like the real
//! FlashFill, it may still generalize incorrectly to unseen formats — which
//! is precisely the verification problem CLX addresses.

use std::collections::HashMap;

use clx_pattern::{tokenize, Pattern};

use crate::expr::{Atom, CaseBranch, Concat, FlashFillProgram};
use crate::pos::candidate_positions;

/// Options bounding the synthesis search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashFillOptions {
    /// Maximum number of occurrences of a span considered when generating
    /// `SubStr` candidates.
    pub max_occurrences: usize,
    /// Maximum number of position-expression pairs per occurrence.
    pub max_positions_per_side: usize,
    /// Maximum number of full-program candidates checked per partition.
    pub max_candidates: usize,
}

impl Default for FlashFillOptions {
    fn default() -> Self {
        FlashFillOptions {
            max_occurrences: 4,
            max_positions_per_side: 3,
            max_candidates: 256,
        }
    }
}

/// One input/output example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// The raw input value.
    pub input: String,
    /// The desired output value.
    pub output: String,
}

impl Example {
    /// Convenience constructor.
    pub fn new(input: impl Into<String>, output: impl Into<String>) -> Self {
        Example {
            input: input.into(),
            output: output.into(),
        }
    }
}

/// Synthesize a program from input/output examples. Returns `None` when no
/// branch at all could be synthesized (e.g. no examples).
pub fn synthesize_program(
    examples: &[Example],
    options: &FlashFillOptions,
) -> Option<FlashFillProgram> {
    if examples.is_empty() {
        return None;
    }
    // Partition by input token signature, preserving first-seen order.
    let mut partitions: Vec<(Pattern, Vec<&Example>)> = Vec::new();
    for ex in examples {
        let sig = tokenize(&ex.input);
        match partitions.iter_mut().find(|(p, _)| *p == sig) {
            Some((_, v)) => v.push(ex),
            None => partitions.push((sig, vec![ex])),
        }
    }

    let mut branches = Vec::new();
    for (guard, members) in partitions {
        if let Some(body) = synthesize_branch(&members, options) {
            branches.push(CaseBranch { guard, body });
        }
    }
    if branches.is_empty() {
        None
    } else {
        Some(FlashFillProgram { branches })
    }
}

/// Synthesize the trace expression for one partition.
fn synthesize_branch(members: &[&Example], options: &FlashFillOptions) -> Option<Concat> {
    // Try each member as the representative whose output segmentation drives
    // the search; the first candidate consistent with *every* member wins.
    for representative in members {
        let candidates = candidate_concats(representative, options);
        for candidate in &candidates {
            if members
                .iter()
                .all(|ex| candidate.eval(&ex.input).as_deref() == Some(ex.output.as_str()))
            {
                return Some(candidate.clone());
            }
        }
    }
    // Fall back to a candidate consistent with the first member only (the
    // real FlashFill also keeps *some* program when generalization fails).
    candidate_concats(members[0], options).into_iter().next()
}

/// Candidate trace expressions for a single example, best (most general,
/// fewest atoms) first.
fn candidate_concats(example: &Example, options: &FlashFillOptions) -> Vec<Concat> {
    let output: Vec<char> = example.output.chars().collect();
    let m = output.len();
    if m == 0 {
        return vec![Concat::default()];
    }

    // Atom candidates per span (i, j), generalizing SubStrs first.
    let mut span_atoms: HashMap<(usize, usize), Vec<Atom>> = HashMap::new();
    for i in 0..m {
        for j in (i + 1)..=m {
            let segment: String = output[i..j].iter().collect();
            let mut atoms = substr_atoms(&example.input, &segment, options);
            atoms.push(Atom::ConstStr(segment));
            span_atoms.insert((i, j), atoms);
        }
    }

    // Dynamic program: minimal cost segmentation of the output. SubStr spans
    // cost a small constant; ConstStr-only spans pay a heavy per-character
    // price so that constants are used only for glue text that genuinely has
    // no source in the input (separators, brackets) and never swallow
    // neighbouring extractable content.
    let span_cost = |i: usize, j: usize| -> u32 {
        let has_substr = span_atoms
            .get(&(i, j))
            .map(|atoms| atoms.iter().any(Atom::is_substr))
            .unwrap_or(false);
        if has_substr {
            2
        } else {
            4 + 10 * (j - i) as u32
        }
    };
    let mut best: Vec<u32> = vec![u32::MAX; m + 1];
    let mut back: Vec<usize> = vec![0; m + 1];
    best[0] = 0;
    for j in 1..=m {
        for i in 0..j {
            if best[i] == u32::MAX {
                continue;
            }
            let cost = best[i] + span_cost(i, j);
            if cost < best[j] {
                best[j] = cost;
                back[j] = i;
            }
        }
    }
    // Recover the segmentation.
    let mut cut_points = vec![m];
    let mut j = m;
    while j > 0 {
        j = back[j];
        cut_points.push(j);
    }
    cut_points.reverse();
    let spans: Vec<(usize, usize)> = cut_points.windows(2).map(|w| (w[0], w[1])).collect();

    // Cartesian product over the atom choices of each span, bounded.
    let mut candidates: Vec<Vec<Atom>> = vec![Vec::new()];
    for &(i, j) in &spans {
        let atoms = &span_atoms[&(i, j)];
        let mut next = Vec::new();
        for prefix in &candidates {
            for atom in atoms {
                if next.len() >= options.max_candidates {
                    break;
                }
                let mut extended = prefix.clone();
                extended.push(atom.clone());
                next.push(extended);
            }
        }
        candidates = next;
        if candidates.len() > options.max_candidates {
            candidates.truncate(options.max_candidates);
        }
    }
    candidates.into_iter().map(Concat::new).collect()
}

/// Generalizing `SubStr` atoms that produce `segment` from `input`.
fn substr_atoms(input: &str, segment: &str, options: &FlashFillOptions) -> Vec<Atom> {
    let input_chars: Vec<char> = input.chars().collect();
    let seg_chars: Vec<char> = segment.chars().collect();
    let mut atoms = Vec::new();
    if seg_chars.is_empty() || seg_chars.len() > input_chars.len() {
        return atoms;
    }
    let mut occurrences = 0;
    for start in 0..=(input_chars.len() - seg_chars.len()) {
        if input_chars[start..start + seg_chars.len()] != seg_chars[..] {
            continue;
        }
        occurrences += 1;
        if occurrences > options.max_occurrences {
            break;
        }
        let end = start + seg_chars.len();
        let lefts = candidate_positions(input, start);
        let rights = candidate_positions(input, end);
        for left in lefts.iter().take(options.max_positions_per_side) {
            for right in rights.iter().take(options.max_positions_per_side) {
                atoms.push(Atom::SubStr {
                    left: left.clone(),
                    right: right.clone(),
                });
            }
        }
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> FlashFillOptions {
        FlashFillOptions::default()
    }

    #[test]
    fn single_example_phone_reformat_generalizes() {
        let examples = vec![Example::new("(734) 645-8397", "734-645-8397")];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.apply("(734) 645-8397").unwrap(), "734-645-8397");
        // Generalizes to another value of the same format.
        assert_eq!(program.apply("(231) 555-0199").unwrap(), "231-555-0199");
    }

    #[test]
    fn multiple_formats_need_multiple_examples() {
        let examples = vec![
            Example::new("(734) 645-8397", "734-645-8397"),
            Example::new("734.236.3466", "734-236-3466"),
        ];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program.apply("(555) 111-2222").unwrap(), "555-111-2222");
        assert_eq!(program.apply("555.111.2222").unwrap(), "555-111-2222");
    }

    #[test]
    fn second_example_in_same_partition_refines_the_branch() {
        // With one example the constant "00" could be baked in; the second
        // example forces the generalizing program.
        let examples = vec![
            Example::new("CPT-00350", "[CPT-00350]"),
            Example::new("CPT-99125", "[CPT-99125]"),
        ];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.len(), 1);
        assert_eq!(program.apply("CPT-12345").unwrap(), "[CPT-12345]");
    }

    #[test]
    fn name_reordering_example() {
        // FlashFill's flagship demo: first/last name reordering.
        let examples = vec![Example::new("Eran Yahav", "Yahav, E.")];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.apply("Eran Yahav").unwrap(), "Yahav, E.");
        assert_eq!(program.apply("Bill Gates").unwrap(), "Gates, B.");
    }

    #[test]
    fn constant_output_when_nothing_to_extract() {
        let examples = vec![Example::new("whatever", "N/A")];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.apply("whatever").unwrap(), "N/A");
    }

    #[test]
    fn empty_output_example() {
        let examples = vec![Example::new("abc", "")];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.apply("abc").unwrap(), "");
    }

    #[test]
    fn no_examples_yields_none() {
        assert!(synthesize_program(&[], &opts()).is_none());
    }

    #[test]
    fn program_is_consistent_with_all_examples() {
        let examples = vec![
            Example::new("(734) 645-8397", "734-645-8397"),
            Example::new("(231) 555-0199", "231-555-0199"),
            Example::new("734.236.3466", "734-236-3466"),
            Example::new("941.555.0123", "941-555-0123"),
        ];
        let program = synthesize_program(&examples, &opts()).unwrap();
        for ex in &examples {
            assert_eq!(
                program.apply(&ex.input).as_deref(),
                Some(ex.output.as_str()),
                "program must reproduce example {ex:?}"
            );
        }
    }

    #[test]
    fn unseen_format_may_misfire_like_real_flashfill() {
        // The paper's Example 1 anecdote: a program learned on clean formats
        // does *something* on "+1 724-285-5210", but not necessarily the
        // right thing — and never signals the problem.
        let examples = vec![Example::new("(734) 645-8397", "(734) 645-8397")];
        let program = synthesize_program(&examples, &opts()).unwrap();
        let out = program.apply_or_passthrough("+1 724-285-5210");
        // It produces some output (no error, no flag) — the point is that the
        // user cannot tell whether it is right without inspecting it.
        assert!(!out.is_empty());
    }

    #[test]
    fn date_extraction() {
        let examples = vec![
            Example::new("01/15/2013", "01"),
            Example::new("03/07/2011", "03"),
        ];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.apply("12/25/2020").unwrap(), "12");
    }

    #[test]
    fn suffix_extraction_with_varying_length() {
        let examples = vec![
            Example::new("report.pdf", "pdf"),
            Example::new("image.jpeg", "jpeg"),
        ];
        let program = synthesize_program(&examples, &opts()).unwrap();
        assert_eq!(program.apply("archive.tar").unwrap(), "tar");
    }
}
