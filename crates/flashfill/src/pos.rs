//! Position expressions for the FlashFill-style baseline synthesizer.
//!
//! A position expression identifies a character boundary within an input
//! string, either absolutely (`CPos`) or by the character classes on both
//! sides of the boundary (`BoundaryPos`) — a simplified form of the
//! token-based position logic of Gulwani's POPL 2011 string-transformation
//! language. Boundary positions are what make a learned substring program
//! generalize from one example to other values with the same format.

use std::fmt;

/// A coarse character class used for boundary descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CharKind {
    /// `[0-9]`
    Digit,
    /// `[a-z]`
    Lower,
    /// `[A-Z]`
    Upper,
    /// Whitespace.
    Space,
    /// Any other (symbol) character.
    Symbol,
    /// The virtual class before the first character.
    Start,
    /// The virtual class after the last character.
    End,
}

impl CharKind {
    /// The kind of a concrete character.
    pub fn of(c: char) -> Self {
        if c.is_ascii_digit() {
            CharKind::Digit
        } else if c.is_ascii_lowercase() {
            CharKind::Lower
        } else if c.is_ascii_uppercase() {
            CharKind::Upper
        } else if c.is_whitespace() {
            CharKind::Space
        } else {
            CharKind::Symbol
        }
    }
}

impl fmt::Display for CharKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CharKind::Digit => "digit",
            CharKind::Lower => "lower",
            CharKind::Upper => "upper",
            CharKind::Space => "space",
            CharKind::Symbol => "symbol",
            CharKind::Start => "start",
            CharKind::End => "end",
        };
        write!(f, "{s}")
    }
}

/// A boundary signature: the character kinds immediately left and right of a
/// position, refined with the concrete symbol characters when present (so a
/// boundary before `'-'` differs from one before `'.'`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Boundary {
    /// Kind of the character to the left (or `Start`).
    pub left: CharKind,
    /// Kind of the character to the right (or `End`).
    pub right: CharKind,
    /// The concrete symbol to the left, when `left` is `Symbol`.
    pub left_symbol: Option<char>,
    /// The concrete symbol to the right, when `right` is `Symbol`.
    pub right_symbol: Option<char>,
}

/// A position expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PosExpr {
    /// Absolute character position from the start (>= 0) or, when negative,
    /// from the end (`-1` is the end of the string).
    CPos(i32),
    /// The `occurrence`-th position (1-based; negative counts from the end)
    /// whose boundary signature equals `boundary`.
    BoundaryPos {
        /// The boundary signature to look for.
        boundary: Boundary,
        /// Which occurrence (1-based from the start, negative from the end).
        occurrence: i32,
    },
}

impl fmt::Display for PosExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosExpr::CPos(k) => write!(f, "CPos({k})"),
            PosExpr::BoundaryPos {
                boundary,
                occurrence,
            } => write!(f, "Pos({}|{}, {occurrence})", boundary.left, boundary.right),
        }
    }
}

/// All character positions of `input` (0..=len in characters).
fn char_count(input: &str) -> usize {
    input.chars().count()
}

/// The boundary signature at character position `pos` of `input`.
pub fn boundary_at(input: &str, pos: usize) -> Boundary {
    let chars: Vec<char> = input.chars().collect();
    let left_char = if pos == 0 {
        None
    } else {
        chars.get(pos - 1).copied()
    };
    let right_char = chars.get(pos).copied();
    let left = left_char.map(CharKind::of).unwrap_or(CharKind::Start);
    let right = right_char.map(CharKind::of).unwrap_or(CharKind::End);
    Boundary {
        left,
        right,
        left_symbol: left_char.filter(|c| CharKind::of(*c) == CharKind::Symbol),
        right_symbol: right_char.filter(|c| CharKind::of(*c) == CharKind::Symbol),
    }
}

/// Evaluate a position expression against `input`, returning a character
/// position in `0..=len`, or `None` when the expression does not apply.
pub fn eval_pos(expr: &PosExpr, input: &str) -> Option<usize> {
    let n = char_count(input) as i32;
    match expr {
        PosExpr::CPos(k) => {
            let pos = if *k >= 0 { *k } else { n + 1 + *k };
            if (0..=n).contains(&pos) {
                Some(pos as usize)
            } else {
                None
            }
        }
        PosExpr::BoundaryPos {
            boundary,
            occurrence,
        } => {
            let matches: Vec<usize> = (0..=(n as usize))
                .filter(|&p| &boundary_at(input, p) == boundary)
                .collect();
            if matches.is_empty() || *occurrence == 0 {
                return None;
            }
            if *occurrence > 0 {
                matches.get((*occurrence - 1) as usize).copied()
            } else {
                let idx = matches.len() as i32 + *occurrence;
                if idx >= 0 {
                    matches.get(idx as usize).copied()
                } else {
                    None
                }
            }
        }
    }
}

/// Generate candidate position expressions that evaluate to character
/// position `pos` on `input`. Boundary-based descriptors come first because
/// they generalize; absolute positions are the fallback.
pub fn candidate_positions(input: &str, pos: usize) -> Vec<PosExpr> {
    let n = char_count(input);
    let mut out = Vec::new();
    let boundary = boundary_at(input, pos);
    let matches: Vec<usize> = (0..=n)
        .filter(|&p| boundary_at(input, p) == boundary)
        .collect();
    if let Some(rank) = matches.iter().position(|&p| p == pos) {
        out.push(PosExpr::BoundaryPos {
            boundary: boundary.clone(),
            occurrence: (rank + 1) as i32,
        });
        let from_end = -((matches.len() - rank) as i32);
        out.push(PosExpr::BoundaryPos {
            boundary,
            occurrence: from_end,
        });
    }
    out.push(PosExpr::CPos(pos as i32));
    out.push(PosExpr::CPos(pos as i32 - n as i32 - 1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_kinds() {
        assert_eq!(CharKind::of('5'), CharKind::Digit);
        assert_eq!(CharKind::of('a'), CharKind::Lower);
        assert_eq!(CharKind::of('Z'), CharKind::Upper);
        assert_eq!(CharKind::of(' '), CharKind::Space);
        assert_eq!(CharKind::of('-'), CharKind::Symbol);
    }

    #[test]
    fn boundary_at_edges() {
        let b = boundary_at("ab", 0);
        assert_eq!(b.left, CharKind::Start);
        assert_eq!(b.right, CharKind::Lower);
        let b = boundary_at("ab", 2);
        assert_eq!(b.left, CharKind::Lower);
        assert_eq!(b.right, CharKind::End);
    }

    #[test]
    fn boundary_distinguishes_symbols() {
        let dash = boundary_at("1-2", 1);
        let dot = boundary_at("1.2", 1);
        assert_ne!(dash, dot);
        assert_eq!(dash.right_symbol, Some('-'));
        assert_eq!(dot.right_symbol, Some('.'));
    }

    #[test]
    fn cpos_evaluation() {
        assert_eq!(eval_pos(&PosExpr::CPos(0), "abc"), Some(0));
        assert_eq!(eval_pos(&PosExpr::CPos(3), "abc"), Some(3));
        assert_eq!(eval_pos(&PosExpr::CPos(4), "abc"), None);
        assert_eq!(eval_pos(&PosExpr::CPos(-1), "abc"), Some(3));
        assert_eq!(eval_pos(&PosExpr::CPos(-4), "abc"), Some(0));
        assert_eq!(eval_pos(&PosExpr::CPos(-5), "abc"), None);
    }

    #[test]
    fn boundary_pos_evaluation() {
        // Positions where a digit run starts after a symbol in "734-422-8073"
        let input = "734-422-8073";
        let b = boundary_at(input, 4); // between '-' and '4'
        let first = PosExpr::BoundaryPos {
            boundary: b.clone(),
            occurrence: 1,
        };
        let last = PosExpr::BoundaryPos {
            boundary: b,
            occurrence: -1,
        };
        assert_eq!(eval_pos(&first, input), Some(4));
        assert_eq!(eval_pos(&last, input), Some(8));
        // Same descriptors transfer to another value of the same format.
        assert_eq!(eval_pos(&first, "555-936-2447"), Some(4));
        assert_eq!(eval_pos(&last, "555-936-2447"), Some(8));
    }

    #[test]
    fn candidate_positions_roundtrip() {
        let input = "(734) 645-8397";
        for pos in 0..=input.chars().count() {
            for cand in candidate_positions(input, pos) {
                assert_eq!(
                    eval_pos(&cand, input),
                    Some(pos),
                    "candidate {cand} must evaluate back to {pos}"
                );
            }
        }
    }

    #[test]
    fn boundary_generalizes_across_values() {
        // Start of the last digit run learned on one phone number applies to
        // another with different digits.
        let cands = candidate_positions("734-422-8073", 8);
        let generalizing: Vec<&PosExpr> = cands
            .iter()
            .filter(|c| matches!(c, PosExpr::BoundaryPos { .. }))
            .collect();
        assert!(!generalizing.is_empty());
        for c in generalizing {
            assert_eq!(eval_pos(c, "231-555-0199"), Some(8));
        }
    }

    #[test]
    fn occurrence_zero_is_invalid() {
        let b = boundary_at("a1", 1);
        assert_eq!(
            eval_pos(
                &PosExpr::BoundaryPos {
                    boundary: b,
                    occurrence: 0
                },
                "a1"
            ),
            None
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(eval_pos(&PosExpr::CPos(0), ""), Some(0));
        assert_eq!(eval_pos(&PosExpr::CPos(-1), ""), Some(0));
        let cands = candidate_positions("", 0);
        assert!(!cands.is_empty());
    }
}
