//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the `proptest!` test macro, the assertion/assumption macros, and the
//! strategy combinators the workspace's property tests rely on
//! (`prop_oneof!`, `Just`, `prop_map`, `collection::vec`, `char::range`,
//! `usize` ranges).
//!
//! Generation is a deterministic SplitMix64 stream per test; there is no
//! shrinking. Failures report the generated inputs via the assertion message.
//!
//! Like the real crate, the `PROPTEST_CASES` environment variable controls
//! the case count — with one shim simplification: when set, it overrides
//! the per-block `ProptestConfig` too (the real crate only overrides the
//! default). That is exactly what CI wants: one env var raising every
//! suite's case count without touching the sources.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe: combinator methods carry `where Self: Sized` so that
    /// `Box<dyn Strategy<Value = T>>` works (needed by `prop_oneof!`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Box a strategy for storage in a [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Like the real crate, a `usize` range is itself a strategy drawing
    /// uniformly from it (used for shard counts, chunk lengths, …).
    impl Strategy for ::std::ops::Range<usize> {
        type Value = usize;

        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Like the real crate, tuples of strategies are strategies over
    /// tuples, sampled component-wise.
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// A strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A uniform choice between several strategies of the same value type;
    /// built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// A union over the given arms (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Character strategies.
pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A character drawn uniformly from the inclusive range `start..=end`.
    pub fn range(start: ::core::primitive::char, end: ::core::primitive::char) -> CharRange {
        assert!(start <= end, "empty char range");
        CharRange {
            start: start as u32,
            end: end as u32,
        }
    }

    /// The strategy returned by [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        start: u32,
        end: u32,
    }

    impl Strategy for CharRange {
        type Value = ::core::primitive::char;

        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::char {
            let span = (self.end - self.start + 1) as usize;
            let code = self.start + rng.below(span) as u32;
            ::core::primitive::char::from_u32(code).expect("valid scalar in sampled range")
        }
    }
}

/// The test runner: configuration, RNG, and case outcomes.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count to actually run: the `PROPTEST_CASES` environment
        /// variable when set (and parseable), the configured count
        /// otherwise. See the crate docs for the shim's override semantics.
        pub fn resolved_cases(&self) -> u32 {
            match ::std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not succeed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    /// The deterministic generator driving value sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed, documented seed so test runs are
        /// reproducible.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5DEE_CE66_D0BB_4ACD,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0) is meaningless");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __cases = __config.resolved_cases();
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cases.saturating_mul(16).max(16);
                while __passed < __cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} falsified after {} cases\n  inputs: {}\n  {}",
                                stringify!($name), __passed, __inputs, msg
                            );
                        }
                    }
                }
                assert!(
                    __passed >= __cases,
                    "property {} exhausted {} attempts with only {} accepted cases",
                    stringify!($name), __max_attempts, __passed
                );
            }
        )*
    };
}

/// A uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($arm) ),+ ])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn letters() -> impl Strategy<Value = String> {
        crate::collection::vec(prop_oneof![crate::char::range('a', 'c'), Just('-')], 0..8)
            .prop_map(|chars| chars.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn strings_use_requested_alphabet(s in letters()) {
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '-')), "bad string {:?}", s);
            prop_assert!(s.chars().count() < 8);
        }

        #[test]
        fn assume_rejects_without_failing(s in letters()) {
            prop_assume!(!s.is_empty());
            prop_assert_eq!(s.chars().count(), s.len());
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in crate::char::range('a', 'z')) {
                prop_assert!(false, "x was {:?}", x);
            }
        }
        always_fails();
    }
}
