//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this shim provides a
//! small wall-clock benchmarking harness behind Criterion's API surface
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, throughput annotations). It reports mean ns/iter (and
//! derived throughput) to stdout. It does no statistical analysis; the point
//! is that `cargo bench` runs end-to-end and prints comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so existing `use criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Minimum measured wall-clock time per benchmark before reporting.
const TARGET_TIME: Duration = Duration::from_millis(200);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.render(), self.sample_size, None, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples (kept for API compatibility;
    /// this harness interprets it as a lower bound on iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a bare parameter (unused function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// A throughput denominator for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The per-benchmark timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    min_iters: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm up and estimate a per-iteration cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    // Choose an iteration count that reaches the target time. The requested
    // sample size only caps how far above the target we are willing to go,
    // so slow benchmarks stay responsive.
    let wanted = (TARGET_TIME.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let iters = wanted.min(min_iters as u64 * 1_000).max(1);
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 * 1e9 / ns_per_iter),
        Throughput::Bytes(n) => format!(" ({:.0} B/s)", n as f64 * 1e9 / ns_per_iter),
    });
    println!(
        "bench: {label:<60} {:>14.1} ns/iter ({iters} iters){}",
        ns_per_iter,
        rate.unwrap_or_default()
    );
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench-binary `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        quick_bench(&mut c);
        c.bench_function("top_level", |b| b.iter(|| 2u32 * 2));
    }
}
