//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this shim provides
//! API-compatible `StdRng`/`SeedableRng`/`Rng`/`SliceRandom` implementations
//! backed by a SplitMix64 generator. It is deterministic for a given seed,
//! which is all `clx-datagen` requires; it makes no cryptographic or
//! statistical-quality claims beyond "good enough to shuffle test data".

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of pseudo-random 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Random-value convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value in `range` (half-open, `start..end`).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range, self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// A uniform sample from `range`.
    fn sample_range<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore>(range: Range<Self>, rng: &mut R) -> Self {
                    assert!(range.start < range.end, "cannot sample empty range");
                    let span = (range.end as i128 - range.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (range.start as i128 + offset as i128) as $t
                }
            }
        )*
    };
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Avoid the all-zeros fixed point and decorrelate tiny seeds.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling and shuffling, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(200..990);
            assert!((200..990).contains(&v));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let options = ["a", "b", "c"];
        assert!(options.choose(&mut rng).is_some());
        let empty: [&str; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }
}
