//! # clx-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! evaluation section of *CLX: Towards verifiable PBE data transformation*.
//!
//! Each `report_*` function runs the corresponding experiment (on the
//! reconstructed workloads of `clx-datagen`, through the simulated users of
//! `clx-baselines`) and renders a plain-text table mirroring the paper's
//! artifact. The `exp_*` binaries in `src/bin/` are thin wrappers around
//! these functions; the Criterion benchmarks in `benches/` measure the
//! system-side latency claims (interactive clustering and synthesis).
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Figure 11a/b/c (completion time, interactions, timestamps) | [`report_fig11`] |
//! | Figure 12 (verification time) | [`report_fig12`] |
//! | Figure 13 (comprehension correct rate) | [`report_fig13`] |
//! | Figure 14 (per-task completion time) | [`report_fig14`] |
//! | Table 5 (explainability test cases) | [`report_tab5`] |
//! | Table 6 (benchmark test cases) | [`report_tab6`] |
//! | Table 7 (user-effort comparison) | [`report_tab7`] |
//! | Figure 15 (per-task Step speedup) | [`report_fig15`] |
//! | Figure 16 (CDF of CLX steps) | [`report_fig16`] |
//! | Appendix E statistics | [`report_appendix_e`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

use clx_baselines::{
    appendix_e, comprehension_study, expressivity, run_clx_user, run_flashfill_user,
    run_regex_replace_user, run_simulation, speedups, step_cdf, table7, TaskResult, UserModel,
};
use clx_datagen::{benchmark_suite, explainability_tasks, study_cases, suite_stats, BenchmarkTask};
use clx_pattern::Pattern;

/// Default seed used by the binaries so results are reproducible.
pub const DEFAULT_SEED: u64 = 2019;

/// Ground truth for the §7.2 phone study: normalize to `<D>3-<D>3-<D>4`.
pub fn phone_ground_truth(inputs: &[String]) -> Vec<String> {
    inputs
        .iter()
        .map(|v| {
            let digits: String = v.chars().filter(|c| c.is_ascii_digit()).collect();
            if digits.len() >= 10 {
                let d = &digits[digits.len() - 10..];
                format!("{}-{}-{}", &d[0..3], &d[3..6], &d[6..10])
            } else {
                v.clone()
            }
        })
        .collect()
}

/// The per-system interaction traces and modelled times on one study case.
struct StudyRun {
    case_name: String,
    clx: clx_baselines::SystemTimes,
    flashfill: clx_baselines::SystemTimes,
    regex_replace: clx_baselines::SystemTimes,
    clx_interactions: usize,
    flashfill_interactions: usize,
    regex_replace_interactions: usize,
}

fn run_study(seed: u64) -> Vec<StudyRun> {
    let model = UserModel::default();
    study_cases(seed)
        .into_iter()
        .map(|case| {
            let expected = phone_ground_truth(&case.data);
            let target = case.target_pattern();
            let clx_trace = run_clx_user(&case.data, &expected, &target);
            let ff_trace = run_flashfill_user(&case.data, &expected, 40);
            let (rr_trace, _) = run_regex_replace_user(&case.data, &expected, &target, 40);
            StudyRun {
                case_name: case.name.clone(),
                clx: model.clx_times(&clx_trace),
                flashfill: model.flashfill_times(&ff_trace),
                regex_replace: model.regex_replace_times(&rr_trace),
                clx_interactions: clx_trace.interactions(),
                flashfill_interactions: ff_trace.interactions(),
                regex_replace_interactions: rr_trace.interactions(),
            }
        })
        .collect()
}

/// Figure 11: overall completion time (a), rounds of interaction (b) and the
/// interaction timestamps of the `300(6)` case (c).
pub fn report_fig11(seed: u64) -> String {
    let runs = run_study(seed);
    let mut out = String::new();
    writeln!(out, "Figure 11a — overall completion time (seconds)").unwrap();
    writeln!(
        out,
        "{:<10} {:>14} {:>12} {:>8}",
        "case", "RegexReplace", "FlashFill", "CLX"
    )
    .unwrap();
    for r in &runs {
        writeln!(
            out,
            "{:<10} {:>14.0} {:>12.0} {:>8.0}",
            r.case_name,
            r.regex_replace.completion_secs,
            r.flashfill.completion_secs,
            r.clx.completion_secs
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(out, "Figure 11b — rounds of interaction").unwrap();
    writeln!(
        out,
        "{:<10} {:>14} {:>12} {:>8}",
        "case", "RegexReplace", "FlashFill", "CLX"
    )
    .unwrap();
    for r in &runs {
        writeln!(
            out,
            "{:<10} {:>14} {:>12} {:>8}",
            r.case_name, r.regex_replace_interactions, r.flashfill_interactions, r.clx_interactions
        )
        .unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "Figure 11c — interaction timestamps for 300(6) (seconds)"
    )
    .unwrap();
    if let Some(big) = runs.last() {
        for (label, times) in [
            ("RegexReplace", &big.regex_replace),
            ("FlashFill", &big.flashfill),
            ("CLX", &big.clx),
        ] {
            let ts: Vec<String> = times
                .interaction_timestamps
                .iter()
                .map(|t| format!("{t:.0}"))
                .collect();
            writeln!(out, "{label:<13} {}", ts.join(" ")).unwrap();
        }
    }
    out
}

/// Figure 12: verification time per study case and system, plus the headline
/// growth factors (the paper: 1.3x for CLX vs 11.4x for FlashFill when the
/// data grows from 10(2) to 300(6)).
pub fn report_fig12(seed: u64) -> String {
    let runs = run_study(seed);
    let mut out = String::new();
    writeln!(out, "Figure 12 — verification time (seconds)").unwrap();
    writeln!(
        out,
        "{:<10} {:>14} {:>12} {:>8}",
        "case", "RegexReplace", "FlashFill", "CLX"
    )
    .unwrap();
    for r in &runs {
        writeln!(
            out,
            "{:<10} {:>14.0} {:>12.0} {:>8.0}",
            r.case_name,
            r.regex_replace.verification_secs,
            r.flashfill.verification_secs,
            r.clx.verification_secs
        )
        .unwrap();
    }
    if runs.len() >= 3 {
        let growth = |small: f64, big: f64| big / small.max(1e-9);
        writeln!(out).unwrap();
        writeln!(
            out,
            "verification growth 10(2) -> 300(6): CLX {:.1}x, FlashFill {:.1}x, RegexReplace {:.1}x",
            growth(runs[0].clx.verification_secs, runs[2].clx.verification_secs),
            growth(
                runs[0].flashfill.verification_secs,
                runs[2].flashfill.verification_secs
            ),
            growth(
                runs[0].regex_replace.verification_secs,
                runs[2].regex_replace.verification_secs
            ),
        )
        .unwrap();
    }
    out
}

/// Figure 13: the comprehension (explainability) correct rates.
pub fn report_fig13(seed: u64) -> String {
    let results = comprehension_study(seed);
    let mut out = String::new();
    writeln!(out, "Figure 13 — user comprehension correct rate").unwrap();
    writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>8}",
        "task", "RegexReplace", "FlashFill", "CLX"
    )
    .unwrap();
    for r in &results {
        writeln!(
            out,
            "task {:<3} {:>14.2} {:>12.2} {:>8.2}",
            r.task, r.regex_replace, r.flashfill, r.clx
        )
        .unwrap();
    }
    out
}

/// Figure 14: modelled completion time on the three Table 5 tasks.
pub fn report_fig14(seed: u64) -> String {
    let model = UserModel::default();
    let mut out = String::new();
    writeln!(
        out,
        "Figure 14 — completion time on the explainability tasks (seconds)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>14} {:>12} {:>8}",
        "task", "RegexReplace", "FlashFill", "CLX"
    )
    .unwrap();
    for task in explainability_tasks(seed) {
        let target: Pattern = task.target_pattern();
        let clx = model.clx_times(&run_clx_user(&task.inputs, &task.expected, &target));
        let ff = model.flashfill_times(&run_flashfill_user(&task.inputs, &task.expected, 40));
        let (rr_trace, _) = run_regex_replace_user(&task.inputs, &task.expected, &target, 40);
        let rr = model.regex_replace_times(&rr_trace);
        writeln!(
            out,
            "task {:<3} {:>14.0} {:>12.0} {:>8.0}",
            task.id, rr.completion_secs, ff.completion_secs, clx.completion_secs
        )
        .unwrap();
    }
    out
}

fn task_stats_row(task: &BenchmarkTask) -> String {
    format!(
        "{:<8} {:>5} {:>7.1} {:>7} {:<}",
        format!("Task{}", task.id),
        task.size(),
        task.avg_len(),
        task.max_len(),
        task.data_type.name()
    )
}

/// Table 5: the explainability test cases.
pub fn report_tab5(seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "Table 5 — explainability test cases").unwrap();
    writeln!(
        out,
        "{:<8} {:>5} {:>7} {:>7} DataType",
        "TaskID", "Size", "AvgLen", "MaxLen"
    )
    .unwrap();
    for task in explainability_tasks(seed) {
        writeln!(out, "{}", task_stats_row(&task)).unwrap();
    }
    out
}

/// Table 6: the benchmark suite statistics.
pub fn report_tab6(seed: u64) -> String {
    let suite = benchmark_suite(seed);
    let stats = suite_stats(&suite);
    let mut out = String::new();
    writeln!(out, "Table 6 — benchmark test cases").unwrap();
    writeln!(
        out,
        "{:<10} {:>7} {:>8} {:>7} {:>7}",
        "Sources", "#tests", "AvgSize", "AvgLen", "MaxLen"
    )
    .unwrap();
    for s in stats {
        writeln!(
            out,
            "{:<10} {:>7} {:>8.1} {:>7.1} {:>7}",
            s.source, s.tests, s.avg_size, s.avg_len, s.max_len
        )
        .unwrap();
    }
    out
}

/// Run the 47-task simulation once (it is shared by Table 7, Figures 15/16
/// and Appendix E).
pub fn simulation_results(seed: u64) -> Vec<TaskResult> {
    run_simulation(seed)
}

/// Table 7 plus the expressivity counts of §7.4.
pub fn report_tab7(results: &[TaskResult]) -> String {
    let t = table7(results);
    let e = expressivity(results);
    let mut out = String::new();
    writeln!(out, "Table 7 — user effort simulation comparison").unwrap();
    writeln!(
        out,
        "{:<20} {:>9} {:>5} {:>10}",
        "Baselines", "CLX Wins", "Tie", "CLX Loses"
    )
    .unwrap();
    let pct = |n: usize| format!("{} ({:.0}%)", n, 100.0 * n as f64 / results.len() as f64);
    writeln!(
        out,
        "{:<20} {:>9} {:>5} {:>10}",
        "vs. FlashFill",
        pct(t.vs_flashfill.clx_wins),
        pct(t.vs_flashfill.ties),
        pct(t.vs_flashfill.clx_loses)
    )
    .unwrap();
    writeln!(
        out,
        "{:<20} {:>9} {:>5} {:>10}",
        "vs. RegexReplace",
        pct(t.vs_regex_replace.clx_wins),
        pct(t.vs_regex_replace.ties),
        pct(t.vs_regex_replace.clx_loses)
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Expressivity: CLX {}/{} , FlashFill {}/{} , RegexReplace {}/{}",
        e.clx, e.total, e.flashfill, e.total, e.regex_replace, e.total
    )
    .unwrap();
    out
}

/// Figure 15: per-task Step-count speedups of CLX over the baselines.
pub fn report_fig15(results: &[TaskResult]) -> String {
    let mut out = String::new();
    writeln!(out, "Figure 15 — Step-count speedup of CLX per test case").unwrap();
    writeln!(
        out,
        "{:<5} {:>14} {:>17}",
        "task", "vs FlashFill", "vs RegexReplace"
    )
    .unwrap();
    for (id, vs_ff, vs_rr) in speedups(results) {
        writeln!(out, "{id:<5} {vs_ff:>13.2}x {vs_rr:>16.2}x").unwrap();
    }
    out
}

/// Figure 16: the CDF of CLX Steps split by phase.
pub fn report_fig16(results: &[TaskResult]) -> String {
    let mut out = String::new();
    writeln!(out, "Figure 16 — fraction of test cases costing <= N steps").unwrap();
    writeln!(
        out,
        "{:<6} {:>10} {:>8} {:>7}",
        "steps", "Selection", "Adjust", "Total"
    )
    .unwrap();
    for point in step_cdf(results, 5) {
        writeln!(
            out,
            "{:<6} {:>9.0}% {:>7.0}% {:>6.0}%",
            point.steps,
            point.selection * 100.0,
            point.adjust * 100.0,
            point.total * 100.0
        )
        .unwrap();
    }
    out
}

/// The Appendix E statistics.
pub fn report_appendix_e(results: &[TaskResult]) -> String {
    let stats = appendix_e(results);
    let mut out = String::new();
    writeln!(
        out,
        "Appendix E — initial program quality and repair effort"
    )
    .unwrap();
    writeln!(
        out,
        "initial program already perfect:        {:>5.0}% of tasks",
        stats.initial_perfect_fraction * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "repaired tasks fixed with one repair:   {:>5.0}%",
        stats.single_repair_fraction * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "perfect program within two steps:       {:>5.0}% of tasks",
        stats.perfect_within_two_steps * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "tasks needing a single pattern selection:{:>4.0}%",
        stats.single_selection_fraction * 100.0
    )
    .unwrap();
    out
}

/// Every report in one string (used by the `exp_all` binary and the
/// integration tests).
pub fn report_all(seed: u64) -> String {
    let results = simulation_results(seed);
    [
        report_tab5(seed),
        report_tab6(seed),
        report_fig11(seed),
        report_fig12(seed),
        report_fig13(seed),
        report_fig14(seed),
        report_tab7(&results),
        report_fig15(&results),
        report_fig16(&results),
        report_appendix_e(&results),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_ground_truth_normalizes_all_formats() {
        let inputs: Vec<String> = vec![
            "(734) 645-8397".into(),
            "734.236.3466".into(),
            "7342363466".into(),
            "734 236 3466".into(),
            "N/A".into(),
        ];
        let out = phone_ground_truth(&inputs);
        assert_eq!(out[0], "734-645-8397");
        assert_eq!(out[1], "734-236-3466");
        assert_eq!(out[2], "734-236-3466");
        assert_eq!(out[3], "734-236-3466");
        assert_eq!(out[4], "N/A");
    }

    #[test]
    fn study_reports_contain_all_cases() {
        let fig11 = report_fig11(DEFAULT_SEED);
        for case in ["10(2)", "100(4)", "300(6)"] {
            assert!(fig11.contains(case), "missing {case}: {fig11}");
        }
        assert!(fig11.contains("Figure 11a"));
        assert!(fig11.contains("Figure 11b"));
        assert!(fig11.contains("Figure 11c"));
    }

    #[test]
    fn fig12_reports_growth_factors() {
        let fig12 = report_fig12(DEFAULT_SEED);
        assert!(fig12.contains("verification growth"));
        assert!(fig12.contains("CLX"));
    }

    #[test]
    fn table_reports_have_expected_shape() {
        assert!(report_tab5(DEFAULT_SEED).lines().count() >= 5);
        let tab6 = report_tab6(DEFAULT_SEED);
        assert!(tab6.contains("SyGus"));
        assert!(tab6.contains("Overall"));
        let fig13 = report_fig13(DEFAULT_SEED);
        assert_eq!(fig13.lines().count(), 5);
        let fig14 = report_fig14(DEFAULT_SEED);
        assert!(fig14.contains("task 3"));
    }
}
