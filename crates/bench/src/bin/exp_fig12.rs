//! Regenerates the paper's Fig12 (see clx-bench's crate docs).
fn main() {
    print!("{}", clx_bench::report_fig12(clx_bench::DEFAULT_SEED));
}
