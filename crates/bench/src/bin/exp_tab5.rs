//! Regenerates the paper's Tab5 (see clx-bench's crate docs).
fn main() {
    print!("{}", clx_bench::report_tab5(clx_bench::DEFAULT_SEED));
}
