//! Regenerates the paper's Fig16 (see clx-bench's crate docs).
fn main() {
    let results = clx_bench::simulation_results(clx_bench::DEFAULT_SEED);
    print!("{}", clx_bench::report_fig16(&results));
}
