//! Regenerates the paper's Fig14 (see clx-bench's crate docs).
fn main() {
    print!("{}", clx_bench::report_fig14(clx_bench::DEFAULT_SEED));
}
