//! Regenerates the paper's Fig11 (see clx-bench's crate docs).
fn main() {
    print!("{}", clx_bench::report_fig11(clx_bench::DEFAULT_SEED));
}
