//! Regenerates the paper's Fig13 (see clx-bench's crate docs).
fn main() {
    print!("{}", clx_bench::report_fig13(clx_bench::DEFAULT_SEED));
}
