//! Regenerates the paper's Tab7 (see clx-bench's crate docs).
fn main() {
    let results = clx_bench::simulation_results(clx_bench::DEFAULT_SEED);
    print!("{}", clx_bench::report_tab7(&results));
}
