//! Regenerates every table and figure of the paper's evaluation section.
fn main() {
    print!("{}", clx_bench::report_all(clx_bench::DEFAULT_SEED));
}
