//! Regenerates the paper's Tab6 (see clx-bench's crate docs).
fn main() {
    print!("{}", clx_bench::report_tab6(clx_bench::DEFAULT_SEED));
}
