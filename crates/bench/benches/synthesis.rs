//! Latency of UniFi program synthesis (validate + align + rank + dedup) over
//! the pattern hierarchy, as a function of data heterogeneity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clx_cluster::PatternProfiler;
use clx_datagen::study_case;
use clx_pattern::tokenize;
use clx_synth::{synthesize, SynthesisOptions};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    let target = tokenize("734-422-8073");
    for &(rows, patterns) in &[(100usize, 4usize), (300, 6), (2_000, 6)] {
        let case = study_case(rows, patterns, 11);
        let hierarchy = PatternProfiler::new().profile(&case.data);
        group.bench_with_input(
            BenchmarkId::new("phone", format!("{rows}rows_{patterns}patterns")),
            &hierarchy,
            |b, hierarchy| {
                b.iter(|| {
                    let synthesis = synthesize(
                        black_box(hierarchy),
                        black_box(&target),
                        &SynthesisOptions::default(),
                    );
                    black_box(synthesis.source_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
