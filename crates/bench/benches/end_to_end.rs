//! End-to-end CLX session latency: cluster, label, synthesize, apply to the
//! whole column — the system-side cost of one complete §7.2 task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clx_core::ClxSession;
use clx_datagen::study_case;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for &(rows, patterns) in &[(10usize, 2usize), (100, 4), (300, 6), (1_000, 6)] {
        let case = study_case(rows, patterns, 3);
        group.bench_with_input(
            BenchmarkId::new("cluster_label_transform", format!("{rows}({patterns})")),
            &case,
            |b, case| {
                b.iter(|| {
                    let session = ClxSession::new(black_box(case.data.clone()))
                        .label(case.target_pattern())
                        .expect("label");
                    let report = session.apply().expect("apply");
                    black_box(report.transformed_count())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
