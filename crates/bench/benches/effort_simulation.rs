//! Cost of the §7.4 user-effort simulation itself: one benchmark task run
//! through all three simulated users. Useful when extending the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clx_baselines::run_task;
use clx_datagen::benchmark_suite;

fn bench_effort_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("effort_simulation");
    group.sample_size(10);
    let suite = benchmark_suite(0);
    for name in ["ff-phone", "bf-medical-ex3", "sygus-date-2"] {
        let task = suite
            .iter()
            .find(|t| t.name == name)
            .expect("task present in the suite");
        group.bench_with_input(BenchmarkId::new("three_users", name), task, |b, task| {
            b.iter(|| {
                let result = run_task(black_box(task));
                black_box(result.clx_steps() + result.flashfill_steps())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_effort_simulation);
criterion_main!(benches);
