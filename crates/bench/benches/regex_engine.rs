//! Throughput of the clx-regex engine executing explained Replace programs —
//! the substrate cost of running the user-facing operations over a column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use clx_datagen::large_case;
use clx_regex::Regex;

fn bench_regex(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_engine");
    let re = Regex::new(r"^\(({digit}{3})\) ({digit}{3})-({digit}{4})$").unwrap();

    group.bench_function("compile_figure4_regex", |b| {
        b.iter(|| {
            black_box(
                Regex::new(black_box(r"^\(({digit}{3})\) ({digit}{3})-({digit}{4})$")).unwrap(),
            )
        })
    });

    for &rows in &[1_000usize, 10_000] {
        let column = large_case(rows, 13).data;
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(
            BenchmarkId::new("replace_all_column", rows),
            &column,
            |b, col| {
                b.iter(|| {
                    let mut changed = 0usize;
                    for value in col {
                        let out = re.replace_all(black_box(value), "$1-$2-$3");
                        if out != *value {
                            changed += 1;
                        }
                    }
                    black_box(changed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_regex);
criterion_main!(benches);
