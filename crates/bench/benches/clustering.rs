//! Latency of the pattern-profiling (clustering) phase — the paper requires
//! "real-time clustering" for interactivity (§4), so the profiler must stay
//! well under a second even at the motivating example's 10,000 rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use clx_cluster::PatternProfiler;
use clx_datagen::large_case;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for &rows in &[100usize, 1_000, 10_000] {
        let case = large_case(rows, 7);
        group.bench_with_input(
            BenchmarkId::new("phone_column", rows),
            &case.data,
            |b, data| {
                b.iter(|| {
                    let hierarchy = PatternProfiler::new().profile(black_box(data));
                    black_box(hierarchy.leaves().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
