//! Telemetry overhead: what does observing the stream cost?
//!
//! The same 100k-row / 1k-distinct duplicate-heavy workload is streamed in
//! 8,192-row chunks through `ColumnStream` three ways:
//!
//! * **none** — no sink attached: the disabled path the library guarantees
//!   is one `Option` branch per chunk (no clock reads, no atomic traffic);
//! * **noop** — a `NoopSink` attached: the chunk path now reads the clock
//!   twice per chunk and calls the sink's empty methods; this bounds the
//!   cost of the instrumentation *plumbing*;
//! * **in_memory** — an `InMemorySink` attached: the real thing, with
//!   atomic counter/gauge/histogram updates behind a read-locked map.
//!
//! All sink work happens at chunk boundaries (per-chunk deltas of plain
//! `u64` tallies), never per row, so overhead amortizes over the chunk
//! size. Target from the issue: `<3%` with `InMemorySink`, unmeasurable
//! with no sink.
//!
//! Numbers from this container (1 CPU, `cargo bench --bench
//! telemetry_overhead`, release profile, three runs):
//!
//! ```text
//! telemetry_overhead/none/100000       9.87 / 8.13 / 8.02 ms/iter
//! telemetry_overhead/noop/100000      10.47 / 8.40 / 8.56 ms/iter
//! telemetry_overhead/in_memory/100000  9.86 / 8.68 / 7.90 ms/iter
//! ```
//!
//! Run-to-run noise on this shared container is ~±10%, larger than any
//! per-variant gap: `in_memory` lands on *both* sides of `none` across
//! runs, and `noop` tracks the pair within the same band. Honest verdict:
//! with 13 chunk boundaries of sink traffic against 100k rows of execute
//! work, telemetry overhead is not measurable here — comfortably inside
//! the issue's 3% target for `InMemorySink`, and the no-sink path is
//! bit-identical plumbing-wise (one `Option` branch, no clock reads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use clx_core::ClxSession;
use clx_datagen::duplicate_heavy_case;
use clx_engine::{ColumnStream, CompiledProgram};
use clx_telemetry::{InMemorySink, MetricSink, NoopSink};

const ROWS: usize = 100_000;
const DISTINCT: usize = 1_000;
const CHUNK: usize = 8_192;

fn workload() -> (Arc<CompiledProgram>, Vec<String>) {
    let case = duplicate_heavy_case(ROWS, DISTINCT, 42);
    let sample: Vec<String> = case.data.iter().take(2_000).cloned().collect();
    let program = Arc::new(
        ClxSession::new(sample)
            .label_by_example(&case.target_example)
            .expect("label")
            .compile()
            .expect("compile"),
    );
    (program, case.data)
}

/// One whole stream over the data; returns rows processed.
fn run_stream(
    program: &Arc<CompiledProgram>,
    data: &[String],
    sink: Option<Arc<dyn MetricSink>>,
) -> usize {
    let mut stream = ColumnStream::new(Arc::clone(program));
    if let Some(sink) = sink {
        stream = stream.with_telemetry(sink);
    }
    for chunk in data.chunks(CHUNK) {
        black_box(stream.push_rows(chunk));
    }
    stream.finish().rows()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let (program, data) = workload();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_with_input(BenchmarkId::new("none", ROWS), &data, |b, data| {
        b.iter(|| run_stream(&program, data, None))
    });
    group.bench_with_input(BenchmarkId::new("noop", ROWS), &data, |b, data| {
        b.iter(|| run_stream(&program, data, Some(Arc::new(NoopSink))))
    });
    group.bench_with_input(BenchmarkId::new("in_memory", ROWS), &data, |b, data| {
        b.iter(|| {
            let sink = InMemorySink::shared();
            run_stream(&program, data, Some(sink as Arc<dyn MetricSink>))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
