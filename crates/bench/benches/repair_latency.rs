//! Repair latency: what one repair costs to re-verify, patched vs full.
//!
//! The interactive loop's worst moment is the click after a repair: the
//! user changed *one* cluster's plan and wants the verification view
//! back. Without incremental re-verification the session re-runs
//! `apply()` — one interpreted branch-by-branch decision per distinct
//! value, every distinct, every click. `reverify(&report)` instead diffs
//! old vs new program (`ProgramDelta`), and patches the previous report
//! in place, re-deciding **only the distincts the changed branch can
//! affect**.
//!
//! The workload is the issue's shape: a 1M-row column with 10,000
//! distinct values spread over 16 source formats (date-like
//! `dd SEP dd SEP yyyy` with 16 different separators, 625 distincts per
//! format), labelled to the dashed target. The "repair" re-plans the
//! slash-format cluster only, so exactly 625 of 10,000 distincts are
//! affected.
//!
//! Session-level (the user-facing loop, and the ≥10x claim):
//!
//! * **session_full_apply** — `ClxSession::apply()` under the repaired
//!   program: interpreted evaluation of all 10,000 distincts;
//! * **session_reverify** — `ClxSession::reverify(&baseline)`: compile
//!   both programs, diff, clone the baseline report, patch 625 outcomes.
//!
//! Engine-level (secondary: how the *self-contained* patch — no column,
//! so it must re-tokenize stored values to screen them — compares to the
//! engine's compiled columnar re-run, which is already O(distinct) over
//! cached tokens and dense dispatch plans — the `cold_dispatch` story):
//!
//! * **engine_full_recompute** — `execute_column` under the new program;
//! * **engine_patch** — `ProgramDelta::between` + clone + `patch`;
//! * **engine_delta_only** — just the program diff (greedy branch
//!   matching + the `clx-analyze` reachability intersection).
//!
//! Numbers from this container (1 CPU, `cargo bench --bench
//! repair_latency`, release profile):
//!
//! ```text
//! repair_latency/session_full_apply/1000000     54.0 ms/iter  (10,000 distincts, interpreted)
//! repair_latency/session_reverify/1000000        3.5 ms/iter  (625 distincts re-decided)
//! repair_latency/engine_full_recompute/1000000   1.4 ms/iter  (10,000 distincts, compiled+cached)
//! repair_latency/engine_patch/1000000            6.5 ms/iter  (self-contained: re-tokenizes)
//! repair_latency/engine_delta_only/1000000       2.3 ms/iter  (mostly reachability analysis)
//! ```
//!
//! Honest reading: against the *interpreted* full apply the user would
//! otherwise re-run, `reverify` came in 16.7x faster on the measured run
//! (best of 3 each), and the gap is structural — `reverify` rides
//! `patch_columnar`, whose cost is an integer-memoized leaf screen per
//! stored outcome plus an actual re-decide per *affected* distinct, so
//! it scales with the repair's blast radius. Against the engine's
//! compiled columnar re-run the patch is *not* faster at this shape (16
//! leaf signatures, warm dense plans: the full re-run is leaf-id
//! indexing + eval, and even the diff's reachability analysis costs more
//! than re-running 10k cached distincts) — the win there is the stream
//! path (`swap_program`), which invalidates by the same delta without
//! re-running anything. Row count is irrelevant to every variant (the
//! row map is shared, never rewritten): at 1M rows a naive per-row
//! re-run would be another ~100x on top of full_apply.
//!
//! The sanity block (outside timing) asserts the claims the bench exists
//! to make: the re-verified report equals a fresh full apply row-for-row,
//! and `engine.delta.distincts_redecided` is exactly the affected
//! format's distinct count — no silent over-re-deciding.
//!
//! `CLX_BENCH_SMOKE=1` shrinks the workload (~20k rows, ~1k distincts) so
//! CI can execute the binary end to end; smoke numbers are not comparable
//! to the table, and the ≥10x ratio assertion is skipped (too noisy at
//! that size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use clx_column::Column;
use clx_core::{ClxOptions, ClxSession};
use clx_engine::{CompiledProgram, ProgramDelta};
use clx_pattern::{parse_pattern, Pattern};
use clx_telemetry::{InMemorySink, MetricSink};
use clx_unifi::{Branch, Expr, Program, StringExpr};

/// One separator per source format; the repaired branch is `SEPARATORS[0]`.
const SEPARATORS: [char; 16] = [
    '/', '.', ':', '_', ',', ';', '|', '~', '!', '@', '#', '%', '&', '*', '+', '=',
];

fn smoke() -> bool {
    std::env::var_os("CLX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn source_pattern(sep: char) -> Pattern {
    parse_pattern(&format!("<D>2'{sep}'<D>2'{sep}'<D>4")).expect("source pattern")
}

/// `dd SEP dd SEP yyyy` → `dd-dd-yyyy` for every format; the engine-level
/// "repair" swaps branch 0's field order to `yyyy-dd-dd`.
fn programs() -> (Program, Program) {
    let reorder = |fields: [u8; 3]| {
        Expr::concat(vec![
            StringExpr::extract(fields[0] as usize),
            StringExpr::const_str("-"),
            StringExpr::extract(fields[1] as usize),
            StringExpr::const_str("-"),
            StringExpr::extract(fields[2] as usize),
        ])
    };
    let old = Program::new(
        SEPARATORS
            .iter()
            .map(|&sep| Branch::new(source_pattern(sep), reorder([1, 3, 5])))
            .collect(),
    );
    let mut new = old.clone();
    new.branches[0].expr = reorder([5, 1, 3]);
    (old, new)
}

/// `per_format` distinct dates in each of the 16 formats, tiled out to
/// `rows` total rows (so the column is duplicate-heavy, like real data).
fn rows(rows: usize, per_format: usize) -> Vec<String> {
    let mut distinct = Vec::with_capacity(per_format * SEPARATORS.len());
    for i in 0..per_format {
        let (m, d, y) = (1 + i % 12, 1 + i % 28, 1900 + i % 120);
        for &sep in &SEPARATORS {
            distinct.push(format!("{m:02}{sep}{d:02}{sep}{y:04}"));
        }
    }
    (0..rows)
        .map(|j| distinct[j % distinct.len()].clone())
        .collect()
}

/// Best-of-3 wall time, outside criterion: the ratio assertion needs raw
/// durations, not criterion's report.
fn best_of_3(mut f: impl FnMut()) -> Duration {
    (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("three runs")
}

fn bench_repair_latency(c: &mut Criterion) {
    let (total_rows, per_format) = if smoke() {
        (20_000, 63)
    } else {
        (1_000_000, 625)
    };
    let data = rows(total_rows, per_format);

    // ---- Session level: the user-facing loop ------------------------------
    let sink = InMemorySink::shared();
    let mut session = ClxSession::with_telemetry(
        data.clone(),
        ClxOptions::default(),
        Arc::clone(&sink) as Arc<dyn MetricSink>,
    )
    .label(parse_pattern("<D>2'-'<D>2'-'<D>4").expect("target"))
    .expect("label");
    let baseline = session.apply().expect("apply");
    let slash = source_pattern('/');
    assert!(
        session
            .alternatives(&slash)
            .expect("slash is a source")
            .len()
            >= 2,
        "need a real alternative to repair to"
    );
    assert!(session.repair(&slash, 1), "repair accepted");

    // Sanity outside timing: the patch is exact and minimal.
    {
        let reverified = session.reverify(&baseline).expect("reverify");
        let fresh = session.apply().expect("fresh apply");
        assert!(
            reverified == fresh,
            "re-verified report must equal a fresh full apply row-for-row"
        );
        let redecided = sink
            .snapshot()
            .counter("engine.delta.distincts_redecided")
            .unwrap_or(0);
        assert_eq!(
            redecided, per_format as u64,
            "exactly the repaired format's distincts are re-decided"
        );
        println!(
            "repair sanity: {total_rows} rows, {} distincts, {redecided} re-decided",
            baseline.distinct_outcomes().len(),
        );

        // The structural claim, measured: reverify beats the full apply the
        // user would otherwise re-run by >=10x (best of 3 each; skipped in
        // smoke mode where the workload is too small to time reliably).
        if !smoke() {
            let apply_time = best_of_3(|| {
                black_box(session.apply().expect("apply"));
            });
            let reverify_time = best_of_3(|| {
                black_box(session.reverify(&baseline).expect("reverify"));
            });
            println!(
                "repair ratio: full apply {apply_time:?} vs reverify {reverify_time:?} ({:.1}x)",
                apply_time.as_secs_f64() / reverify_time.as_secs_f64()
            );
            assert!(
                apply_time >= 10 * reverify_time,
                "reverify must be >=10x faster than a full apply \
                 (apply {apply_time:?}, reverify {reverify_time:?})"
            );
        }
    }

    // ---- Engine level: patch vs the compiled columnar re-run --------------
    let (old_program, new_program) = programs();
    let target = parse_pattern("<D>2'-'<D>2'-'<D>4").expect("target");
    let old = Arc::new(CompiledProgram::compile(&old_program, &target).expect("compile old"));
    let new = Arc::new(CompiledProgram::compile(&new_program, &target).expect("compile new"));
    let column = Column::from_rows(data);
    let engine_baseline = old.execute_column(&column);
    {
        let delta = ProgramDelta::between(&old, &new);
        let mut patched = engine_baseline.clone();
        let stats = patched.patch(&delta, &new);
        let full = new.execute_column(&column);
        assert!(
            patched.iter_rows().eq(full.iter_rows()),
            "patched report must equal the full recompute row-for-row"
        );
        assert_eq!(stats.distincts_redecided, per_format);
    }

    let mut group = c.benchmark_group("repair_latency");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_rows as u64));

    group.bench_with_input(
        BenchmarkId::new("session_full_apply", total_rows),
        &(),
        |b, ()| b.iter(|| black_box(session.apply().expect("apply"))),
    );
    group.bench_with_input(
        BenchmarkId::new("session_reverify", total_rows),
        &(),
        |b, ()| b.iter(|| black_box(session.reverify(&baseline).expect("reverify"))),
    );
    group.bench_with_input(
        BenchmarkId::new("engine_full_recompute", total_rows),
        &column,
        |b, col| b.iter(|| black_box(new.execute_column(col))),
    );
    group.bench_with_input(
        BenchmarkId::new("engine_patch", total_rows),
        &column,
        |b, _| {
            b.iter(|| {
                let delta = ProgramDelta::between(&old, &new);
                let mut report = engine_baseline.clone();
                black_box(report.patch(&delta, &new))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("engine_delta_only", total_rows),
        &column,
        |b, _| b.iter(|| black_box(ProgramDelta::between(&old, &new))),
    );
    group.finish();
}

criterion_group!(benches, bench_repair_latency);
criterion_main!(benches);
