//! Bounded streaming: flat memory on adversarial input, near-zero overhead
//! on well-behaved input.
//!
//! Three workloads, streamed through `ColumnStream`:
//!
//! * **zipf** — 100k rows over 1k distinct values with a Zipf-ish (harmonic)
//!   frequency skew in 8,192-row chunks, the well-behaved shape real columns
//!   have. A `max_distinct: 10_000` budget never binds here, so the bounded
//!   stream must run within ~5% of the unbounded one (the budget costs one
//!   over-budget check per chunk plus memory accounting per intern).
//! * **adversarial** — 1M rows, every one a brand-new distinct value, in
//!   8,192-row chunks: the shape that grows an unbounded interner without
//!   bound. Under `max_distinct: 10_000` the stream completes with flat
//!   memory (peak = budget + one chunk, reported below), trading throughput
//!   for the per-boundary evict + re-intern work.
//! * **churn_small_chunks** — the first 100k of those all-distinct rows in
//!   64-row chunks under the same 10k budget: ~1.5k chunk boundaries, each
//!   evicting a ~64-victim batch out of a ~10k-slot decision table. This is
//!   the shape that isolates the decision-cache prune: the old prune walked
//!   every slot at every boundary (O(live)), the incremental one reads the
//!   interner's per-batch eviction log (`evicted_since`) and touches only
//!   the ~64 actual victims.
//!
//! Numbers from this container (1 CPU, `cargo bench --bench bounded_stream`,
//! release profile; ranges span same-day runs):
//!
//! ```text
//! bounded_stream/zipf_unbounded/100000        ~5.8-8.9 ms/iter   (~11-17M rows/s)
//! bounded_stream/zipf_bounded_10000/100000    ~6.0-8.1 ms/iter   (~12-17M rows/s)
//! bounded_stream/zipf_bounded_500/100000     ~14.3-19.8 ms/iter (~5.1-7.0M rows/s)  (evicts every boundary)
//! bounded_stream/churn_small_chunks/100000      ~499 ms/iter      (~200k rows/s)    (~653 ms with the full-walk prune)
//! bounded_stream/adversarial_bounded/1000000  ~3.9-4.0 s/iter    (~250k rows/s)
//! adversarial bounded peak memory ~15.5 MB (evictions 989424, live 10576)
//! unbounded stream at just 100k of those rows: ~78 MB and growing
//! linearly (~780 MB across the full 1M-row stream)
//! ```
//!
//! So the budget is free (within the ~5% target) while it does not bind,
//! costs ~2.4x when it forces an eviction batch at every boundary of a
//! well-behaved stream (budget 500 < 1k distinct), and turns an O(distinct)
//! blow-up into flat O(budget + chunk) memory on adversarial input.
//!
//! The churn row is the honest A/B for the incremental prune: ~653 ms was
//! measured in the same build with the eviction-log path disabled (forcing
//! the pre-existing full-table walk), ~499 ms with it on — ~1.3x from prune
//! work alone. `zipf_bounded_500` does *not* move outside run-to-run noise
//! from this change: with 8,192-row chunks its per-boundary cost is
//! dominated by evict + re-intern + re-decide, not the prune walk. Absolute
//! numbers drift hard on this box — a same-day rebuild of the pre-change
//! tree measured `zipf_bounded_500` at ~32 ms and `adversarial_bounded` at
//! ~5.6 s (single runs, consistent with the derived-split win on cold
//! decisions measured in `cold_dispatch`, but too noisy to quote as a
//! precise speedup) — so compare rows within one run, not against
//! historical tables.
//!
//! The acceptance criterion — bounded memory on the adversarial stream,
//! asserted via `memory_used()` — is locked by
//! `tests/stream_properties.rs`; this bench records the throughput price.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use clx_column::StreamBudget;
use clx_core::ClxSession;
use clx_datagen::duplicate_heavy_case;
use clx_engine::{ColumnStream, CompiledProgram};

const ROWS: usize = 100_000;
const DISTINCT: usize = 1_000;
const CHUNK: usize = 8_192;
const ADVERSARIAL_ROWS: usize = 1_000_000;
const BUDGET: usize = 10_000;
/// Chunk size for the eviction-churn variant: small enough that the
/// stream crosses ~1.5k chunk boundaries, every one of which evicts a
/// small batch from a ~10k-slot table.
const CHURN_CHUNK: usize = 64;

fn compile() -> Arc<CompiledProgram> {
    let case = duplicate_heavy_case(2_000, 200, 11);
    Arc::new(
        ClxSession::new(case.data)
            .label_by_example(&case.target_example)
            .expect("label")
            .compile()
            .expect("compile"),
    )
}

/// A Zipf-ish column: rank r appears with frequency ~1/(r+1), assigned by
/// a deterministic low-discrepancy sequence (no RNG, stable across runs).
fn zipf_rows(rows: usize, distinct: usize) -> Vec<String> {
    let mut cumulative: Vec<f64> = Vec::with_capacity(distinct);
    let mut total = 0.0;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    (0..rows)
        .map(|i| {
            let u = (i as f64 * GOLDEN).fract() * total;
            let rank = cumulative.partition_point(|&c| c < u).min(distinct - 1);
            format!("{:03}.{:03}.{:04}", rank % 1000, (rank / 7) % 1000, rank)
        })
        .collect()
}

/// Every row a brand-new distinct value; mostly transformable, every 7th
/// junk, so decisions and flags both stream through.
fn adversarial_rows(rows: usize) -> Vec<String> {
    (0..rows)
        .map(|n| {
            if n % 7 == 3 {
                format!("junk!{n:08}")
            } else {
                format!("{:03}.{:03}.{:04}", n % 1000, (n / 1000) % 1000, n % 10_000)
            }
        })
        .collect()
}

/// One whole stream over the data; returns rows processed.
fn run_stream(program: &Arc<CompiledProgram>, data: &[String], budget: StreamBudget) -> usize {
    run_stream_chunked(program, data, budget, CHUNK)
}

fn run_stream_chunked(
    program: &Arc<CompiledProgram>,
    data: &[String],
    budget: StreamBudget,
    chunk_rows: usize,
) -> usize {
    let mut stream = ColumnStream::with_budget(Arc::clone(program), budget);
    for chunk in data.chunks(chunk_rows) {
        black_box(stream.push_rows(chunk));
    }
    stream.finish().rows()
}

fn bench_bounded_stream(c: &mut Criterion) {
    let program = compile();
    let zipf = zipf_rows(ROWS, DISTINCT);
    let adversarial = adversarial_rows(ADVERSARIAL_ROWS);
    let churn: Vec<String> = adversarial[..ROWS].to_vec();

    // Report the adversarial stream's memory profile once, outside timing.
    {
        let mut stream =
            ColumnStream::with_budget(Arc::clone(&program), StreamBudget::max_distinct(BUDGET));
        for chunk in adversarial.chunks(CHUNK) {
            stream.push_rows(chunk);
        }
        let evictions = stream.evictions();
        let live = stream.interner().live_distinct_count();
        let summary = stream.finish();
        println!(
            "adversarial bounded stream: peak memory {} KB, evictions {}, live {} (rows {})",
            summary.peak_memory_bytes / 1024,
            evictions,
            live,
            summary.rows()
        );

        // The O(distinct) growth the budget removes, measured on a 100k
        // prefix of the same stream (1M unbounded would retain ~10x this).
        let mut unbounded = ColumnStream::new(Arc::clone(&program));
        for chunk in adversarial[..ROWS].chunks(CHUNK) {
            unbounded.push_rows(chunk);
        }
        println!(
            "unbounded stream at {} adversarial rows: {} KB retained (grows linearly)",
            ROWS,
            unbounded.memory_used() / 1024
        );
    }

    let mut group = c.benchmark_group("bounded_stream");
    group.sample_size(10);

    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("zipf_unbounded", ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::unbounded())),
    );
    group.bench_with_input(
        BenchmarkId::new("zipf_bounded_10000", ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::max_distinct(BUDGET))),
    );
    // A budget tighter than the distinct count: evicts at every boundary,
    // the worst case for a well-behaved stream.
    group.bench_with_input(
        BenchmarkId::new("zipf_bounded_500", ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::max_distinct(500))),
    );
    // Eviction *churn*: all-distinct rows in tiny chunks over a large
    // budget, so every one of ~1.5k boundaries evicts a ~chunk-sized batch
    // from a ~10k-slot table. Per-boundary cache maintenance — the
    // decision cache's prune in particular — is the shape the incremental
    // (eviction-log) prune targets: O(evicted)=64 per boundary instead of
    // a full O(slots)=10k walk.
    group.bench_with_input(
        BenchmarkId::new("churn_small_chunks", ROWS),
        &churn,
        |b, data| {
            b.iter(|| {
                run_stream_chunked(
                    &program,
                    data,
                    StreamBudget::max_distinct(BUDGET),
                    CHURN_CHUNK,
                )
            })
        },
    );

    group.throughput(Throughput::Elements(ADVERSARIAL_ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("adversarial_bounded", ADVERSARIAL_ROWS),
        &adversarial,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::max_distinct(BUDGET))),
    );
    group.finish();
}

criterion_group!(benches, bench_bounded_stream);
criterion_main!(benches);
