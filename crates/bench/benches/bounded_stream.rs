//! Bounded streaming: flat memory on adversarial input, near-zero overhead
//! on well-behaved input.
//!
//! Two workloads, both streamed in 8,192-row chunks through `ColumnStream`:
//!
//! * **zipf** — 100k rows over 1k distinct values with a Zipf-ish (harmonic)
//!   frequency skew, the well-behaved shape real columns have. A
//!   `max_distinct: 10_000` budget never binds here, so the bounded stream
//!   must run within ~5% of the unbounded one (the budget costs one
//!   over-budget check per chunk plus memory accounting per intern).
//! * **adversarial** — 1M rows, every one a brand-new distinct value: the
//!   shape that grows an unbounded interner without bound. Under
//!   `max_distinct: 10_000` the stream completes with flat memory (peak =
//!   budget + one chunk, reported below), trading throughput for the
//!   per-boundary evict + re-intern work.
//!
//! Numbers from this container (1 CPU, `cargo bench --bench bounded_stream`,
//! release profile):
//!
//! ```text
//! bounded_stream/zipf_unbounded/100000        ~6.0 ms/iter  (~16.7M rows/s)
//! bounded_stream/zipf_bounded_10000/100000    ~6.1 ms/iter  (~16.4M rows/s)  +1.7%
//! bounded_stream/zipf_bounded_500/100000     ~14.4 ms/iter   (~6.9M rows/s)  (evicts every boundary)
//! bounded_stream/adversarial_bounded/1000000  ~1.9 s/iter    (~0.5M rows/s)
//! adversarial bounded peak memory ~15.5 MB (evictions 989424, live 10576)
//! unbounded stream at just 100k of those rows: ~78 MB and growing
//! linearly (~780 MB across the full 1M-row stream)
//! ```
//!
//! So the budget is free (within the ~5% target) while it does not bind,
//! costs ~2.4x when it forces an eviction batch at every boundary of a
//! well-behaved stream (budget 500 < 1k distinct), and turns an O(distinct)
//! blow-up into flat O(budget + chunk) memory on adversarial input.
//!
//! The acceptance criterion — bounded memory on the adversarial stream,
//! asserted via `memory_used()` — is locked by
//! `tests/stream_properties.rs`; this bench records the throughput price.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use clx_column::StreamBudget;
use clx_core::ClxSession;
use clx_datagen::duplicate_heavy_case;
use clx_engine::{ColumnStream, CompiledProgram};

const ROWS: usize = 100_000;
const DISTINCT: usize = 1_000;
const CHUNK: usize = 8_192;
const ADVERSARIAL_ROWS: usize = 1_000_000;
const BUDGET: usize = 10_000;

fn compile() -> Arc<CompiledProgram> {
    let case = duplicate_heavy_case(2_000, 200, 11);
    Arc::new(
        ClxSession::new(case.data)
            .label_by_example(&case.target_example)
            .expect("label")
            .compile()
            .expect("compile"),
    )
}

/// A Zipf-ish column: rank r appears with frequency ~1/(r+1), assigned by
/// a deterministic low-discrepancy sequence (no RNG, stable across runs).
fn zipf_rows(rows: usize, distinct: usize) -> Vec<String> {
    let mut cumulative: Vec<f64> = Vec::with_capacity(distinct);
    let mut total = 0.0;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    (0..rows)
        .map(|i| {
            let u = (i as f64 * GOLDEN).fract() * total;
            let rank = cumulative.partition_point(|&c| c < u).min(distinct - 1);
            format!("{:03}.{:03}.{:04}", rank % 1000, (rank / 7) % 1000, rank)
        })
        .collect()
}

/// Every row a brand-new distinct value; mostly transformable, every 7th
/// junk, so decisions and flags both stream through.
fn adversarial_rows(rows: usize) -> Vec<String> {
    (0..rows)
        .map(|n| {
            if n % 7 == 3 {
                format!("junk!{n:08}")
            } else {
                format!("{:03}.{:03}.{:04}", n % 1000, (n / 1000) % 1000, n % 10_000)
            }
        })
        .collect()
}

/// One whole stream over the data; returns rows processed.
fn run_stream(program: &Arc<CompiledProgram>, data: &[String], budget: StreamBudget) -> usize {
    let mut stream = ColumnStream::with_budget(Arc::clone(program), budget);
    for chunk in data.chunks(CHUNK) {
        black_box(stream.push_rows(chunk));
    }
    stream.finish().rows()
}

fn bench_bounded_stream(c: &mut Criterion) {
    let program = compile();
    let zipf = zipf_rows(ROWS, DISTINCT);
    let adversarial = adversarial_rows(ADVERSARIAL_ROWS);

    // Report the adversarial stream's memory profile once, outside timing.
    {
        let mut stream =
            ColumnStream::with_budget(Arc::clone(&program), StreamBudget::max_distinct(BUDGET));
        for chunk in adversarial.chunks(CHUNK) {
            stream.push_rows(chunk);
        }
        let evictions = stream.evictions();
        let live = stream.interner().live_distinct_count();
        let summary = stream.finish();
        println!(
            "adversarial bounded stream: peak memory {} KB, evictions {}, live {} (rows {})",
            summary.peak_memory_bytes / 1024,
            evictions,
            live,
            summary.rows()
        );

        // The O(distinct) growth the budget removes, measured on a 100k
        // prefix of the same stream (1M unbounded would retain ~10x this).
        let mut unbounded = ColumnStream::new(Arc::clone(&program));
        for chunk in adversarial[..ROWS].chunks(CHUNK) {
            unbounded.push_rows(chunk);
        }
        println!(
            "unbounded stream at {} adversarial rows: {} KB retained (grows linearly)",
            ROWS,
            unbounded.memory_used() / 1024
        );
    }

    let mut group = c.benchmark_group("bounded_stream");
    group.sample_size(10);

    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("zipf_unbounded", ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::unbounded())),
    );
    group.bench_with_input(
        BenchmarkId::new("zipf_bounded_10000", ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::max_distinct(BUDGET))),
    );
    // A budget tighter than the distinct count: evicts at every boundary,
    // the worst case for a well-behaved stream.
    group.bench_with_input(
        BenchmarkId::new("zipf_bounded_500", ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::max_distinct(500))),
    );

    group.throughput(Throughput::Elements(ADVERSARIAL_ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("adversarial_bounded", ADVERSARIAL_ROWS),
        &adversarial,
        |b, data| b.iter(|| run_stream(&program, data, StreamBudget::max_distinct(BUDGET))),
    );
    group.finish();
}

criterion_group!(benches, bench_bounded_stream);
criterion_main!(benches);
