//! Cold dispatch: what a *new* leaf signature costs to decide, fused
//! automaton vs the per-branch Pike-VM loop.
//!
//! Steady-state execution is leaf-id array indexing and never re-decides,
//! so this bench manufactures the worst case for the decision path itself:
//! a program with k = 4 transparent branches where rows match the *last*
//! branch, so the per-branch loop burns a failed target match plus three
//! failed branch matches before the winner — while the fused automaton
//! decides all five patterns in one pass over the leaf's tokens.
//!
//! Two workloads, streamed in 8,192-row chunks through `ColumnStream`:
//!
//! * **all_new_leaf** — 1M rows, every row a brand-new *leaf signature*
//!   (four token-run lengths varied base-40: 2.56M combinations), under a
//!   `max_distinct: 10_000` budget. Every row is a decision-cache miss, so
//!   throughput ≈ cold-decision rate. This is the adversarial shape from
//!   the issue: the existing `bounded_stream` adversarial workload is
//!   value-distinct but leaf-repetitive, so it never exercised this path.
//! * **zipf** — 100k rows over 1k distinct leaves with harmonic skew: the
//!   well-behaved shape where cold decisions happen only ~1k times and the
//!   warm leaf-id path (identical in both variants) dominates.
//!
//! Each workload runs three ways: `fused` (default compilation — the
//! winner's split boundaries are *derived from the accepting path*, so a
//! cold decision is one pass over the tokens), `fused_split`
//! (`CompiledProgram::without_derived_splits()`: fused classify, but the
//! winner re-runs `Pattern::split` — PR 7's shape), and `pike_vm`
//! (`CompiledProgram::without_fused()`, the pre-fused per-branch loop).
//!
//! Numbers from this container (1 CPU, `cargo bench --bench cold_dispatch`,
//! release profile; the shared box is noisy, so two back-to-back full runs
//! are reported as ranges — the *ordering* below held in both):
//!
//! ```text
//! cold_dispatch/all_new_leaf_pike_vm/1000000     19.7-20.4 s/iter  (~49-51k rows/s)
//! cold_dispatch/all_new_leaf_fused_split/1000000 14.9-16.1 s/iter  (~62-67k rows/s)
//! cold_dispatch/all_new_leaf_fused/1000000       12.5-15.8 s/iter  (~63-80k rows/s)
//! cold_dispatch/zipf_pike_vm/100000              18.7-23.0 ms/iter (~4.3-5.4M rows/s)
//! cold_dispatch/zipf_fused_split/100000          11.8-19.1 ms/iter (~5.2-8.4M rows/s)
//! cold_dispatch/zipf_fused/100000                10.7-14.1 ms/iter (~7.1-9.4M rows/s)
//! ```
//!
//! So fusing the decision buys ~1.3-1.6x end-to-end on the all-new-leaf
//! stream even though every row also pays tokenize + intern + evict +
//! rewrite on long (up to 163-char) values, and deriving the winner's
//! split from the accepting path instead of re-running `Pattern::split`
//! came in faster in every paired run — ~2-19% end-to-end on the
//! all-new-leaf stream depending on the run (the spread is container
//! noise; the single-pass variant was never slower). Modest as a
//! whole-pipeline number because split was one of many per-row costs, but
//! it is the structural point: the second matcher pass is now gone from
//! first sight. The zipf stream, where only the ~1k first sights are
//! cold, is dominated by the warm leaf-id path; the fused variants still
//! ordered derived < split in both runs.
//!
//! `CLX_BENCH_SMOKE=1` shrinks both workloads (~20k/10k rows) so CI can
//! execute the bench binary end to end on every PR without paying the
//! multi-minute full run; the printed numbers are then *not* comparable to
//! the table above.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use clx_column::StreamBudget;
use clx_engine::{ColumnStream, CompiledProgram};
use clx_pattern::parse_pattern;
use clx_unifi::{Branch, Expr, Program, StringExpr};

const ZIPF_ROWS: usize = 100_000;
const ZIPF_DISTINCT: usize = 1_000;
const CHUNK: usize = 8_192;
const COLD_ROWS: usize = 1_000_000;
const BUDGET: usize = 10_000;

/// `CLX_BENCH_SMOKE=1`: tiny workloads so CI can execute (not just
/// compile) this binary on every PR. Numbers from a smoke run are not
/// comparable to the doc table.
fn smoke() -> bool {
    std::env::var_os("CLX_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Four transparent branches; the generated rows all match the last one,
/// maximizing the per-branch loop's wasted attempts.
fn program() -> Program {
    let rewrite_first = |pattern: &str| {
        Branch::new(
            parse_pattern(pattern).expect("pattern"),
            Expr::concat(vec![
                StringExpr::const_str("["),
                StringExpr::extract(1),
                StringExpr::const_str("]"),
            ]),
        )
    };
    Program::new(vec![
        rewrite_first("<D>+'/'<D>+'/'<D>+"),
        rewrite_first("'('<D>+')'<D>+'-'<D>+"),
        rewrite_first("<U>+'_'<D>+"),
        // The winner: digits-lower-upper-digits, any run lengths.
        rewrite_first("<D>+'-'<L>+'-'<U>+'-'<D>+"),
    ])
}

/// The three decision-path variants under test.
enum Variant {
    /// Default compilation: fused classify + splits derived from the
    /// accepting path (single-pass first sight).
    FusedDerived,
    /// Fused classify, winner re-runs `Pattern::split` (PR 7's shape).
    FusedSplit,
    /// The pre-fused per-branch Pike-VM loop.
    PikeVm,
}

fn compile(variant: Variant) -> Arc<CompiledProgram> {
    let target = parse_pattern("'['<D>+']'").expect("target");
    let compiled = CompiledProgram::compile(&program(), &target).expect("compile");
    Arc::new(match variant {
        Variant::FusedDerived => {
            assert!(compiled.fused_active(), "program must fuse");
            compiled
        }
        Variant::FusedSplit => compiled.without_derived_splits(),
        Variant::PikeVm => compiled.without_fused(),
    })
}

/// The row for leaf index `n`: four runs whose lengths are `n`'s base-40
/// digits, so consecutive indices give distinct leaf signatures (2.56M
/// combinations — every row of a 1M-row stream is a fresh leaf).
fn leaf_row(n: usize) -> String {
    let len = |i: u32| n / 40usize.pow(i) % 40 + 1;
    format!(
        "{}-{}-{}-{}",
        "9".repeat(len(0)),
        "a".repeat(len(1)),
        "Z".repeat(len(2)),
        "8".repeat(len(3)),
    )
}

fn all_new_leaf_rows(rows: usize) -> Vec<String> {
    (0..rows).map(leaf_row).collect()
}

/// Zipf-ish leaf reuse: rank r appears with frequency ~1/(r+1), assigned by
/// a deterministic low-discrepancy sequence (no RNG, stable across runs).
fn zipf_rows(rows: usize, distinct: usize) -> Vec<String> {
    let mut cumulative: Vec<f64> = Vec::with_capacity(distinct);
    let mut total = 0.0;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    (0..rows)
        .map(|i| {
            let u = (i as f64 * GOLDEN).fract() * total;
            let rank = cumulative.partition_point(|&c| c < u).min(distinct - 1);
            leaf_row(rank)
        })
        .collect()
}

/// One whole stream over the data; returns rows processed.
fn run_stream(program: &Arc<CompiledProgram>, data: &[String]) -> usize {
    let mut stream =
        ColumnStream::with_budget(Arc::clone(program), StreamBudget::max_distinct(BUDGET));
    for chunk in data.chunks(CHUNK) {
        black_box(stream.push_rows(chunk));
    }
    stream.finish().rows()
}

fn bench_cold_dispatch(c: &mut Criterion) {
    let (cold_rows, zipf_total) = if smoke() {
        (20_000, 10_000)
    } else {
        (COLD_ROWS, ZIPF_ROWS)
    };
    let fused = compile(Variant::FusedDerived);
    let fused_split = compile(Variant::FusedSplit);
    let pike_vm = compile(Variant::PikeVm);
    let cold = all_new_leaf_rows(cold_rows);
    let zipf = zipf_rows(zipf_total, ZIPF_DISTINCT);

    // Sanity outside timing: the three variants agree row-for-row, every
    // cold row really is a fresh leaf, the cold path is the one measured —
    // and on the derived variant *every* cold decision got its split from
    // the accepting path, with `Pattern::split` structurally absent.
    {
        let sample = &cold[..CHUNK.min(cold.len())];
        let mut a = ColumnStream::with_budget(Arc::clone(&fused), StreamBudget::unbounded());
        let mut b = ColumnStream::with_budget(Arc::clone(&pike_vm), StreamBudget::unbounded());
        let mut s = ColumnStream::with_budget(Arc::clone(&fused_split), StreamBudget::unbounded());
        let (ra, rb, rs) = (
            a.push_rows(sample),
            b.push_rows(sample),
            s.push_rows(sample),
        );
        assert!(
            ra.iter_rows().eq(rb.iter_rows()),
            "fused and per-branch streams must agree row-for-row"
        );
        assert!(
            ra.iter_rows().eq(rs.iter_rows()),
            "derived-split and Pattern::split streams must agree row-for-row"
        );
        let stats = fused.fused_stats();
        assert!(
            stats.fused_decisions >= sample.len() as u64,
            "all-new-leaf rows must be cold decisions (got {stats:?})"
        );
        assert_eq!(
            stats.split_derived, stats.fused_decisions,
            "every cold decision must derive its split from the path"
        );
        assert_eq!(stats.split_fallbacks, 0, "no fallback on this program");
        let split_stats = fused_split.fused_stats();
        assert_eq!(split_stats.split_derived, 0);
        assert_eq!(split_stats.split_fallbacks, split_stats.fused_decisions);
        println!(
            "cold sample: {} rows, fused decided {} (splits derived {}), pike_vm decided {}",
            sample.len(),
            stats.fused_decisions,
            stats.split_derived,
            pike_vm.fused_stats().pike_vm_decisions
        );
    }

    let mut group = c.benchmark_group("cold_dispatch");
    group.sample_size(10);

    group.throughput(Throughput::Elements(cold_rows as u64));
    group.bench_with_input(
        BenchmarkId::new("all_new_leaf_pike_vm", cold_rows),
        &cold,
        |b, data| b.iter(|| run_stream(&pike_vm, data)),
    );
    group.bench_with_input(
        BenchmarkId::new("all_new_leaf_fused_split", cold_rows),
        &cold,
        |b, data| b.iter(|| run_stream(&fused_split, data)),
    );
    group.bench_with_input(
        BenchmarkId::new("all_new_leaf_fused", cold_rows),
        &cold,
        |b, data| b.iter(|| run_stream(&fused, data)),
    );

    group.throughput(Throughput::Elements(zipf_total as u64));
    group.bench_with_input(
        BenchmarkId::new("zipf_pike_vm", zipf_total),
        &zipf,
        |b, data| b.iter(|| run_stream(&pike_vm, data)),
    );
    group.bench_with_input(
        BenchmarkId::new("zipf_fused_split", zipf_total),
        &zipf,
        |b, data| b.iter(|| run_stream(&fused_split, data)),
    );
    group.bench_with_input(
        BenchmarkId::new("zipf_fused", zipf_total),
        &zipf,
        |b, data| b.iter(|| run_stream(&fused, data)),
    );
    group.finish();
}

criterion_group!(benches, bench_cold_dispatch);
criterion_main!(benches);
