//! Cold dispatch: what a *new* leaf signature costs to decide, fused
//! automaton vs the per-branch Pike-VM loop.
//!
//! Steady-state execution is leaf-id array indexing and never re-decides,
//! so this bench manufactures the worst case for the decision path itself:
//! a program with k = 4 transparent branches where rows match the *last*
//! branch, so the per-branch loop burns a failed target match plus three
//! failed branch matches before the winner — while the fused automaton
//! decides all five patterns in one pass over the leaf's tokens.
//!
//! Two workloads, streamed in 8,192-row chunks through `ColumnStream`:
//!
//! * **all_new_leaf** — 1M rows, every row a brand-new *leaf signature*
//!   (four token-run lengths varied base-40: 2.56M combinations), under a
//!   `max_distinct: 10_000` budget. Every row is a decision-cache miss, so
//!   throughput ≈ cold-decision rate. This is the adversarial shape from
//!   the issue: the existing `bounded_stream` adversarial workload is
//!   value-distinct but leaf-repetitive, so it never exercised this path.
//! * **zipf** — 100k rows over 1k distinct leaves with harmonic skew: the
//!   well-behaved shape where cold decisions happen only ~1k times and the
//!   warm leaf-id path (identical in both variants) dominates.
//!
//! Both run twice: `fused` (default compilation) and `pike_vm`
//! (`CompiledProgram::without_fused()`, the pre-fused per-branch loop).
//!
//! Numbers from this container (1 CPU, `cargo bench --bench cold_dispatch`,
//! release profile):
//!
//! ```text
//! cold_dispatch/all_new_leaf_pike_vm/1000000  ~27.8 s/iter  (~36k rows/s)
//! cold_dispatch/all_new_leaf_fused/1000000    ~18.9 s/iter  (~53k rows/s)  1.47x
//! cold_dispatch/zipf_pike_vm/100000          ~22.3 ms/iter  (~4.5M rows/s)
//! cold_dispatch/zipf_fused/100000            ~17.9 ms/iter  (~5.6M rows/s)  1.24x
//! ```
//!
//! So fusing the decision buys ~1.5x end-to-end on the all-new-leaf stream
//! even though every row also pays tokenize + intern + evict + rewrite on
//! long (up to 163-char) values, and the zipf stream — where only the ~1k
//! first sights are cold — still picks up ~1.2x from those decisions alone,
//! with the warm path untouched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use clx_column::StreamBudget;
use clx_engine::{ColumnStream, CompiledProgram};
use clx_pattern::parse_pattern;
use clx_unifi::{Branch, Expr, Program, StringExpr};

const ZIPF_ROWS: usize = 100_000;
const ZIPF_DISTINCT: usize = 1_000;
const CHUNK: usize = 8_192;
const COLD_ROWS: usize = 1_000_000;
const BUDGET: usize = 10_000;

/// Four transparent branches; the generated rows all match the last one,
/// maximizing the per-branch loop's wasted attempts.
fn program() -> Program {
    let rewrite_first = |pattern: &str| {
        Branch::new(
            parse_pattern(pattern).expect("pattern"),
            Expr::concat(vec![
                StringExpr::const_str("["),
                StringExpr::extract(1),
                StringExpr::const_str("]"),
            ]),
        )
    };
    Program::new(vec![
        rewrite_first("<D>+'/'<D>+'/'<D>+"),
        rewrite_first("'('<D>+')'<D>+'-'<D>+"),
        rewrite_first("<U>+'_'<D>+"),
        // The winner: digits-lower-upper-digits, any run lengths.
        rewrite_first("<D>+'-'<L>+'-'<U>+'-'<D>+"),
    ])
}

fn compile(fused: bool) -> Arc<CompiledProgram> {
    let target = parse_pattern("'['<D>+']'").expect("target");
    let compiled = CompiledProgram::compile(&program(), &target).expect("compile");
    Arc::new(if fused {
        assert!(compiled.fused_active(), "program must fuse");
        compiled
    } else {
        compiled.without_fused()
    })
}

/// The row for leaf index `n`: four runs whose lengths are `n`'s base-40
/// digits, so consecutive indices give distinct leaf signatures (2.56M
/// combinations — every row of a 1M-row stream is a fresh leaf).
fn leaf_row(n: usize) -> String {
    let len = |i: u32| n / 40usize.pow(i) % 40 + 1;
    format!(
        "{}-{}-{}-{}",
        "9".repeat(len(0)),
        "a".repeat(len(1)),
        "Z".repeat(len(2)),
        "8".repeat(len(3)),
    )
}

fn all_new_leaf_rows(rows: usize) -> Vec<String> {
    (0..rows).map(leaf_row).collect()
}

/// Zipf-ish leaf reuse: rank r appears with frequency ~1/(r+1), assigned by
/// a deterministic low-discrepancy sequence (no RNG, stable across runs).
fn zipf_rows(rows: usize, distinct: usize) -> Vec<String> {
    let mut cumulative: Vec<f64> = Vec::with_capacity(distinct);
    let mut total = 0.0;
    for rank in 0..distinct {
        total += 1.0 / (rank + 1) as f64;
        cumulative.push(total);
    }
    const GOLDEN: f64 = 0.618_033_988_749_894_9;
    (0..rows)
        .map(|i| {
            let u = (i as f64 * GOLDEN).fract() * total;
            let rank = cumulative.partition_point(|&c| c < u).min(distinct - 1);
            leaf_row(rank)
        })
        .collect()
}

/// One whole stream over the data; returns rows processed.
fn run_stream(program: &Arc<CompiledProgram>, data: &[String]) -> usize {
    let mut stream =
        ColumnStream::with_budget(Arc::clone(program), StreamBudget::max_distinct(BUDGET));
    for chunk in data.chunks(CHUNK) {
        black_box(stream.push_rows(chunk));
    }
    stream.finish().rows()
}

fn bench_cold_dispatch(c: &mut Criterion) {
    let fused = compile(true);
    let pike_vm = compile(false);
    let cold = all_new_leaf_rows(COLD_ROWS);
    let zipf = zipf_rows(ZIPF_ROWS, ZIPF_DISTINCT);

    // Sanity outside timing: the two variants agree row-for-row, every cold
    // row really is a fresh leaf, and the cold path is the one measured.
    {
        let sample = &cold[..CHUNK];
        let mut a = ColumnStream::with_budget(Arc::clone(&fused), StreamBudget::unbounded());
        let mut b = ColumnStream::with_budget(Arc::clone(&pike_vm), StreamBudget::unbounded());
        let (ra, rb) = (a.push_rows(sample), b.push_rows(sample));
        assert!(
            ra.iter_rows().eq(rb.iter_rows()),
            "fused and per-branch streams must agree row-for-row"
        );
        let stats = fused.fused_stats();
        assert!(
            stats.fused_decisions >= sample.len() as u64,
            "all-new-leaf rows must be cold decisions (got {stats:?})"
        );
        println!(
            "cold sample: {} rows, fused decided {}, pike_vm decided {}",
            sample.len(),
            stats.fused_decisions,
            pike_vm.fused_stats().pike_vm_decisions
        );
    }

    let mut group = c.benchmark_group("cold_dispatch");
    group.sample_size(10);

    group.throughput(Throughput::Elements(COLD_ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("all_new_leaf_pike_vm", COLD_ROWS),
        &cold,
        |b, data| b.iter(|| run_stream(&pike_vm, data)),
    );
    group.bench_with_input(
        BenchmarkId::new("all_new_leaf_fused", COLD_ROWS),
        &cold,
        |b, data| b.iter(|| run_stream(&fused, data)),
    );

    group.throughput(Throughput::Elements(ZIPF_ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("zipf_pike_vm", ZIPF_ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&pike_vm, data)),
    );
    group.bench_with_input(
        BenchmarkId::new("zipf_fused", ZIPF_ROWS),
        &zipf,
        |b, data| b.iter(|| run_stream(&fused, data)),
    );
    group.finish();
}

criterion_group!(benches, bench_cold_dispatch);
criterion_main!(benches);
