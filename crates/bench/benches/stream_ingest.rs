//! Streaming ingest throughput: the `&[String]` re-tokenizing path vs the
//! columnar `push_rows` path through the persistent interner, plus sharded
//! vs single-threaded `Column` construction.
//!
//! Workload: 100k rows / ≤1k distinct values (datagen `duplicate_heavy_case`),
//! streamed in 8,192-row chunks. Each iteration runs a whole stream
//! (fresh interner and caches), so the columnar numbers *include* the
//! interning cost — the win is purely "tokenize + decide once per distinct
//! value per stream" vs "re-tokenize every row of every chunk".
//!
//! Numbers from this container (1 CPU, `cargo bench --bench stream_ingest`,
//! release profile):
//!
//! ```text
//! stream_ingest/push_chunk_strings/100000   ~50.6 ms/iter   (~2.0M rows/s)
//! stream_ingest/push_column_chunk/100000    ~7.0 ms/iter    (~14.4M rows/s)   ~7.3x
//! from_rows/sequential/100000               ~7.9 ms/iter
//! from_rows/builder_2_shards/100000         ~10.6 ms/iter
//! from_rows/builder_4_shards/100000         ~10.3 ms/iter
//! ```
//!
//! `push_column_chunk` beats the `&[String]` path ~7x on this workload, as
//! required: the string path tokenizes all 100k rows of every stream while
//! the columnar path tokenizes ≤1k distinct values once and then only
//! hashes row text against the interner.
//!
//! The sharded builder numbers need a caveat this container cannot remove:
//! it has **one** CPU, so the parallel phases (per-block dedup, then
//! per-distinct tokenization) time-slice a single core and pay the merge +
//! row-translation overhead (~2.5 ms here, flat in the shard count) with
//! zero parallel speedup — sequential construction wins on this box and
//! the ≥2-shard acceptance target is not reachable without real cores. The
//! sharded work itself splits evenly (each distinct value is tokenized
//! exactly once, in whichever shard owns it), so on a multi-core host the
//! ≥2-shard build overtakes sequential as soon as the per-shard work
//! outweighs the constant merge cost; the 1-vs-N byte-identity is locked
//! by `tests/column_builder.rs` either way. Re-run this bench on a
//! multi-core machine to record the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use clx_column::{Column, ColumnBuilder};
use clx_core::ClxSession;
use clx_datagen::duplicate_heavy_case;
use clx_engine::{ColumnStream, CompiledProgram};

const ROWS: usize = 100_000;
const DISTINCT: usize = 1_000;
const CHUNK: usize = 8_192;

fn compile_for(case_data: &[String], target_example: &str) -> CompiledProgram {
    let sample: Vec<String> = case_data.iter().take(2_000).cloned().collect();
    ClxSession::new(sample)
        .label_by_example(target_example)
        .expect("label")
        .compile()
        .expect("compile")
}

/// One whole stream over the `&[String]` path: every row of every chunk is
/// re-tokenized to dispatch it.
fn stream_strings(program: &CompiledProgram, data: &[String]) -> usize {
    let mut stream = program.stream();
    for chunk in data.chunks(CHUNK) {
        black_box(stream.push_chunk(chunk));
    }
    stream.finish().rows()
}

/// One whole stream over the columnar path: chunks intern into a persistent
/// id space; distinct values tokenize and decide once per stream.
fn stream_columns(program: &Arc<CompiledProgram>, data: &[String]) -> usize {
    let mut stream = ColumnStream::new(Arc::clone(program));
    for chunk in data.chunks(CHUNK) {
        black_box(stream.push_rows(chunk));
    }
    stream.finish().rows()
}

fn bench_stream_ingest(c: &mut Criterion) {
    let case = duplicate_heavy_case(ROWS, DISTINCT, 7);
    let program = Arc::new(compile_for(&case.data, &case.target_example));

    let mut group = c.benchmark_group("stream_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_with_input(
        BenchmarkId::new("push_chunk_strings", ROWS),
        &case.data,
        |b, data| b.iter(|| black_box(stream_strings(&program, black_box(data)))),
    );

    group.bench_with_input(
        BenchmarkId::new("push_column_chunk", ROWS),
        &case.data,
        |b, data| b.iter(|| black_box(stream_columns(&program, black_box(data)))),
    );

    group.finish();

    let mut group = c.benchmark_group("from_rows");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_with_input(
        BenchmarkId::new("sequential", ROWS),
        &case.data,
        |b, data| b.iter(|| black_box(Column::from_rows(black_box(data).clone()))),
    );
    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("builder_{shards}_shards"), ROWS),
            &case.data,
            |b, data| {
                let builder = ColumnBuilder::new().shards(shards);
                b.iter(|| black_box(builder.build(black_box(data).clone())))
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_stream_ingest);
criterion_main!(benches);
