//! Latency of the *interactive* path — profile + synthesize — on a
//! duplicate-heavy 100k-row column (≤1k distinct values), the workload the
//! shared column data plane is built for.
//!
//! Two series:
//!
//! * `per_row_baseline` replays the pre-refactor pipeline's O(rows) phase:
//!   every row is tokenized to find its cluster, and constant discovery
//!   tokenizes every row again to collect per-position statistics. (The
//!   pre-refactor hierarchy/synthesis work on top of this was O(distinct
//!   patterns) and is omitted, so the baseline is a *lower bound* on the
//!   old cost.)
//! * `column_data_plane` runs the full current path end to end: build the
//!   [`clx_column::Column`] (interning + dedup + one tokenization per
//!   distinct value), profile it, and synthesize the program — everything
//!   `ClxSession::new` + `label` do today.
//!
//! The refactor's acceptance bar is `column_data_plane` beating
//! `per_row_baseline` by ≥5x on this workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;
use std::hint::black_box;

use clx_cluster::{discover_constants, ConstantDiscoveryOptions, PatternProfiler};
use clx_column::Column;
use clx_datagen::duplicate_heavy_case;
use clx_pattern::{tokenize, Pattern};
use clx_synth::{synthesize_column, SynthesisOptions};

const ROWS: usize = 100_000;
const DISTINCT: usize = 1_000;

/// The pre-refactor O(rows) profiling work: per-row tokenization for the
/// initial clustering, plus per-row re-tokenization inside constant
/// discovery.
fn per_row_phase1(data: &[String]) -> usize {
    let mut clusters: HashMap<Pattern, Vec<usize>> = HashMap::new();
    for (i, s) in data.iter().enumerate() {
        clusters.entry(tokenize(s)).or_default().push(i);
    }
    let options = ConstantDiscoveryOptions::default();
    let mut refined = 0usize;
    for (pattern, rows) in &clusters {
        let row_strs: Vec<&str> = rows.iter().map(|&i| data[i].as_str()).collect();
        let (p, conforming) = discover_constants(pattern, &row_strs, &options);
        refined += p.len() + conforming.len();
    }
    refined
}

/// The current interactive path: column build + profile + synthesize.
fn column_data_plane(data: &[String], target: &Pattern) -> usize {
    let column = Column::from_values(data);
    let hierarchy = PatternProfiler::new().profile_column(&column);
    let synthesis = synthesize_column(&hierarchy, &column, target, &SynthesisOptions::default());
    synthesis.source_count() + hierarchy.leaves().len()
}

fn bench_profile_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_synthesize");
    group.sample_size(10);

    let case = duplicate_heavy_case(ROWS, DISTINCT, 7);
    let target = case.target_pattern();
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_with_input(
        BenchmarkId::new("per_row_baseline", ROWS),
        &case.data,
        |b, data| b.iter(|| black_box(per_row_phase1(black_box(data)))),
    );

    group.bench_with_input(
        BenchmarkId::new("column_data_plane", ROWS),
        &case.data,
        |b, data| b.iter(|| black_box(column_data_plane(black_box(data), &target))),
    );

    group.finish();
}

criterion_group!(benches, bench_profile_synthesize);
criterion_main!(benches);
