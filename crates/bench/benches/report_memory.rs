//! Report construction cost vs. duplicate multiplicity.
//!
//! Before the columnar redesign, building a `TransformReport` cloned one
//! `RowOutcome` per duplicate row — O(rows) time and memory even when the
//! engine decided only O(distinct) values. The columnar report keeps the
//! distinct decisions plus a reference-counted clone of the column's row
//! map, so construction should no longer scale with multiplicity.
//!
//! Two series over the duplicate-heavy workload (≤1k distinct values):
//!
//! * `per_row_fanout` replays the pre-redesign construction: fan the
//!   distinct decisions out to one cloned outcome per row, then merge.
//! * `columnar` builds the report the engine builds today: the decisions
//!   move in, the row map is shared.
//!
//! Growing the rows 10x (10k -> 100k) at fixed distinct count should grow
//! `per_row_fanout` ~10x while `columnar` stays flat — that flatness *is*
//! the acceptance bar of the redesign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use clx_column::Column;
use clx_core::ClxSession;
use clx_datagen::duplicate_heavy_case;
use clx_engine::{BatchReport, ChunkReport, RowOutcome};
use clx_pattern::{tokenize, Pattern};

const DISTINCT: usize = 1_000;

/// The pre-redesign O(rows) construction: one cloned outcome per row.
fn per_row_fanout(target: &Pattern, decided: &[RowOutcome], column: &Column) -> BatchReport {
    let rows: Vec<RowOutcome> = (0..column.len())
        .map(|row| decided[column.distinct_index_of(row)].clone())
        .collect();
    BatchReport::from_chunks(target.clone(), vec![ChunkReport::new(0, rows)])
}

fn bench_report_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("report_memory");
    group.sample_size(10);

    for &rows in &[10_000usize, 100_000] {
        let case = duplicate_heavy_case(rows, DISTINCT, 7);
        let target = tokenize(&case.target_example);
        let session = ClxSession::new(case.data)
            .label(target.clone())
            .expect("label");
        let compiled = session.compile().expect("compile");
        let column = session.data();
        // Decide each distinct value once, outside the measurement: both
        // series measure pure report *construction* on top of the same
        // decisions.
        let decided = compiled.execute_column(column).outcomes().to_vec();
        assert!(decided.len() <= DISTINCT);

        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(
            BenchmarkId::new("per_row_fanout", rows),
            &decided,
            |b, decided| b.iter(|| black_box(per_row_fanout(&target, black_box(decided), column))),
        );
        group.bench_with_input(
            BenchmarkId::new("columnar", rows),
            &decided,
            |b, decided| {
                b.iter(|| {
                    black_box(BatchReport::columnar(
                        target.clone(),
                        black_box(decided.clone()),
                        column,
                    ))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_report_memory);
criterion_main!(benches);
