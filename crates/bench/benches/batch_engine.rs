//! Throughput of the `clx-engine` batch subsystem: rows/sec of
//! compiled-parallel execution vs. the sequential session `apply` on a
//! 100k-row generated phone column. This is the baseline future PRs measure
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use clx_core::{ClxSession, TransformReport};
use clx_datagen::large_case;
use clx_engine::ExecOptions;
use clx_pattern::tokenize;

const ROWS: usize = 100_000;

fn bench_batch_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(10);

    let case = large_case(ROWS, 7);
    let session = ClxSession::new(case.data.clone())
        .label(tokenize("734-422-8073"))
        .expect("label");
    let compiled = session.compile().expect("compile");

    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_with_input(
        BenchmarkId::new("sequential_apply", ROWS),
        &session,
        |b, session| {
            b.iter(|| {
                let report = session.apply().expect("apply");
                black_box(report.transformed_count())
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("compiled_parallel", ROWS),
        &case.data,
        |b, data| {
            b.iter(|| {
                let report = compiled.execute(black_box(data));
                black_box(report.transformed_count())
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("compiled_single_thread", ROWS),
        &case.data,
        |b, data| {
            b.iter(|| {
                let report = compiled.execute_with(
                    black_box(data),
                    ExecOptions {
                        threads: 1,
                        chunk_size: 0,
                    },
                );
                black_box(report.transformed_count())
            })
        },
    );

    // The one-time cost the compiled paths pay up front.
    group.bench_function("compile_program", |b| {
        b.iter(|| black_box(session.compile().expect("compile")))
    });

    group.finish();

    // Sanity: the two paths agree on this workload (a benchmark of a wrong
    // answer would be worthless).
    let sequential = session.apply().expect("apply");
    let parallel = TransformReport::from_batch(compiled.execute(&case.data));
    assert_eq!(sequential, parallel);
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
