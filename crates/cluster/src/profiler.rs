//! The pattern profiler: the end-to-end "Clustering" component of CLX
//! (Section 4), combining tokenization-based initial clustering, constant
//! discovery and agglomerative refinement into one call.
//!
//! Profiling runs over the shared column data plane ([`clx_column::Column`]):
//! only the column's *distinct* values are analyzed — their leaf patterns
//! and token streams come straight from the column's cache — and the
//! resulting cluster row sets are fanned back out to original row indices
//! through the column's multiplicity lists. A duplicate-heavy column
//! therefore profiles in O(distinct values), not O(rows).

use std::collections::HashMap;

use clx_column::Column;
use clx_pattern::{Pattern, TokenizedString};

use crate::constants::{discover_constants_weighted, ConstantDiscoveryOptions};
use crate::hierarchy::{NodeId, PatternHierarchy};
use crate::refine::{refine_level, GeneralizationStrategy, STANDARD_STRATEGIES};

/// Options controlling pattern profiling.
#[derive(Debug, Clone)]
pub struct ProfilerOptions {
    /// Whether to run constant-token discovery on the leaf clusters.
    pub discover_constants: bool,
    /// Options for constant discovery (ignored when disabled).
    pub constant_options: ConstantDiscoveryOptions,
    /// The generalization strategies applied, one refinement level each.
    /// Defaults to the paper's three rounds.
    pub strategies: Vec<GeneralizationStrategy>,
    /// Maximum number of example values retained per cluster for display.
    pub examples_per_cluster: usize,
}

impl Default for ProfilerOptions {
    fn default() -> Self {
        ProfilerOptions {
            discover_constants: true,
            constant_options: ConstantDiscoveryOptions::default(),
            strategies: STANDARD_STRATEGIES.to_vec(),
            examples_per_cluster: 3,
        }
    }
}

/// Profiles a column of string data into a [`PatternHierarchy`].
///
/// ```
/// use clx_cluster::PatternProfiler;
/// let h = PatternProfiler::new().profile(&["a1", "b2", "xyz-9"]);
/// assert_eq!(h.leaves().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternProfiler {
    options: ProfilerOptions,
}

impl PatternProfiler {
    /// A profiler with default options (constant discovery on, the paper's
    /// three refinement strategies).
    pub fn new() -> Self {
        PatternProfiler {
            options: ProfilerOptions::default(),
        }
    }

    /// A profiler with custom options.
    pub fn with_options(options: ProfilerOptions) -> Self {
        PatternProfiler { options }
    }

    /// The options this profiler uses.
    pub fn options(&self) -> &ProfilerOptions {
        &self.options
    }

    /// Profile `data` into a pattern-cluster hierarchy.
    ///
    /// Convenience wrapper that builds a [`Column`] (interning, dedup,
    /// cached tokenization) and delegates to
    /// [`PatternProfiler::profile_column`]. Callers that keep the column
    /// around — like `ClxSession` — should build it once and use
    /// `profile_column` directly so every later stage shares the cache.
    pub fn profile<S: AsRef<str>>(&self, data: &[S]) -> PatternHierarchy {
        self.profile_column(&Column::from_values(data))
    }

    /// Profile a [`Column`] into a pattern-cluster hierarchy.
    ///
    /// Phase 1 clusters the column's *distinct* values by their cached leaf
    /// patterns and runs constant discovery over the cached token streams;
    /// row sets are fanned back out through the column's multiplicity
    /// lists. Phase 2 (agglomerative refinement) operates on patterns only.
    pub fn profile_column(&self, column: &Column) -> PatternHierarchy {
        let mut hierarchy = PatternHierarchy::new(column.len());

        // ---- Phase 1: initial clustering through tokenization (§4.1) ----
        // Group distinct values by their cached leaf pattern. `clusters`
        // holds indices into the column's distinct-value table.
        let mut by_leaf: HashMap<&Pattern, usize> = HashMap::new();
        let mut order: Vec<Pattern> = Vec::new();
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for value in column.distinct_values() {
            let slot = *by_leaf.entry(value.leaf()).or_insert_with(|| {
                order.push(value.leaf().clone());
                clusters.push(Vec::new());
                clusters.len() - 1
            });
            clusters[slot].push(value.index());
        }

        // Constant discovery may refine each cluster's pattern; it reads the
        // cached token streams and counts each distinct value once.
        // Non-conforming values (only possible with a dominance threshold
        // below 1.0) are split off into a cluster keyed by the original
        // pattern.
        let mut final_clusters: Vec<(Pattern, Vec<usize>)> = Vec::new();
        for (pattern, members) in order.into_iter().zip(clusters) {
            if self.options.discover_constants {
                let streams: Vec<&TokenizedString> = members
                    .iter()
                    .map(|&v| column.distinct(v).tokenized())
                    .collect();
                // Row multiplicities only matter in `row_weighted` mode;
                // the default statistics count each distinct value once, so
                // skip collecting them on the (hot) default path.
                let multiplicities: Option<Vec<usize>> =
                    self.options.constant_options.row_weighted.then(|| {
                        members
                            .iter()
                            .map(|&v| column.distinct(v).multiplicity())
                            .collect()
                    });
                let (refined, conforming) = discover_constants_weighted(
                    &pattern,
                    &streams,
                    multiplicities.as_deref(),
                    &self.options.constant_options,
                );
                if conforming.len() == members.len() {
                    final_clusters.push((refined, members));
                } else {
                    let conforming_values: Vec<usize> =
                        conforming.iter().map(|&i| members[i]).collect();
                    let rest: Vec<usize> = members
                        .iter()
                        .copied()
                        .filter(|v| !conforming_values.contains(v))
                        .collect();
                    final_clusters.push((refined, conforming_values));
                    final_clusters.push((pattern, rest));
                }
            } else {
                final_clusters.push((pattern, members));
            }
        }

        // Merge clusters whose refined patterns collide.
        let mut merged: Vec<(Pattern, Vec<usize>)> = Vec::new();
        for (pattern, members) in final_clusters {
            if let Some(existing) = merged.iter_mut().find(|(p, _)| *p == pattern) {
                existing.1.extend(members);
            } else {
                merged.push((pattern, members));
            }
        }

        // Materialize the leaf nodes: fan distinct-value membership back out
        // to original row indices through the multiplicity lists.
        let mut current_level: Vec<NodeId> = Vec::new();
        for (pattern, members) in merged {
            let mut rows: Vec<usize> = members
                .iter()
                .flat_map(|&v| column.distinct(v).rows())
                .collect();
            rows.sort_unstable();
            let examples = members
                .iter()
                .take(self.options.examples_per_cluster)
                .map(|&v| column.distinct(v).text().to_string())
                .collect();
            let id = hierarchy.add_node(pattern, 0, Vec::new(), rows, examples);
            current_level.push(id);
        }

        // ---- Phase 2: agglomerative refinement (§4.2, Algorithm 1) ----
        for (round, strategy) in self.options.strategies.iter().enumerate() {
            let level = round + 1;
            let child_patterns: Vec<Pattern> = current_level
                .iter()
                .map(|&id| hierarchy.node(id).pattern.clone())
                .collect();
            let refined = refine_level(&child_patterns, *strategy);
            // If refinement makes no progress (every parent has exactly one
            // child and the same pattern), stop early to avoid duplicate
            // levels.
            let trivial = refined
                .iter()
                .all(|(p, kids)| kids.len() == 1 && *p == child_patterns[kids[0]]);
            if trivial {
                break;
            }
            let mut next_level = Vec::new();
            for (parent_pattern, child_idxs) in refined {
                let children: Vec<NodeId> = child_idxs.iter().map(|&i| current_level[i]).collect();
                let mut rows: Vec<usize> = children
                    .iter()
                    .flat_map(|&c| hierarchy.node(c).rows.clone())
                    .collect();
                rows.sort_unstable();
                let examples = children
                    .iter()
                    .flat_map(|&c| hierarchy.node(c).examples.clone())
                    .take(self.options.examples_per_cluster)
                    .collect();
                let id = hierarchy.add_node(parent_pattern, level, children, rows, examples);
                next_level.push(id);
            }
            current_level = next_level;
        }

        debug_assert!(hierarchy.check_invariants().is_ok());
        hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::parse_pattern;

    fn phone_data() -> Vec<&'static str> {
        vec![
            "(734) 645-8397",
            "(734) 763-1147",
            "(734)586-7252",
            "734-422-8073",
            "734-936-2447",
            "734.236.3466",
            "N/A",
        ]
    }

    #[test]
    fn initial_clustering_groups_by_pattern() {
        let h = PatternProfiler::new().profile(&phone_data());
        // 5 distinct leaf patterns: "(ddd) ddd-dddd", "(ddd)ddd-dddd",
        // "ddd-ddd-dddd", "ddd.ddd.dddd", "N/A".
        assert_eq!(h.leaves().len(), 5);
        assert_eq!(h.total_rows(), 7);
        h.check_invariants().unwrap();
    }

    #[test]
    fn leaves_are_ordered_by_cluster_size() {
        let h = PatternProfiler::new().profile(&phone_data());
        let sizes: Vec<usize> = h.leaves().iter().map(|n| n.size()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn hierarchy_has_multiple_levels() {
        let h = PatternProfiler::new().profile(&phone_data());
        assert!(h.level_count() >= 2, "expected refinement to add levels");
        // Top level has fewer clusters than the leaves.
        assert!(h.roots().len() <= h.leaves().len());
        h.check_invariants().unwrap();
    }

    #[test]
    fn email_example_reaches_figure_6_top_pattern() {
        let data = vec!["Bob123@gmail.com", "alice99@yahoo.org", "Zed5@x.io"];
        let h = PatternProfiler::new().profile(&data);
        let top_patterns: Vec<String> = h.roots().iter().map(|n| n.pattern.to_string()).collect();
        assert!(
            top_patterns.contains(&"<AN>+'@'<AN>+'.'<AN>+".to_string()),
            "top level should contain the Figure 6 pattern, got {top_patterns:?}"
        );
    }

    #[test]
    fn constant_discovery_is_applied() {
        let data = vec!["Dr. Eran Yahav", "Dr. Bill Gates", "Dr. Oege Moor"];
        let h = PatternProfiler::new().profile(&data);
        let leaf_patterns: Vec<String> = h.leaves().iter().map(|n| n.pattern.to_string()).collect();
        assert!(
            leaf_patterns.iter().any(|p| p.contains("'Dr. '")),
            "expected the constant prefix to be discovered, got {leaf_patterns:?}"
        );
    }

    #[test]
    fn constant_discovery_can_be_disabled() {
        let data = vec!["Dr. Eran Yahav", "Dr. Bill Gates", "Dr. Oege Moor"];
        let options = ProfilerOptions {
            discover_constants: false,
            ..Default::default()
        };
        let h = PatternProfiler::with_options(options).profile(&data);
        let leaf_patterns: Vec<String> = h.leaves().iter().map(|n| n.pattern.to_string()).collect();
        assert!(leaf_patterns.iter().all(|p| !p.contains("'Dr. '")));
    }

    #[test]
    fn every_row_matches_its_leaf_pattern() {
        let data = phone_data();
        let h = PatternProfiler::new().profile(&data);
        for (i, s) in data.iter().enumerate() {
            let leaf = h.leaf_of_row(i).expect("row must be in a leaf");
            assert!(
                leaf.pattern.matches(s),
                "leaf pattern {} must match row {s:?}",
                leaf.pattern
            );
        }
    }

    #[test]
    fn roots_cover_all_leaf_patterns() {
        let data = phone_data();
        let h = PatternProfiler::new().profile(&data);
        for leaf in h.leaves() {
            let covered = h
                .roots()
                .iter()
                .any(|root| root.pattern.covers(&leaf.pattern));
            assert!(covered, "leaf {} not covered by any root", leaf.pattern);
        }
    }

    #[test]
    fn empty_input() {
        let h = PatternProfiler::new().profile::<&str>(&[]);
        assert_eq!(h.total_rows(), 0);
        assert!(h.leaves().is_empty());
        h.check_invariants().unwrap();
    }

    #[test]
    fn identical_rows_form_one_cluster() {
        let data = vec!["same", "same", "same"];
        let h = PatternProfiler::new().profile(&data);
        assert_eq!(h.leaves().len(), 1);
        assert_eq!(h.leaves()[0].size(), 3);
    }

    #[test]
    fn repeated_values_do_not_fold_into_one_literal() {
        // A single distinct value repeated N times is no evidence of
        // constancy: the leaf must keep its base tokens (extractable by the
        // synthesizer) instead of freezing into the literal 'Dr. Eran Yahav'.
        let data = vec!["Dr. Eran Yahav"; 40];
        let h = PatternProfiler::new().profile(&data);
        assert_eq!(h.leaves().len(), 1);
        let leaf = &h.leaves()[0];
        assert_eq!(leaf.size(), 40);
        assert_eq!(leaf.pattern, clx_pattern::tokenize("Dr. Eran Yahav"));
    }

    #[test]
    fn row_weighted_constants_flow_through_the_profiler() {
        // 18 rows agree on the "CPT" prefix, 1 typo row disagrees: only the
        // row-weighted mode (with a sub-1.0 threshold) folds the prefix and
        // splits the typo into its own cluster.
        let mut data = vec!["CPT115"; 10];
        data.extend(vec!["CPT200"; 8]);
        data.push("XYZ999");

        let default = PatternProfiler::with_options(ProfilerOptions {
            constant_options: crate::ConstantDiscoveryOptions {
                dominance_threshold: 0.8,
                ..Default::default()
            },
            ..Default::default()
        })
        .profile(&data);
        assert!(default
            .leaves()
            .iter()
            .all(|n| !n.pattern.to_string().contains("'CPT'")));

        let row_weighted = PatternProfiler::with_options(ProfilerOptions {
            constant_options: crate::ConstantDiscoveryOptions {
                dominance_threshold: 0.8,
                row_weighted: true,
                ..Default::default()
            },
            ..Default::default()
        })
        .profile(&data);
        let leaves = row_weighted.leaves();
        let folded = leaves
            .iter()
            .find(|n| n.pattern.to_string().starts_with("'CPT'"))
            .expect("row-weighted profiling folds the dominant prefix");
        assert_eq!(folded.size(), 18);
        // The typo splits into its own cluster; every row stays accounted.
        assert_eq!(row_weighted.total_rows(), 19);
    }

    #[test]
    fn profile_column_equals_profile_and_runs_on_distinct_values() {
        let data: Vec<String> = (0..500)
            .map(|i| match i % 5 {
                0 | 1 => "(734) 645-8397".to_string(),
                2 => "734-422-8073".to_string(),
                3 => format!("73{}.236.3466", i % 7),
                _ => "N/A".to_string(),
            })
            .collect();
        let column = Column::from_rows(data.clone());
        assert!(column.distinct_count() < 15);
        let via_rows = PatternProfiler::new().profile(&data);
        let via_column = PatternProfiler::new().profile_column(&column);
        assert_eq!(via_rows.pattern_summary(), via_column.pattern_summary());
        assert_eq!(via_column.total_rows(), 500);
        via_column.check_invariants().unwrap();
        // Every row index is fanned back out to its leaf.
        for (i, s) in data.iter().enumerate() {
            let leaf = via_column.leaf_of_row(i).expect("row in a leaf");
            assert!(leaf.pattern.matches(s), "{s:?} vs {}", leaf.pattern);
        }
    }

    #[test]
    fn examples_are_limited() {
        let data: Vec<String> = (0..20).map(|i| format!("{i:04}")).collect();
        let h = PatternProfiler::new().profile(&data);
        for node in h.nodes() {
            assert!(node.examples.len() <= 3);
        }
    }

    #[test]
    fn custom_strategies_control_depth() {
        let options = ProfilerOptions {
            strategies: vec![GeneralizationStrategy::QuantifierToPlus],
            ..Default::default()
        };
        let h = PatternProfiler::with_options(options).profile(&phone_data());
        assert!(h.level_count() <= 2);
    }

    #[test]
    fn heterogeneous_clusters_can_share_parent() {
        let data = vec!["id-1", "id-22", "id-333"];
        let h = PatternProfiler::new().profile(&data);
        // Three leaves (different digit counts) but a single level-1 parent.
        // Note: constant discovery folds "id-" but the structure holds.
        assert!(h.leaves().len() <= 3);
        assert_eq!(h.roots().len(), 1);
        let root = &h.roots()[0];
        assert_eq!(root.size(), 3);
    }

    #[test]
    fn find_pattern_works_across_levels() {
        let data = vec!["Bob123@gmail.com", "alice99@yahoo.org"];
        let h = PatternProfiler::new().profile(&data);
        let p = parse_pattern("<AN>+'@'<AN>+'.'<AN>+").unwrap();
        assert!(h.find_pattern(&p).is_some());
    }
}
