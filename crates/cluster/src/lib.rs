//! # clx-cluster
//!
//! Pattern profiling for CLX: clustering raw string data into pattern
//! clusters and arranging those clusters into the hierarchical structure of
//! Section 4 of *CLX: Towards verifiable PBE data transformation*.
//!
//! The profiling is a two-phase process:
//!
//! 1. **Initial clustering through tokenization** (§4.1): every string is
//!    tokenized into its most-specific leaf pattern and strings sharing a
//!    pattern form one cluster. Constant-valued base tokens are then
//!    discovered statistically and folded into literal tokens ("Dr.",
//!    country codes, unit suffixes, ...), which improves the programs the
//!    synthesizer can produce.
//! 2. **Agglomerative refinement** (§4.2, Algorithm 1): the leaf clusters
//!    are repeatedly generalized — quantifiers to `+`, `<L>/<U>` to `<A>`,
//!    `<A>/<D>/'-'/'_'` to `<AN>` — building a [`PatternHierarchy`] whose
//!    upper levels give the user a compact overview and give the
//!    synthesizer fewer, simpler source patterns to transform.
//!
//! # Example
//!
//! ```
//! use clx_cluster::PatternProfiler;
//!
//! let data = vec![
//!     "(734) 645-8397", "(734) 763-1147", "734-422-8073", "734.236.3466",
//! ];
//! let hierarchy = PatternProfiler::new().profile(&data);
//! // Three distinct phone formats -> three leaf clusters.
//! assert_eq!(hierarchy.leaves().len(), 3);
//! // Every row is covered by exactly one leaf.
//! assert_eq!(hierarchy.total_rows(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod constants;
mod hierarchy;
mod profiler;
mod refine;

pub use constants::{
    discover_constants, discover_constants_cached, discover_constants_weighted,
    ConstantDiscoveryOptions,
};
pub use hierarchy::{ClusterNode, NodeId, PatternHierarchy};
pub use profiler::{PatternProfiler, ProfilerOptions};
pub use refine::{refine_level, GeneralizationStrategy, STANDARD_STRATEGIES};
