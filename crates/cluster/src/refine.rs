//! Agglomerative pattern-cluster refinement (Section 4.2, Algorithm 1).
//!
//! Each refinement round applies one *generalization strategy* to every
//! pattern of the previous level, producing candidate parent patterns, and
//! then keeps a small covering subset of those parents (most-covering
//! first), exactly as Algorithm 1 of the paper describes.

use std::collections::HashMap;

use clx_pattern::{Pattern, Quantifier, Token, TokenClass};

/// A generalization strategy `g̃` used by one refinement round.
///
/// The paper performs three rounds (Section 4.2):
///
/// 1. natural-number quantifiers → `+`;
/// 2. `<L>`, `<U>` tokens → `<A>`;
/// 3. `<A>`, `<D>`, `'-'`, `'_'` tokens → `<AN>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneralizationStrategy {
    /// Strategy 1: replace every natural-number quantifier with `+`.
    QuantifierToPlus,
    /// Strategy 2: replace `<L>` and `<U>` with `<A>` (and merge adjacent
    /// tokens that become the same class).
    CaseToAlpha,
    /// Strategy 3: replace `<A>`, `<D>` and the literals `'-'`/`'_'` with
    /// `<AN>` (and merge adjacent tokens that become the same class).
    AlphaDigitToAlnum,
}

/// The three standard strategies, in the order the paper applies them.
pub const STANDARD_STRATEGIES: [GeneralizationStrategy; 3] = [
    GeneralizationStrategy::QuantifierToPlus,
    GeneralizationStrategy::CaseToAlpha,
    GeneralizationStrategy::AlphaDigitToAlnum,
];

impl GeneralizationStrategy {
    /// `getParent(p, g̃)` from Algorithm 1: the parent pattern obtained by
    /// applying this strategy to `pattern`.
    pub fn parent_of(&self, pattern: &Pattern) -> Pattern {
        match self {
            GeneralizationStrategy::QuantifierToPlus => {
                let tokens = pattern
                    .iter()
                    .map(|t| {
                        if t.is_base() {
                            Token {
                                class: t.class.clone(),
                                quantifier: Quantifier::OneOrMore,
                            }
                        } else {
                            t.clone()
                        }
                    })
                    .collect();
                Pattern::new(tokens)
            }
            GeneralizationStrategy::CaseToAlpha => {
                let tokens = pattern
                    .iter()
                    .map(|t| match t.class {
                        TokenClass::Lower | TokenClass::Upper => Token {
                            class: TokenClass::Alpha,
                            quantifier: generalized_quantifier(t),
                        },
                        _ => t.clone(),
                    })
                    .collect();
                Pattern::new(tokens).merge_adjacent()
            }
            GeneralizationStrategy::AlphaDigitToAlnum => {
                let tokens = pattern
                    .iter()
                    .map(|t| {
                        let is_an_literal = t
                            .literal_value()
                            .map(|s| !s.is_empty() && s.chars().all(|c| c == '-' || c == '_'))
                            .unwrap_or(false);
                        match &t.class {
                            TokenClass::Alpha
                            | TokenClass::Digit
                            | TokenClass::Lower
                            | TokenClass::Upper => Token {
                                class: TokenClass::AlphaNumeric,
                                quantifier: generalized_quantifier(t),
                            },
                            _ if is_an_literal => Token {
                                class: TokenClass::AlphaNumeric,
                                quantifier: Quantifier::OneOrMore,
                            },
                            _ => t.clone(),
                        }
                    })
                    .collect();
                Pattern::new(tokens).merge_adjacent()
            }
        }
    }
}

/// When a class is widened, a pattern that still carried an exact quantifier
/// keeps it; a `+` stays `+`. (Strategies 2 and 3 run after strategy 1 in
/// the standard pipeline so in practice everything is already `+`.)
fn generalized_quantifier(t: &Token) -> Quantifier {
    t.quantifier
}

/// Algorithm 1: refine one level of the hierarchy.
///
/// Given the child patterns `patterns` of the previous level and a
/// generalization strategy, returns the covering set of parent patterns
/// `P_final` together with, for each parent, the indices into `patterns` of
/// the children it covers. Every child is assigned to exactly one parent
/// (the most frequent parent that covers it, ties broken deterministically
/// by pattern order), and the union of the assignments covers all children —
/// mirroring lines 3–11 of Algorithm 1.
pub fn refine_level(
    patterns: &[Pattern],
    strategy: GeneralizationStrategy,
) -> Vec<(Pattern, Vec<usize>)> {
    // Lines 3-6: compute each child's raw parent and count parent frequency.
    let mut counts: HashMap<Pattern, usize> = HashMap::new();
    let mut raw_parents: Vec<Pattern> = Vec::with_capacity(patterns.len());
    for p in patterns {
        let parent = strategy.parent_of(p);
        *counts.entry(parent.clone()).or_insert(0) += 1;
        raw_parents.push(parent);
    }

    // Lines 7-10: iterate parents from most to least frequent, claiming every
    // still-unclaimed child the parent covers.
    let mut order: Vec<&Pattern> = counts.keys().collect();
    order.sort_by(|a, b| {
        counts[*b]
            .cmp(&counts[*a])
            .then_with(|| a.notation().cmp(&b.notation()))
    });

    let mut claimed = vec![false; patterns.len()];
    let mut result: Vec<(Pattern, Vec<usize>)> = Vec::new();
    for parent in order {
        let mut children = Vec::new();
        for (i, child) in patterns.iter().enumerate() {
            if !claimed[i] && (parent.covers(child) || &raw_parents[i] == parent) {
                children.push(i);
            }
        }
        if !children.is_empty() {
            for &i in &children {
                claimed[i] = true;
            }
            result.push((parent.clone(), children));
        }
    }

    // Defensive: any child not covered by a selected parent (possible only if
    // `covers` is more conservative than `parent_of`) becomes its own parent.
    for (i, child) in patterns.iter().enumerate() {
        if !claimed[i] {
            result.push((
                raw_parents.get(i).cloned().unwrap_or_else(|| child.clone()),
                vec![i],
            ));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};

    fn p(s: &str) -> Pattern {
        parse_pattern(s).unwrap()
    }

    #[test]
    fn strategy_1_replaces_quantifiers() {
        let leaf = tokenize("Bob123@gmail.com");
        let parent = GeneralizationStrategy::QuantifierToPlus.parent_of(&leaf);
        assert_eq!(parent.to_string(), "<U>+<L>+<D>+'@'<L>+'.'<L>+");
    }

    #[test]
    fn strategy_2_merges_case_runs() {
        let p1 = p("<U>+<L>+<D>+'@'<L>+'.'<L>+");
        let parent = GeneralizationStrategy::CaseToAlpha.parent_of(&p1);
        assert_eq!(parent.to_string(), "<A>+<D>+'@'<A>+'.'<A>+");
    }

    #[test]
    fn strategy_3_produces_alnum_pattern() {
        let p2 = p("<A>+<D>+'@'<A>+'.'<A>+");
        let parent = GeneralizationStrategy::AlphaDigitToAlnum.parent_of(&p2);
        assert_eq!(parent.to_string(), "<AN>+'@'<AN>+'.'<AN>+");
    }

    #[test]
    fn figure_6_chain() {
        // The full chain from Figure 6 of the paper.
        let leaf = tokenize("Bob123@gmail.com");
        let p1 = GeneralizationStrategy::QuantifierToPlus.parent_of(&leaf);
        let p2 = GeneralizationStrategy::CaseToAlpha.parent_of(&p1);
        let p3 = GeneralizationStrategy::AlphaDigitToAlnum.parent_of(&p2);
        assert_eq!(p1.to_string(), "<U>+<L>+<D>+'@'<L>+'.'<L>+");
        assert_eq!(p2.to_string(), "<A>+<D>+'@'<A>+'.'<A>+");
        assert_eq!(p3.to_string(), "<AN>+'@'<AN>+'.'<AN>+");
        // Each level covers the previous one.
        assert!(p1.covers(&leaf));
        assert!(p2.covers(&leaf));
        assert!(p3.covers(&leaf));
    }

    #[test]
    fn strategy_3_absorbs_hyphen_and_underscore_literals() {
        let pattern = p("<A>+'-'<D>+'_'<A>+");
        let parent = GeneralizationStrategy::AlphaDigitToAlnum.parent_of(&pattern);
        assert_eq!(parent.to_string(), "<AN>+");
    }

    #[test]
    fn strategy_3_keeps_other_literals() {
        let pattern = p("<A>+'.'<D>+");
        let parent = GeneralizationStrategy::AlphaDigitToAlnum.parent_of(&pattern);
        assert_eq!(parent.to_string(), "<AN>+'.'<AN>+");
    }

    #[test]
    fn refine_level_groups_children_sharing_a_parent() {
        // Two phone formats that collapse under strategy 1 into different
        // parents, plus one more that shares a parent with the first.
        let children = vec![
            tokenize("734-422-8073"),
            tokenize("73-42-80"), // same shape, different digit counts
            tokenize("(734) 645-8397"),
        ];
        let refined = refine_level(&children, GeneralizationStrategy::QuantifierToPlus);
        // First two collapse to <D>+'-'<D>+'-'<D>+, third keeps its own parent.
        assert_eq!(refined.len(), 2);
        let top = &refined[0];
        assert_eq!(top.0.to_string(), "<D>+'-'<D>+'-'<D>+");
        assert_eq!(top.1, vec![0, 1]);
    }

    #[test]
    fn refine_level_every_child_assigned_exactly_once() {
        let children: Vec<Pattern> = [
            "Bob123@gmail.com",
            "alice@yahoo.org",
            "x99@a.io",
            "(734) 645-8397",
            "734.236.3466",
            "N/A",
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        for strategy in STANDARD_STRATEGIES {
            let refined = refine_level(&children, strategy);
            let mut seen = vec![0usize; children.len()];
            for (_, kids) in &refined {
                for &k in kids {
                    seen[k] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "strategy {strategy:?}: {seen:?}"
            );
        }
    }

    #[test]
    fn refine_level_parents_cover_children() {
        let children: Vec<Pattern> = ["abc-12", "x-9", "QQ-444"]
            .iter()
            .map(|s| tokenize(s))
            .collect();
        let refined = refine_level(&children, GeneralizationStrategy::QuantifierToPlus);
        for (parent, kids) in &refined {
            for &k in kids {
                assert!(
                    parent.covers(&children[k]),
                    "{parent} should cover {}",
                    children[k]
                );
            }
        }
    }

    #[test]
    fn refine_level_most_frequent_parent_claims_first() {
        // Three children map to parent A, one to parent B, but B's child is
        // also coverable by A? Construct: children all digits with '-' so
        // strategy 3 gives <AN>+ for all; under strategy-3 refinement there
        // must be a single parent.
        let children: Vec<Pattern> = ["a-1", "bb-22", "c_3", "d4"]
            .iter()
            .map(|s| tokenize(s))
            .collect();
        // strategy 1 then 2 then 3 chain
        let l1: Vec<Pattern> = refine_level(&children, GeneralizationStrategy::QuantifierToPlus)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let l2: Vec<Pattern> = refine_level(&l1, GeneralizationStrategy::CaseToAlpha)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let l3 = refine_level(&l2, GeneralizationStrategy::AlphaDigitToAlnum);
        assert_eq!(l3.len(), 1);
        assert_eq!(l3[0].0.to_string(), "<AN>+");
    }

    #[test]
    fn empty_input_produces_empty_level() {
        assert!(refine_level(&[], GeneralizationStrategy::QuantifierToPlus).is_empty());
    }

    #[test]
    fn idempotent_on_already_general_patterns() {
        let general = p("<AN>+'@'<AN>+");
        let parent = GeneralizationStrategy::AlphaDigitToAlnum.parent_of(&general);
        assert_eq!(parent, general);
    }
}
