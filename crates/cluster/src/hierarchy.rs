//! The pattern-cluster hierarchy produced by profiling (Figure 6 of the
//! paper): leaves are the patterns discovered through tokenization and every
//! internal node is a parent (more generic) pattern.

use std::collections::HashMap;

use clx_pattern::Pattern;

/// Identifier of a node within a [`PatternHierarchy`].
pub type NodeId = usize;

/// One pattern cluster in the hierarchy.
#[derive(Debug, Clone)]
pub struct ClusterNode {
    /// This node's id.
    pub id: NodeId,
    /// The pattern labelling the cluster.
    pub pattern: Pattern,
    /// Hierarchy level: 0 for leaves, increasing towards more generic
    /// patterns.
    pub level: usize,
    /// Children (more specific patterns) of this node; empty for leaves.
    pub children: Vec<NodeId>,
    /// Parent (more generic pattern), if any.
    pub parent: Option<NodeId>,
    /// Indices into the profiled data of the rows covered by this cluster.
    /// For internal nodes this is the union of the children's rows.
    pub rows: Vec<usize>,
    /// A few example raw values, for display purposes.
    pub examples: Vec<String>,
}

impl ClusterNode {
    /// `true` if this node is a leaf (level 0).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of rows covered by this cluster.
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// A hierarchical clustering of string data by pattern.
///
/// Level 0 holds the leaf clusters (one per distinct leaf pattern); each
/// higher level holds the covering parent patterns produced by one round of
/// agglomerative refinement. The hierarchy retains every pattern discovered
/// — nothing is lost by generalization (§4.2).
#[derive(Debug, Clone, Default)]
pub struct PatternHierarchy {
    nodes: Vec<ClusterNode>,
    levels: Vec<Vec<NodeId>>,
    total_rows: usize,
}

impl PatternHierarchy {
    /// Create an empty hierarchy (used by the profiler).
    pub(crate) fn new(total_rows: usize) -> Self {
        PatternHierarchy {
            nodes: Vec::new(),
            levels: Vec::new(),
            total_rows,
        }
    }

    /// Add a node; returns its id. `level` must be `levels.len() - 1` or
    /// `levels.len()` (nodes are added level by level).
    pub(crate) fn add_node(
        &mut self,
        pattern: Pattern,
        level: usize,
        children: Vec<NodeId>,
        rows: Vec<usize>,
        examples: Vec<String>,
    ) -> NodeId {
        let id = self.nodes.len();
        while self.levels.len() <= level {
            self.levels.push(Vec::new());
        }
        for &child in &children {
            self.nodes[child].parent = Some(id);
        }
        self.levels[level].push(id);
        self.nodes.push(ClusterNode {
            id,
            pattern,
            level,
            children,
            parent: None,
            rows,
            examples,
        });
        id
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &ClusterNode {
        &self.nodes[id]
    }

    /// All nodes, in insertion order (leaves first).
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// Number of levels (1 = leaves only).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The node ids at `level` (0 = leaves).
    pub fn level(&self, level: usize) -> &[NodeId] {
        self.levels.get(level).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The leaf nodes (level 0), most-populated cluster first.
    pub fn leaves(&self) -> Vec<&ClusterNode> {
        let mut leaves: Vec<&ClusterNode> = self.level(0).iter().map(|&id| self.node(id)).collect();
        leaves.sort_by(|a, b| b.size().cmp(&a.size()).then_with(|| a.id.cmp(&b.id)));
        leaves
    }

    /// The root nodes: the nodes of the top level. Together they cover every
    /// row of the profiled data.
    pub fn roots(&self) -> Vec<&ClusterNode> {
        match self.levels.last() {
            Some(top) => top.iter().map(|&id| self.node(id)).collect(),
            None => Vec::new(),
        }
    }

    /// Number of rows that were profiled.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// The leaf cluster containing data row `row`, if any.
    pub fn leaf_of_row(&self, row: usize) -> Option<&ClusterNode> {
        self.level(0)
            .iter()
            .map(|&id| self.node(id))
            .find(|n| n.rows.contains(&row))
    }

    /// Find the leaf cluster whose pattern equals `pattern`.
    pub fn find_leaf(&self, pattern: &Pattern) -> Option<&ClusterNode> {
        self.level(0)
            .iter()
            .map(|&id| self.node(id))
            .find(|n| &n.pattern == pattern)
    }

    /// Find any node (at any level) whose pattern equals `pattern`.
    pub fn find_pattern(&self, pattern: &Pattern) -> Option<&ClusterNode> {
        self.nodes.iter().find(|n| &n.pattern == pattern)
    }

    /// All distinct leaf patterns with their cluster sizes, largest first —
    /// the list CLX shows the user for labeling (Figure 3 of the paper).
    pub fn pattern_summary(&self) -> Vec<(Pattern, usize)> {
        self.leaves()
            .iter()
            .map(|n| (n.pattern.clone(), n.size()))
            .collect()
    }

    /// The descendants of `id` that are leaves (or `id` itself if it is one).
    pub fn leaf_descendants(&self, id: NodeId) -> Vec<NodeId> {
        let node = self.node(id);
        if node.is_leaf() {
            return vec![id];
        }
        let mut out = Vec::new();
        for &child in &node.children {
            out.extend(self.leaf_descendants(child));
        }
        out
    }

    /// Verify structural invariants; used by tests and debug assertions.
    ///
    /// * every row appears in exactly one leaf;
    /// * each internal node's rows are the union of its children's rows;
    /// * each internal node's pattern covers all of its children's patterns;
    /// * parent/child links are mutually consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut row_owner: HashMap<usize, NodeId> = HashMap::new();
        for &leaf in self.level(0) {
            for &row in &self.node(leaf).rows {
                if let Some(prev) = row_owner.insert(row, leaf) {
                    return Err(format!("row {row} is in two leaves: {prev} and {leaf}"));
                }
            }
        }
        if row_owner.len() != self.total_rows {
            return Err(format!(
                "leaves cover {} rows but {} were profiled",
                row_owner.len(),
                self.total_rows
            ));
        }
        for node in &self.nodes {
            for &child in &node.children {
                let child_node = self.node(child);
                if child_node.parent != Some(node.id) {
                    return Err(format!("child {child} does not point back to {}", node.id));
                }
                if !node.pattern.covers(&child_node.pattern) {
                    return Err(format!(
                        "node {} pattern {} does not cover child pattern {}",
                        node.id, node.pattern, child_node.pattern
                    ));
                }
            }
            if !node.is_leaf() {
                let mut union: Vec<usize> = node
                    .children
                    .iter()
                    .flat_map(|&c| self.node(c).rows.clone())
                    .collect();
                union.sort_unstable();
                let mut own = node.rows.clone();
                own.sort_unstable();
                if union != own {
                    return Err(format!(
                        "node {} rows are not the union of its children's rows",
                        node.id
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn tiny_hierarchy() -> PatternHierarchy {
        // two leaves under one root
        let mut h = PatternHierarchy::new(3);
        let l1 = h.add_node(
            tokenize("734-422-8073"),
            0,
            vec![],
            vec![0, 2],
            vec!["734-422-8073".into()],
        );
        let l2 = h.add_node(
            tokenize("73-42-80"),
            0,
            vec![],
            vec![1],
            vec!["73-42-80".into()],
        );
        let parent = clx_pattern::parse_pattern("<D>+'-'<D>+'-'<D>+").unwrap();
        h.add_node(
            parent,
            1,
            vec![l1, l2],
            vec![0, 1, 2],
            vec!["734-422-8073".into()],
        );
        h
    }

    #[test]
    fn basic_navigation() {
        let h = tiny_hierarchy();
        assert_eq!(h.level_count(), 2);
        assert_eq!(h.leaves().len(), 2);
        assert_eq!(h.roots().len(), 1);
        assert_eq!(h.total_rows(), 3);
        assert_eq!(h.node(0).parent, Some(2));
        assert!(h.node(2).children.contains(&0));
        assert!(h.node(0).is_leaf());
        assert!(!h.node(2).is_leaf());
    }

    #[test]
    fn leaves_sorted_by_size() {
        let h = tiny_hierarchy();
        let leaves = h.leaves();
        assert!(leaves[0].size() >= leaves[1].size());
        assert_eq!(leaves[0].size(), 2);
    }

    #[test]
    fn row_lookup() {
        let h = tiny_hierarchy();
        assert_eq!(h.leaf_of_row(1).unwrap().id, 1);
        assert_eq!(h.leaf_of_row(2).unwrap().id, 0);
        assert!(h.leaf_of_row(99).is_none());
    }

    #[test]
    fn pattern_lookup() {
        let h = tiny_hierarchy();
        let p = tokenize("73-42-80");
        assert_eq!(h.find_leaf(&p).unwrap().id, 1);
        assert!(h.find_leaf(&tokenize("xyz")).is_none());
        let root_pattern = clx_pattern::parse_pattern("<D>+'-'<D>+'-'<D>+").unwrap();
        assert!(h.find_pattern(&root_pattern).is_some());
        assert!(h.find_leaf(&root_pattern).is_none());
    }

    #[test]
    fn leaf_descendants() {
        let h = tiny_hierarchy();
        assert_eq!(h.leaf_descendants(2), vec![0, 1]);
        assert_eq!(h.leaf_descendants(0), vec![0]);
    }

    #[test]
    fn summary_lists_patterns_with_sizes() {
        let h = tiny_hierarchy();
        let summary = h.pattern_summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].1, 2);
        assert_eq!(summary[1].1, 1);
    }

    #[test]
    fn invariants_hold_for_tiny_hierarchy() {
        tiny_hierarchy().check_invariants().unwrap();
    }

    #[test]
    fn invariant_violation_is_detected() {
        let mut h = PatternHierarchy::new(2);
        // Row 0 appears in two leaves.
        h.add_node(tokenize("a"), 0, vec![], vec![0], vec![]);
        h.add_node(tokenize("1"), 0, vec![], vec![0, 1], vec![]);
        assert!(h.check_invariants().is_err());
    }

    #[test]
    fn empty_hierarchy() {
        let h = PatternHierarchy::new(0);
        assert_eq!(h.level_count(), 0);
        assert!(h.leaves().is_empty());
        assert!(h.roots().is_empty());
        assert!(h.check_invariants().is_ok());
    }
}
