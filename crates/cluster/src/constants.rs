//! Constant-token discovery (Section 4.1, "Find Constant Tokens").
//!
//! Some base tokens in a cluster always carry the same concrete value
//! ("Dr.", a fixed area code, a unit suffix). Representing them as literal
//! tokens instead of base tokens both improves user comprehension and lets
//! the synthesizer reproduce them with `ConstStr` operations. Following the
//! paper (which adopts the statistics-over-tokenized-strings approach of
//! LearnPADS), a token position is converted to a constant when the share
//! of rows agreeing on one value reaches a threshold.

use std::collections::HashMap;

use clx_pattern::{tokenize_detailed, Pattern, Token};

/// Options controlling constant discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantDiscoveryOptions {
    /// Minimum fraction of a cluster's rows that must share the same value
    /// at a token position for that position to become a literal token.
    ///
    /// The default of `1.0` only folds positions where *every* row agrees,
    /// which never changes which rows a cluster matches. Lower values are
    /// useful on noisy data but cause the non-conforming rows to be split
    /// into their own cluster by the profiler.
    pub dominance_threshold: f64,
    /// Do not fold base tokens longer than this many characters (guards
    /// against turning an entire free-text column into one huge literal).
    pub max_constant_len: usize,
    /// Minimum number of rows a cluster needs before constant discovery is
    /// attempted. With a single row every position is trivially "constant",
    /// which would freeze the whole value into one literal and defeat the
    /// synthesizer, so the default requires at least 2 rows.
    pub min_rows: usize,
    /// Whether digit tokens may be folded into constants. Digits almost
    /// always carry the semantic payload of a value (phone numbers, ids,
    /// quantities), and freezing them into literals can make otherwise
    /// transformable patterns untransformable, so the default is `false`;
    /// alphabetic prefixes such as `"Dr."` or `"CPT"` are still folded.
    pub fold_digit_tokens: bool,
}

impl Default for ConstantDiscoveryOptions {
    fn default() -> Self {
        ConstantDiscoveryOptions {
            dominance_threshold: 1.0,
            max_constant_len: 16,
            min_rows: 2,
            fold_digit_tokens: false,
        }
    }
}

/// Discover constant tokens within one cluster.
///
/// `pattern` is the cluster's leaf pattern and `rows` the raw strings of the
/// cluster (all matching `pattern`). Returns the refined pattern (with
/// constant positions folded to literal tokens and adjacent literals merged)
/// and the indices of the rows that conform to it. With the default
/// threshold of 1.0 all rows conform.
pub fn discover_constants(
    pattern: &Pattern,
    rows: &[&str],
    options: &ConstantDiscoveryOptions,
) -> (Pattern, Vec<usize>) {
    if rows.len() < options.min_rows.max(1) || pattern.is_empty() {
        return (pattern.clone(), (0..rows.len()).collect());
    }

    // Collect, per token position, the value frequencies across rows.
    let mut position_values: Vec<HashMap<String, usize>> = vec![HashMap::new(); pattern.len()];
    let mut row_slices: Vec<Vec<String>> = Vec::with_capacity(rows.len());
    for row in rows {
        let detail = tokenize_detailed(row);
        debug_assert_eq!(
            &detail.pattern, pattern,
            "all rows of a cluster share its leaf pattern"
        );
        let values: Vec<String> = detail.slices.iter().map(|s| s.text.clone()).collect();
        for (i, v) in values.iter().enumerate() {
            *position_values[i].entry(v.clone()).or_insert(0) += 1;
        }
        row_slices.push(values);
    }

    // Decide which base-token positions become constants.
    let n = rows.len() as f64;
    let mut constant_value: Vec<Option<String>> = vec![None; pattern.len()];
    for (i, token) in pattern.iter().enumerate() {
        if !token.is_base() {
            continue;
        }
        if token.class == clx_pattern::TokenClass::Digit && !options.fold_digit_tokens {
            continue;
        }
        let Some((value, count)) = position_values[i]
            .iter()
            .max_by_key(|(v, c)| (**c, std::cmp::Reverse((*v).clone())))
        else {
            continue;
        };
        if value.chars().count() <= options.max_constant_len
            && (*count as f64) / n >= options.dominance_threshold
        {
            constant_value[i] = Some(value.clone());
        }
    }

    if constant_value.iter().all(Option::is_none) {
        return (pattern.clone(), (0..rows.len()).collect());
    }

    // Build the refined pattern.
    let tokens: Vec<Token> = pattern
        .iter()
        .enumerate()
        .map(|(i, t)| match &constant_value[i] {
            Some(v) => Token::literal(v.clone()),
            None => t.clone(),
        })
        .collect();
    let refined = merge_adjacent_literals(&Pattern::new(tokens));

    // Rows conform when they carry the constant value at every folded position.
    let conforming: Vec<usize> = row_slices
        .iter()
        .enumerate()
        .filter(|(_, values)| {
            constant_value
                .iter()
                .enumerate()
                .all(|(i, cv)| cv.as_ref().map(|v| &values[i] == v).unwrap_or(true))
        })
        .map(|(i, _)| i)
        .collect();

    (refined, conforming)
}

/// Merge runs of adjacent literal tokens into a single literal token, so that
/// e.g. `'D' 'r' '.'` becomes `'Dr.'`.
fn merge_adjacent_literals(pattern: &Pattern) -> Pattern {
    let mut out: Vec<Token> = Vec::with_capacity(pattern.len());
    for tok in pattern.iter() {
        if let (Some(last), Some(v)) = (out.last_mut(), tok.literal_value()) {
            if let Some(prev) = last.literal_value() {
                *last = Token::literal(format!("{prev}{v}"));
                continue;
            }
        }
        out.push(tok.clone());
    }
    Pattern::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn opts() -> ConstantDiscoveryOptions {
        ConstantDiscoveryOptions::default()
    }

    #[test]
    fn all_agreeing_position_becomes_literal() {
        // Faculty names all prefixed with "Dr." (the paper's example).
        let rows = vec!["Dr. Eran Yahav", "Dr. Bill Gates", "Dr. Kurt Mehls"];
        let pattern = tokenize(rows[0]);
        assert_eq!(pattern, tokenize(rows[1]));
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        assert!(refined.to_string().starts_with("'Dr. '"));
        assert_eq!(conforming, vec![0, 1, 2]);
        // The name parts stay as base tokens.
        assert!(refined.to_string().contains("<U>"));
        assert!(refined.to_string().contains("<L>"));
    }

    #[test]
    fn differing_positions_stay_base_tokens() {
        let rows = vec!["734-422", "555-123"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        assert_eq!(refined, pattern);
        assert_eq!(conforming.len(), 2);
    }

    #[test]
    fn digit_tokens_are_not_folded_by_default() {
        // Even though every row shares the same area code, digit tokens keep
        // their base class so the values stay extractable.
        let rows = vec!["734-422-8073", "734-763-1147", "734-936-2447"];
        let pattern = tokenize(rows[0]);
        let (refined, _) = discover_constants(&pattern, &rows, &opts());
        assert_eq!(refined, pattern);
    }

    #[test]
    fn digit_folding_can_be_opted_into() {
        let rows = vec!["734-422-8073", "734-763-1147", "734-936-2447"];
        let pattern = tokenize(rows[0]);
        let options = ConstantDiscoveryOptions {
            fold_digit_tokens: true,
            ..opts()
        };
        let (refined, _) = discover_constants(&pattern, &rows, &options);
        assert_eq!(refined.to_string(), "'734-'<D>3'-'<D>4");
    }

    #[test]
    fn threshold_below_one_splits_nonconforming_rows() {
        let rows = vec!["CPT115", "CPT200", "CPT301", "XYZ999"];
        let pattern = tokenize(rows[0]);
        let options = ConstantDiscoveryOptions {
            dominance_threshold: 0.7,
            ..opts()
        };
        let (refined, conforming) = discover_constants(&pattern, &rows, &options);
        assert!(refined.to_string().starts_with("'CPT'"));
        assert_eq!(conforming, vec![0, 1, 2]);
    }

    #[test]
    fn default_threshold_never_splits() {
        let rows = vec!["CPT115", "CPT200", "XYZ999"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        assert_eq!(refined, pattern);
        assert_eq!(conforming.len(), 3);
    }

    #[test]
    fn long_values_are_not_folded() {
        let rows = vec!["abcdefghijklmnopqrstuvwxyz1", "abcdefghijklmnopqrstuvwxyz2"];
        let pattern = tokenize(rows[0]);
        let (refined, _) = discover_constants(&pattern, &rows, &opts());
        // The 26-character lowercase run exceeds max_constant_len (16).
        assert!(refined.to_string().contains("<L>26"));
    }

    #[test]
    fn single_row_cluster_is_left_untouched() {
        let rows = vec!["USD 100"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        // Below min_rows: no folding, otherwise the whole value would freeze
        // into one literal.
        assert_eq!(refined, pattern);
        assert_eq!(conforming, vec![0]);
    }

    #[test]
    fn min_rows_of_one_allows_single_row_folding() {
        let rows = vec!["USD 100"];
        let pattern = tokenize(rows[0]);
        let options = ConstantDiscoveryOptions {
            min_rows: 1,
            ..opts()
        };
        let (refined, conforming) = discover_constants(&pattern, &rows, &options);
        // The alphabetic prefix folds; the digits stay extractable.
        assert_eq!(refined.to_string(), "'USD '<D>3");
        assert_eq!(conforming, vec![0]);
    }

    #[test]
    fn empty_rows_are_handled() {
        let pattern = tokenize("abc");
        let (refined, conforming) = discover_constants(&pattern, &[], &opts());
        assert_eq!(refined, pattern);
        assert!(conforming.is_empty());
    }

    #[test]
    fn refined_pattern_still_matches_conforming_rows() {
        let rows = vec!["[CPT-00350", "[CPT-00340", "[CPT-11536"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        for &i in &conforming {
            assert!(
                refined.matches(rows[i]),
                "refined pattern {refined} must match {}",
                rows[i]
            );
        }
    }
}
