//! Constant-token discovery (Section 4.1, "Find Constant Tokens").
//!
//! Some base tokens in a cluster always carry the same concrete value
//! ("Dr.", a fixed area code, a unit suffix). Representing them as literal
//! tokens instead of base tokens both improves user comprehension and lets
//! the synthesizer reproduce them with `ConstStr` operations. Following the
//! paper (which adopts the statistics-over-tokenized-strings approach of
//! LearnPADS), a token position is converted to a constant when the share
//! of values agreeing on one concrete string reaches a threshold.
//!
//! The statistics are computed over the *distinct* values of a cluster, not
//! its raw rows: a value repeated a thousand times contributes one
//! observation, exactly like a value occurring once. Row-weighted counting
//! let duplicates manufacture "constants" — a cluster holding one value N
//! times agreed at every position, froze into a single giant literal, and
//! became unsynthesizable (every row flagged). The distinct-value weighting
//! restores the intent of the guard that already existed for single-row
//! clusters: support below [`ConstantDiscoveryOptions::min_distinct_values`] distinct
//! values is no evidence of constancy at all.

use std::collections::HashMap;

use clx_pattern::{tokenize_detailed, Pattern, Token, TokenizedString};

/// Options controlling constant discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantDiscoveryOptions {
    /// Minimum fraction of a cluster's *distinct* values that must share
    /// the same concrete string at a token position for that position to
    /// become a literal token.
    ///
    /// The default of `1.0` only folds positions where *every* value
    /// agrees, which never changes which rows a cluster matches. Lower
    /// values are useful on noisy data but cause the non-conforming rows to
    /// be split into their own cluster by the profiler.
    pub dominance_threshold: f64,
    /// Do not fold base tokens longer than this many characters (guards
    /// against turning an entire free-text column into one huge literal).
    pub max_constant_len: usize,
    /// Minimum number of *distinct* values a cluster needs before constant
    /// discovery is attempted. With a single distinct value every position
    /// is trivially "constant" — no matter how many rows repeat it — which
    /// would freeze the whole value into one literal and defeat the
    /// synthesizer, so the default requires at least 2 distinct values.
    pub min_distinct_values: usize,
    /// Whether digit tokens may be folded into constants. Digits almost
    /// always carry the semantic payload of a value (phone numbers, ids,
    /// quantities), and freezing them into literals can make otherwise
    /// transformable patterns untransformable, so the default is `false`;
    /// alphabetic prefixes such as `"Dr."` or `"CPT"` are still folded.
    pub fold_digit_tokens: bool,
    /// Weight the dominance statistics by *row* multiplicity instead of
    /// counting each distinct value once.
    ///
    /// The default (`false`) counts distinct values, which is what makes a
    /// value repeated N times no evidence of constancy (the
    /// duplicated-values quirk — see the module docs). On noisy columns
    /// where frequency *is* signal — a dominant well-formed value drowning
    /// out rare typos — row weighting combined with a
    /// [`ConstantDiscoveryOptions::dominance_threshold`] below `1.0` lets
    /// the frequent spelling win the position. The
    /// [`ConstantDiscoveryOptions::min_distinct_values`] guard still counts
    /// *distinct* values in either mode, so a single repeated value never
    /// freezes into one literal.
    pub row_weighted: bool,
}

impl Default for ConstantDiscoveryOptions {
    fn default() -> Self {
        ConstantDiscoveryOptions {
            dominance_threshold: 1.0,
            max_constant_len: 16,
            min_distinct_values: 2,
            fold_digit_tokens: false,
            row_weighted: false,
        }
    }
}

/// Discover constant tokens within one cluster, reading raw strings.
///
/// `pattern` is the cluster's leaf pattern and `values` the **distinct**
/// values of the cluster (all matching `pattern`). Returns the refined
/// pattern (with constant positions folded to literal tokens and adjacent
/// literals merged) and the indices into `values` of the values that
/// conform to it. With the default threshold of 1.0 all values conform.
///
/// This entry point tokenizes each value; the profiler's column path calls
/// [`discover_constants_cached`] with the token streams the
/// [`clx_column::Column`] already carries, so nothing is tokenized twice.
pub fn discover_constants(
    pattern: &Pattern,
    values: &[&str],
    options: &ConstantDiscoveryOptions,
) -> (Pattern, Vec<usize>) {
    let tokenized: Vec<TokenizedString> = values.iter().map(|v| tokenize_detailed(v)).collect();
    let streams: Vec<&TokenizedString> = tokenized.iter().collect();
    discover_constants_cached(pattern, &streams, options)
}

/// [`discover_constants`] over pre-tokenized value streams (the cached
/// per-distinct-value tokenizations of a [`clx_column::Column`]).
pub fn discover_constants_cached(
    pattern: &Pattern,
    values: &[&TokenizedString],
    options: &ConstantDiscoveryOptions,
) -> (Pattern, Vec<usize>) {
    discover_constants_weighted(pattern, values, None, options)
}

/// [`discover_constants_cached`] with per-value row multiplicities.
///
/// `multiplicities[i]` is the number of rows holding `values[i]`. It only
/// influences the statistics when
/// [`ConstantDiscoveryOptions::row_weighted`] is set; the default
/// distinct-value weighting ignores it. Passing `None` means "each value
/// once" in either mode.
pub fn discover_constants_weighted(
    pattern: &Pattern,
    values: &[&TokenizedString],
    multiplicities: Option<&[usize]>,
    options: &ConstantDiscoveryOptions,
) -> (Pattern, Vec<usize>) {
    if let Some(m) = multiplicities {
        assert_eq!(m.len(), values.len(), "one multiplicity per value");
    }
    // The support guard counts *distinct* values in both modes: repeats of
    // one value are never evidence of constancy (see module docs).
    if values.len() < options.min_distinct_values.max(1) || pattern.is_empty() {
        return (pattern.clone(), (0..values.len()).collect());
    }
    let weight_of = |i: usize| -> usize {
        if options.row_weighted {
            multiplicities.map_or(1, |m| m[i])
        } else {
            1
        }
    };

    // Collect, per token position, the slice-text frequencies across the
    // values — each counted once (distinct-weighted, the default) or once
    // per duplicate row (`row_weighted`).
    let mut position_values: Vec<HashMap<&str, usize>> = vec![HashMap::new(); pattern.len()];
    let mut total_weight = 0usize;
    for (i, value) in values.iter().enumerate() {
        debug_assert_eq!(
            &value.pattern, pattern,
            "all values of a cluster share its leaf pattern"
        );
        let weight = weight_of(i);
        total_weight += weight;
        for slice in &value.slices {
            *position_values[slice.token_index]
                .entry(slice.text.as_str())
                .or_insert(0) += weight;
        }
    }

    // Decide which base-token positions become constants.
    let n = total_weight as f64;
    let mut constant_value: Vec<Option<&str>> = vec![None; pattern.len()];
    for (i, token) in pattern.iter().enumerate() {
        if !token.is_base() {
            continue;
        }
        if token.class == clx_pattern::TokenClass::Digit && !options.fold_digit_tokens {
            continue;
        }
        let Some((value, count)) = position_values[i]
            .iter()
            .max_by_key(|&(v, c)| (*c, std::cmp::Reverse(*v)))
        else {
            continue;
        };
        if value.chars().count() <= options.max_constant_len
            && (*count as f64) / n >= options.dominance_threshold
        {
            constant_value[i] = Some(*value);
        }
    }

    if constant_value.iter().all(Option::is_none) {
        return (pattern.clone(), (0..values.len()).collect());
    }

    // Build the refined pattern.
    let tokens: Vec<Token> = pattern
        .iter()
        .enumerate()
        .map(|(i, t)| match &constant_value[i] {
            Some(v) => Token::literal(v.to_string()),
            None => t.clone(),
        })
        .collect();
    let refined = merge_adjacent_literals(&Pattern::new(tokens));

    // Values conform when they carry the constant at every folded position.
    let conforming: Vec<usize> = values
        .iter()
        .enumerate()
        .filter(|(_, value)| {
            value.slices.iter().all(|slice| {
                constant_value[slice.token_index]
                    .map(|v| slice.text == v)
                    .unwrap_or(true)
            })
        })
        .map(|(i, _)| i)
        .collect();

    (refined, conforming)
}

/// Merge runs of adjacent literal tokens into a single literal token, so that
/// e.g. `'D' 'r' '.'` becomes `'Dr.'`.
fn merge_adjacent_literals(pattern: &Pattern) -> Pattern {
    let mut out: Vec<Token> = Vec::with_capacity(pattern.len());
    for tok in pattern.iter() {
        if let (Some(last), Some(v)) = (out.last_mut(), tok.literal_value()) {
            if let Some(prev) = last.literal_value() {
                *last = Token::literal(format!("{prev}{v}"));
                continue;
            }
        }
        out.push(tok.clone());
    }
    Pattern::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn opts() -> ConstantDiscoveryOptions {
        ConstantDiscoveryOptions::default()
    }

    #[test]
    fn all_agreeing_position_becomes_literal() {
        // Faculty names all prefixed with "Dr." (the paper's example).
        let rows = vec!["Dr. Eran Yahav", "Dr. Bill Gates", "Dr. Kurt Mehls"];
        let pattern = tokenize(rows[0]);
        assert_eq!(pattern, tokenize(rows[1]));
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        assert!(refined.to_string().starts_with("'Dr. '"));
        assert_eq!(conforming, vec![0, 1, 2]);
        // The name parts stay as base tokens.
        assert!(refined.to_string().contains("<U>"));
        assert!(refined.to_string().contains("<L>"));
    }

    #[test]
    fn differing_positions_stay_base_tokens() {
        let rows = vec!["734-422", "555-123"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        assert_eq!(refined, pattern);
        assert_eq!(conforming.len(), 2);
    }

    #[test]
    fn digit_tokens_are_not_folded_by_default() {
        // Even though every row shares the same area code, digit tokens keep
        // their base class so the values stay extractable.
        let rows = vec!["734-422-8073", "734-763-1147", "734-936-2447"];
        let pattern = tokenize(rows[0]);
        let (refined, _) = discover_constants(&pattern, &rows, &opts());
        assert_eq!(refined, pattern);
    }

    #[test]
    fn digit_folding_can_be_opted_into() {
        let rows = vec!["734-422-8073", "734-763-1147", "734-936-2447"];
        let pattern = tokenize(rows[0]);
        let options = ConstantDiscoveryOptions {
            fold_digit_tokens: true,
            ..opts()
        };
        let (refined, _) = discover_constants(&pattern, &rows, &options);
        assert_eq!(refined.to_string(), "'734-'<D>3'-'<D>4");
    }

    #[test]
    fn threshold_below_one_splits_nonconforming_rows() {
        let rows = vec!["CPT115", "CPT200", "CPT301", "XYZ999"];
        let pattern = tokenize(rows[0]);
        let options = ConstantDiscoveryOptions {
            dominance_threshold: 0.7,
            ..opts()
        };
        let (refined, conforming) = discover_constants(&pattern, &rows, &options);
        assert!(refined.to_string().starts_with("'CPT'"));
        assert_eq!(conforming, vec![0, 1, 2]);
    }

    #[test]
    fn default_threshold_never_splits() {
        let rows = vec!["CPT115", "CPT200", "XYZ999"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        assert_eq!(refined, pattern);
        assert_eq!(conforming.len(), 3);
    }

    #[test]
    fn long_values_are_not_folded() {
        let rows = vec!["abcdefghijklmnopqrstuvwxyz1", "abcdefghijklmnopqrstuvwxyz2"];
        let pattern = tokenize(rows[0]);
        let (refined, _) = discover_constants(&pattern, &rows, &opts());
        // The 26-character lowercase run exceeds max_constant_len (16).
        assert!(refined.to_string().contains("<L>26"));
    }

    #[test]
    fn single_row_cluster_is_left_untouched() {
        let rows = vec!["USD 100"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        // Below min_distinct_values: no folding, otherwise the whole value would freeze
        // into one literal.
        assert_eq!(refined, pattern);
        assert_eq!(conforming, vec![0]);
    }

    #[test]
    fn min_distinct_values_of_one_allows_single_value_folding() {
        let rows = vec!["USD 100"];
        let pattern = tokenize(rows[0]);
        let options = ConstantDiscoveryOptions {
            min_distinct_values: 1,
            ..opts()
        };
        let (refined, conforming) = discover_constants(&pattern, &rows, &options);
        // The alphabetic prefix folds; the digits stay extractable.
        assert_eq!(refined.to_string(), "'USD '<D>3");
        assert_eq!(conforming, vec![0]);
    }

    /// One tokenized stream per distinct value, for the weighted entry point.
    fn streams(values: &[&str]) -> Vec<TokenizedString> {
        values.iter().map(|v| tokenize_detailed(v)).collect()
    }

    #[test]
    fn row_weighting_pairs_against_the_distinct_weighted_default() {
        // Noise scenario: two well-formed spellings heavily repeated, one
        // rare typo. Distinct-weighted statistics see 2-of-3 values agree on
        // "CPT" (0.67 < 0.8: no fold); row-weighted statistics see 18-of-19
        // rows agree (0.95 >= 0.8: fold) — on this column, frequency *is*
        // the signal that "CPT" is the intended constant.
        let values = streams(&["CPT115", "CPT200", "XYZ999"]);
        let refs: Vec<&TokenizedString> = values.iter().collect();
        let multiplicities = [10usize, 8, 1];
        let pattern = tokenize("CPT115");

        let distinct_weighted = ConstantDiscoveryOptions {
            dominance_threshold: 0.8,
            ..opts()
        };
        let (refined, conforming) =
            discover_constants_weighted(&pattern, &refs, Some(&multiplicities), &distinct_weighted);
        assert_eq!(refined, pattern, "distinct-weighted: no fold at 2/3");
        assert_eq!(conforming.len(), 3);

        let row_weighted = ConstantDiscoveryOptions {
            dominance_threshold: 0.8,
            row_weighted: true,
            ..opts()
        };
        let (refined, conforming) =
            discover_constants_weighted(&pattern, &refs, Some(&multiplicities), &row_weighted);
        assert!(
            refined.to_string().starts_with("'CPT'"),
            "row-weighted: the frequent prefix folds, got {refined}"
        );
        // The rare spelling no longer conforms and is split off.
        assert_eq!(conforming, vec![0, 1]);
    }

    #[test]
    fn row_weighting_still_guards_single_distinct_values() {
        // The duplicated-values quirk must not return through the back
        // door: one value repeated N times stays unfolded even when the
        // statistics are row-weighted, because the support guard counts
        // distinct values.
        let values = streams(&["Dr. Eran Yahav"]);
        let refs: Vec<&TokenizedString> = values.iter().collect();
        let pattern = tokenize("Dr. Eran Yahav");
        let options = ConstantDiscoveryOptions {
            row_weighted: true,
            ..opts()
        };
        let (refined, conforming) =
            discover_constants_weighted(&pattern, &refs, Some(&[1_000]), &options);
        assert_eq!(refined, pattern);
        assert_eq!(conforming, vec![0]);
    }

    #[test]
    fn row_weighting_without_multiplicities_equals_the_default() {
        let values = streams(&["CPT115", "CPT200", "XYZ999"]);
        let refs: Vec<&TokenizedString> = values.iter().collect();
        let pattern = tokenize("CPT115");
        let options = ConstantDiscoveryOptions {
            dominance_threshold: 0.6,
            row_weighted: true,
            ..opts()
        };
        let weighted = discover_constants_weighted(&pattern, &refs, None, &options);
        let default = discover_constants_cached(
            &pattern,
            &refs,
            &ConstantDiscoveryOptions {
                dominance_threshold: 0.6,
                ..opts()
            },
        );
        assert_eq!(weighted, default);
    }

    #[test]
    fn empty_rows_are_handled() {
        let pattern = tokenize("abc");
        let (refined, conforming) = discover_constants(&pattern, &[], &opts());
        assert_eq!(refined, pattern);
        assert!(conforming.is_empty());
    }

    #[test]
    fn refined_pattern_still_matches_conforming_rows() {
        let rows = vec!["[CPT-00350", "[CPT-00340", "[CPT-11536"];
        let pattern = tokenize(rows[0]);
        let (refined, conforming) = discover_constants(&pattern, &rows, &opts());
        for &i in &conforming {
            assert!(
                refined.matches(rows[i]),
                "refined pattern {refined} must match {}",
                rows[i]
            );
        }
    }
}
