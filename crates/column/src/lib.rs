//! # clx-column
//!
//! The shared column data plane of CLX: one representation of a column of
//! string data that every layer of the stack — profiling (`clx-cluster`),
//! synthesis (`clx-synth`), the interactive session (`clx-core`) and the
//! batch engine (`clx-engine`) — reads instead of re-deriving its own.
//!
//! The plane is built from three pieces:
//!
//! * [`ColumnInterner`] — the persistent heart of the crate: an arena, a
//!   dedup map and a token-stream cache that hand out **dense integer ids**.
//!   Every distinct value gets a *distinct-id* (its index in the interner)
//!   and every distinct leaf pattern gets a *leaf-id*; both id spaces are
//!   append-only, so ids stay stable as more data streams in.
//! * [`Column`] — a finished column: the interner's distinct values plus a
//!   row→distinct map. Construction tokenizes each *distinct* value exactly
//!   once; [`ColumnBuilder`] shards that work across threads for multi-core
//!   construction of very large columns (row-for-row identical output).
//! * [`ColumnChunk`] — one streamed slice of a column, interned through a
//!   shared [`ColumnInterner`] so its distinct-ids are **stable across
//!   chunks**: a value seen in chunk 0 keeps its id in chunk 9, which is
//!   what lets a streaming executor decide every distinct value once per
//!   stream instead of once per chunk.
//!
//! Everything downstream then works in O(distinct) instead of O(rows):
//! the profiler clusters distinct values and fans counts back out to row
//! indices, synthesis validates plans against cached token streams, and the
//! engine dispatches on cached leaf signatures — by integer leaf-id, an
//! array index — without ever re-tokenizing.
//!
//! ```
//! use clx_column::Column;
//!
//! let column = Column::from_rows(vec![
//!     "734-422-8073".to_string(),
//!     "N/A".to_string(),
//!     "734-422-8073".to_string(),
//! ]);
//! assert_eq!(column.len(), 3);
//! assert_eq!(column.distinct_count(), 2);
//!
//! let first = column.distinct(0);
//! assert_eq!(first.text(), "734-422-8073");
//! assert_eq!(first.multiplicity(), 2);
//! assert_eq!(first.leaf().to_string(), "<D>3'-'<D>3'-'<D>4");
//! assert_eq!(column.row(2), "734-422-8073");
//! ```
//!
//! Streaming ingest through the persistent interner:
//!
//! ```
//! use clx_column::ColumnInterner;
//!
//! let mut interner = ColumnInterner::new();
//! let a = interner.chunk(&["x-1", "y-2", "x-1"]);
//! assert_eq!(a.distinct_count(), 2);
//! assert_eq!(a.distinct_ids(), &[0, 1]);
//! drop(a);
//! // The same value in a later chunk keeps its id — and "z-3" extends the
//! // id space instead of restarting it.
//! let b = interner.chunk(&["z-3", "x-1"]);
//! assert_eq!(b.distinct_ids(), &[2, 0]);
//! // All three values share one leaf pattern, so one leaf-id.
//! assert_eq!(interner.leaf_count(), 1);
//! ```
//!
//! # Bounded streams for untrusted input
//!
//! A persistent interner is O(distinct): an adversarial, high-cardinality
//! stream (every row a new value) grows it without bound. For untrusted
//! input, construct the interner with a [`StreamBudget`]:
//!
//! ```
//! use clx_column::{ColumnInterner, StreamBudget};
//!
//! let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(2));
//! let a = interner.chunk(&["a-1", "b-2", "c-3"]); // over budget, but pinned
//! assert_eq!(a.distinct_count(), 3);
//! drop(a);
//! // The next chunk boundary evicts the coldest values down to the budget.
//! let b = interner.chunk(&["d-4"]);
//! drop(b);
//! assert!(interner.live_distinct_count() <= 3);
//! assert!(interner.evictions() > 0);
//! ```
//!
//! Eviction recycles distinct-id slots, so two invariants the unbounded
//! interner offers ("ids are append-only" and "a leaf-id always names the
//! same leaf") are replaced by explicit **versioning**: every eviction
//! batch bumps the interner's [`generation`](ColumnInterner::generation),
//! and every recycled slot bumps its own
//! [`distinct_generation`](ColumnInterner::distinct_generation). Consumers
//! caching per distinct-id or per leaf-id key their entries on those
//! counters and can never be served a stale decision under a reused id.
//! Budgets are enforced at **chunk boundaries** ([`ColumnInterner::chunk`]
//! runs [`ColumnInterner::enforce_budget`] before interning, and a live
//! [`ColumnChunk`] borrow keeps the interner immutable), so a chunk's own
//! rows are always resolvable while its report is built: peak memory is
//! bounded by the budget plus one chunk's distinct values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::mem::{size_of, size_of_val};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clx_pattern::{tokenize_detailed, Pattern, TokenSlice, TokenizedString};
use clx_telemetry::{MetricSink, Span};

/// Source of process-unique [`ColumnInterner::instance`] ids (also used for
/// columns built without an explicit interner, which own a fresh id space).
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);

fn next_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

/// How a bounded [`ColumnInterner`] reacts when a stream exceeds its
/// [`StreamBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Evict the coldest (least-recently-interned) distinct values at the
    /// next chunk boundary, recycling their id slots. Evicted values are
    /// transparently re-interned if they reappear (under a fresh slot
    /// generation). The default.
    #[default]
    Evict,
    /// Never evict. The interner itself only *reports* the condition via
    /// [`ColumnInterner::over_budget`] — by itself it keeps interning
    /// whatever it is handed, because degrading needs a per-row execution
    /// path the interner does not have. Enforcement is the chunk
    /// producer's job: `clx-engine`'s `ColumnStream` checks
    /// `over_budget()` after each chunk, stops interning, and degrades to
    /// the per-row `&[String]` path. Callers driving a `Fallback` interner
    /// by hand must do the same, or the budget is inert.
    Fallback,
}

/// A memory budget for streaming ingest over untrusted input.
///
/// The default budget is unbounded — exactly the pre-budget behavior. A
/// bounded interner enforces the budget at chunk boundaries; see the
/// crate-level *bounded streams* docs for the versioning this implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamBudget {
    /// Maximum live distinct values retained between chunks.
    pub max_distinct: usize,
    /// Maximum bytes of live interned distinct-value text (the arena size)
    /// retained between chunks.
    pub max_arena_bytes: usize,
    /// What to do when the stream exceeds the budget.
    pub policy: BudgetPolicy,
}

impl Default for StreamBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl StreamBudget {
    /// No limits: the interner never evicts and never reports over-budget.
    pub fn unbounded() -> Self {
        StreamBudget {
            max_distinct: usize::MAX,
            max_arena_bytes: usize::MAX,
            policy: BudgetPolicy::Evict,
        }
    }

    /// A budget capping the live distinct-value count (arena unbounded).
    pub fn max_distinct(max_distinct: usize) -> Self {
        StreamBudget {
            max_distinct,
            ..Self::unbounded()
        }
    }

    /// Additionally cap the live interned text bytes.
    pub fn with_max_arena_bytes(mut self, max_arena_bytes: usize) -> Self {
        self.max_arena_bytes = max_arena_bytes;
        self
    }

    /// Select the [`BudgetPolicy::Fallback`] degradation policy.
    pub fn fallback(mut self) -> Self {
        self.policy = BudgetPolicy::Fallback;
        self
    }

    /// `true` when neither limit can ever bind.
    pub fn is_unbounded(&self) -> bool {
        self.max_distinct == usize::MAX && self.max_arena_bytes == usize::MAX
    }
}

/// One interned distinct value: its arena span, cached token stream and the
/// dense id of its leaf pattern.
#[derive(Debug, Clone)]
struct InternedEntry {
    /// Half-open byte span of the value inside the arena.
    span: (usize, usize),
    /// The cached token stream: leaf pattern plus per-token slices,
    /// computed exactly once per distinct value.
    tokenized: TokenizedString,
    /// Dense id of this value's leaf pattern (shared by every distinct
    /// value with the same leaf).
    leaf_id: u32,
    /// LRU clock reading of the last intern touching this value.
    last_touch: u64,
}

/// One distinct-id slot: its recycle generation plus the live entry, if any.
#[derive(Debug, Clone)]
struct Slot {
    /// Bumped every time the slot's entry is evicted, so a consumer cache
    /// keyed by `(id, generation)` can never alias two values.
    generation: u64,
    entry: Option<InternedEntry>,
}

/// One leaf-id slot: the leaf pattern plus how many live distinct values
/// carry it (the id is recycled when the count reaches zero).
#[derive(Debug, Clone)]
struct LeafSlot {
    pattern: Pattern,
    refs: u32,
}

/// Estimated heap bytes retained by one cached tokenization.
fn tokenized_footprint(t: &TokenizedString) -> usize {
    size_of::<TokenizedString>()
        + t.raw.len()
        + t.slices.len() * size_of::<TokenSlice>()
        + t.slices.iter().map(|s| s.text.len()).sum::<usize>()
        + size_of_val(t.pattern.tokens())
}

/// A persistent, reusable value interner: the arena + dedup map +
/// token-stream cache that used to live inside `Column::from_rows`,
/// extracted so it can outlive any single column.
///
/// The interner hands out two dense integer id spaces:
///
/// * **distinct-ids** — `intern` returns the index of the value in the
///   interner (a value seen before keeps its id), and
/// * **leaf-ids** — every distinct *leaf pattern* gets its own dense id;
///   distinct values sharing a leaf share a leaf-id, which is what lets an
///   executor's dispatch cache be a plain `Vec` indexed by leaf-id instead
///   of a `Pattern`-keyed hash map.
///
/// Both spaces are append-only: interning more values never renumbers
/// existing ids. [`ColumnInterner::chunk`] interns one streamed slice of
/// rows and returns a [`ColumnChunk`] whose ids are therefore stable across
/// every chunk of the stream. Each interner also carries a process-unique
/// [`instance`](ColumnInterner::instance) id so consumers caching by
/// distinct-id or leaf-id can detect when they are handed ids from a
/// different id space.
#[derive(Debug)]
pub struct ColumnInterner {
    instance: u64,
    /// Bumped once per eviction batch; consumers caching per *leaf-id* key
    /// their cache on `(instance, generation)`.
    generation: u64,
    /// The LRU clock: bumped on every intern (hit or miss).
    clock: u64,
    /// The memory budget enforced at chunk boundaries.
    budget: StreamBudget,
    /// All live distinct values, concatenated; [`InternedEntry::span`]
    /// slices it. Compacted after each eviction batch.
    arena: String,
    /// Distinct-id slots, in first-intern order; a value's distinct-id is
    /// its slot index. Evicted slots are recycled via `free`.
    entries: Vec<Slot>,
    /// Recycled distinct-id slots awaiting reuse.
    free: Vec<u32>,
    /// Dedup map: live value text -> distinct-id.
    seen: HashMap<String, u32>,
    /// Dedup map: live leaf pattern -> leaf-id.
    leaves: HashMap<Pattern, u32>,
    /// Leaf-id slots (pattern + live refcount); `None` when recycled.
    leaf_slots: Vec<Option<LeafSlot>>,
    /// Recycled leaf-id slots awaiting reuse.
    leaf_free: Vec<u32>,
    /// Live distinct values (slots minus tombstones).
    live: usize,
    /// Bytes of live interned text (equals `arena.len()` after compaction).
    live_bytes: usize,
    /// Estimated heap bytes of the live cached tokenizations.
    token_bytes: usize,
    /// Total distinct values evicted over the interner's lifetime.
    evicted: u64,
    /// Lifetime intern/eviction tallies (plain `u64`s bumped inline — the
    /// hot path never touches a sink).
    stats: InternerStats,
    /// Optional metrics destination, published at chunk boundaries only.
    telemetry: Option<Arc<dyn MetricSink>>,
    /// The tallies already published to the sink (delta basis).
    published: InternerStats,
    /// Recent eviction batches as `(generation after the batch, victim
    /// distinct-ids)`, bounded by [`EVICTION_LOG_BATCHES`] /
    /// [`EVICTION_LOG_IDS`]. The dirty list behind
    /// [`ColumnInterner::evicted_since`].
    eviction_log: VecDeque<(u64, Vec<u32>)>,
    /// The newest generation *not* covered by `eviction_log`: the log holds
    /// every batch with generation in `(log_floor, generation]`.
    log_floor: u64,
}

/// Max eviction batches retained in the dirty-list log.
const EVICTION_LOG_BATCHES: usize = 8;
/// Max total victim ids retained across all logged batches. A single batch
/// larger than this is not logged at all (the floor advances instead):
/// applying it incrementally would cost as much as a full cache walk anyway,
/// so consumers fall back without the log paying the memory.
const EVICTION_LOG_IDS: usize = 4096;

/// Lifetime counters of a [`ColumnInterner`], readable via
/// [`ColumnInterner::stats`] with or without a telemetry sink attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerStats {
    /// Interns that resolved to an already-live distinct value.
    pub intern_hits: u64,
    /// Interns that stored a new distinct value (tokenizing it).
    pub intern_misses: u64,
    /// Eviction batches run (boundaries at which the generation bumped).
    pub eviction_batches: u64,
    /// Distinct values evicted across all batches.
    pub evicted_values: u64,
}

impl Default for ColumnInterner {
    fn default() -> Self {
        Self::new()
    }
}

/// A clone owns a **fresh id space** (new instance id): the copy starts with
/// the same value→id mapping, but the two interners diverge independently
/// from then on, so sharing the original's instance id would let a consumer
/// cache (keyed by instance) alias one id to two different values. The
/// fresh id forces such consumers to re-decide, which is always sound.
impl Clone for ColumnInterner {
    fn clone(&self) -> Self {
        ColumnInterner {
            instance: next_instance(),
            generation: self.generation,
            clock: self.clock,
            budget: self.budget,
            arena: self.arena.clone(),
            entries: self.entries.clone(),
            free: self.free.clone(),
            seen: self.seen.clone(),
            leaves: self.leaves.clone(),
            leaf_slots: self.leaf_slots.clone(),
            leaf_free: self.leaf_free.clone(),
            live: self.live,
            live_bytes: self.live_bytes,
            token_bytes: self.token_bytes,
            evicted: self.evicted,
            stats: self.stats,
            telemetry: self.telemetry.clone(),
            published: self.published,
            eviction_log: self.eviction_log.clone(),
            log_floor: self.log_floor,
        }
    }
}

impl ColumnInterner {
    /// An empty interner with a fresh process-unique id space and no
    /// memory budget.
    pub fn new() -> Self {
        Self::with_budget(StreamBudget::unbounded())
    }

    /// An empty interner enforcing `budget` at every chunk boundary.
    pub fn with_budget(budget: StreamBudget) -> Self {
        ColumnInterner {
            instance: next_instance(),
            generation: 0,
            clock: 0,
            budget,
            arena: String::new(),
            entries: Vec::new(),
            free: Vec::new(),
            seen: HashMap::new(),
            leaves: HashMap::new(),
            leaf_slots: Vec::new(),
            leaf_free: Vec::new(),
            live: 0,
            live_bytes: 0,
            token_bytes: 0,
            evicted: 0,
            stats: InternerStats::default(),
            telemetry: None,
            published: InternerStats::default(),
            eviction_log: VecDeque::new(),
            log_floor: 0,
        }
    }

    /// Attach a telemetry sink. The hot intern path still only bumps plain
    /// `u64` tallies; the sink is touched once per
    /// [`ColumnInterner::chunk`] boundary, publishing the
    /// `column.interner.*` counter deltas and gauges.
    pub fn attach_telemetry(&mut self, sink: Arc<dyn MetricSink>) {
        self.telemetry = Some(sink);
    }

    /// Lifetime intern/eviction tallies — available with or without a
    /// telemetry sink attached.
    pub fn stats(&self) -> InternerStats {
        self.stats
    }

    /// The memory budget this interner enforces at chunk boundaries.
    pub fn budget(&self) -> &StreamBudget {
        &self.budget
    }

    /// The process-unique id of this interner's id space. Two interners
    /// never share an instance id, so a consumer caching per distinct-id or
    /// per leaf-id can key its cache validity on this value.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// Size of the distinct-id space: live values plus recycled (evicted)
    /// slots. Equal to the number of distinct values interned so far for an
    /// unbounded interner; see [`ColumnInterner::live_distinct_count`] for
    /// the live count.
    pub fn distinct_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of distinct values currently retained (excludes evicted
    /// slots). Never exceeds the budget's `max_distinct` at a chunk
    /// boundary, plus the current chunk's own distinct values while one is
    /// being interned.
    pub fn live_distinct_count(&self) -> usize {
        self.live
    }

    /// Number of live distinct leaf patterns (the leaf-id space size; never
    /// larger than [`ColumnInterner::live_distinct_count`]).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// `true` when no value is currently interned.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total bytes of live interned distinct-value text (the arena size
    /// after compaction).
    pub fn interned_bytes(&self) -> usize {
        self.live_bytes
    }

    /// The eviction-batch counter. Bumped once per batch; a consumer
    /// caching per *leaf-id* keys its cache on
    /// `(instance, generation)`, because an eviction batch may recycle
    /// leaf-ids. Always `0` for unbounded interners.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The recycle generation of distinct-id slot `id`. Bumped each time
    /// the slot's value is evicted, so a consumer caching per
    /// *distinct-id* can validate an entry with an integer comparison: a
    /// decision recorded at `(id, g)` is valid iff
    /// `distinct_generation(id) == g` — slot reuse can never replay it for
    /// a different value.
    pub fn distinct_generation(&self, id: u32) -> u64 {
        self.entries[id as usize].generation
    }

    /// `true` while distinct-id `id` holds a live (non-evicted) value.
    pub fn is_live(&self, id: u32) -> bool {
        self.entries
            .get(id as usize)
            .is_some_and(|s| s.entry.is_some())
    }

    /// Total distinct values evicted over the interner's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// Estimated heap bytes retained by the interner: arena text, cached
    /// tokenizations, slot tables and dedup maps (whose owned keys
    /// duplicate the live text). An estimate — allocator overhead and map
    /// table capacity are approximated — but it is monotone under
    /// interning and decreases when an eviction batch runs, which is what
    /// budget monitoring needs.
    pub fn memory_used(&self) -> usize {
        self.arena.capacity()
            + self.token_bytes
            + self.entries.capacity() * size_of::<Slot>()
            + self.free.capacity() * size_of::<u32>()
            + self.leaf_free.capacity() * size_of::<u32>()
            + self.leaf_slots.len() * size_of::<Option<LeafSlot>>()
            // `seen` owns one String key per live value (text duplicated).
            + self.live_bytes
            + self.seen.len() * size_of::<(String, u32)>()
            + self.leaves.len() * size_of::<(Pattern, u32)>()
            + self
                .eviction_log
                .iter()
                .map(|(_, ids)| ids.capacity() * size_of::<u32>())
                .sum::<usize>()
    }

    /// `true` when the live state exceeds the budget. Under
    /// [`BudgetPolicy::Evict`] the next chunk boundary clears this; under
    /// [`BudgetPolicy::Fallback`] it is the owning stream's signal to stop
    /// interning and degrade to a per-row path.
    pub fn over_budget(&self) -> bool {
        self.live > self.budget.max_distinct || self.live_bytes > self.budget.max_arena_bytes
    }

    /// The text of distinct value `id` (a slice of the arena).
    ///
    /// # Panics
    /// If `id` was not handed out by this interner, or was evicted.
    pub fn value(&self, id: u32) -> &str {
        let (start, end) = self.live_entry(id).span;
        &self.arena[start..end]
    }

    /// The cached tokenization of distinct value `id`.
    pub fn tokenized(&self, id: u32) -> &TokenizedString {
        &self.live_entry(id).tokenized
    }

    /// The cached leaf pattern of distinct value `id`.
    pub fn leaf(&self, id: u32) -> &Pattern {
        &self.live_entry(id).tokenized.pattern
    }

    /// The dense leaf-id of distinct value `id`'s leaf pattern.
    pub fn leaf_id(&self, id: u32) -> u32 {
        self.live_entry(id).leaf_id
    }

    /// The leaf pattern behind live leaf-id `leaf_id`, or `None` when the
    /// id is out of range or currently recycled (all its distinct values
    /// were evicted). The inverse of [`ColumnInterner::leaf_id`]'s id
    /// space; consumers holding per-leaf-id state (e.g. a dense dispatch
    /// tier) use this to ask pattern-level questions about a slot without
    /// tracking any value of their own.
    pub fn leaf_pattern(&self, leaf_id: u32) -> Option<&Pattern> {
        self.leaf_slots
            .get(leaf_id as usize)?
            .as_ref()
            .map(|slot| &slot.pattern)
    }

    fn live_entry(&self, id: u32) -> &InternedEntry {
        self.entries[id as usize]
            .entry
            .as_ref()
            .expect("distinct-id was evicted")
    }

    /// Intern one value, tokenizing it only on first sight. Returns the
    /// value's dense distinct-id, stable until (and unless) a budget
    /// eviction recycles it — see [`ColumnInterner::distinct_generation`].
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&id) = self.seen.get(value) {
            self.stats.intern_hits += 1;
            self.touch(id);
            return id;
        }
        let tokenized = tokenize_detailed(value);
        self.insert_new(value.to_string(), tokenized)
    }

    /// [`ColumnInterner::intern`] taking ownership, so a first-seen value's
    /// allocation is reused as the dedup key instead of being cloned.
    pub fn intern_owned(&mut self, value: String) -> u32 {
        if let Some(&id) = self.seen.get(value.as_str()) {
            self.stats.intern_hits += 1;
            self.touch(id);
            return id;
        }
        let tokenized = tokenize_detailed(&value);
        self.insert_new(value, tokenized)
    }

    /// Intern a value whose tokenization was already computed (the sharded
    /// builder tokenizes in worker threads and merges here). The prepared
    /// tokenization is dropped if the value is already interned.
    fn intern_prepared(&mut self, value: &str, tokenized: TokenizedString) -> u32 {
        if let Some(&id) = self.seen.get(value) {
            self.stats.intern_hits += 1;
            self.touch(id);
            return id;
        }
        self.insert_new(value.to_string(), tokenized)
    }

    /// Record an LRU touch on a live distinct value.
    fn touch(&mut self, id: u32) {
        self.clock += 1;
        self.entries[id as usize]
            .entry
            .as_mut()
            .expect("touched distinct-id must be live")
            .last_touch = self.clock;
    }

    /// Intern the leaf pattern, recycling a freed leaf-id slot if one is
    /// available, and count one live reference to it.
    fn intern_leaf(&mut self, pattern: &Pattern) -> u32 {
        if let Some(&l) = self.leaves.get(pattern) {
            self.leaf_slots[l as usize]
                .as_mut()
                .expect("mapped leaf-id must be live")
                .refs += 1;
            return l;
        }
        let slot = LeafSlot {
            pattern: pattern.clone(),
            refs: 1,
        };
        let l = match self.leaf_free.pop() {
            Some(l) => {
                self.leaf_slots[l as usize] = Some(slot);
                l
            }
            None => {
                assert!(
                    self.leaf_slots.len() < u32::MAX as usize,
                    "interner exceeds u32 leaf indexing"
                );
                self.leaf_slots.push(Some(slot));
                (self.leaf_slots.len() - 1) as u32
            }
        };
        self.leaves.insert(pattern.clone(), l);
        l
    }

    fn insert_new(&mut self, value: String, tokenized: TokenizedString) -> u32 {
        self.stats.intern_misses += 1;
        let leaf_id = self.intern_leaf(&tokenized.pattern);
        let start = self.arena.len();
        self.arena.push_str(&value);
        self.live += 1;
        self.live_bytes += value.len();
        self.token_bytes += tokenized_footprint(&tokenized);
        self.clock += 1;
        let entry = InternedEntry {
            span: (start, self.arena.len()),
            tokenized,
            leaf_id,
            last_touch: self.clock,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.entries[id as usize].entry = Some(entry);
                id
            }
            None => {
                assert!(
                    self.entries.len() < u32::MAX as usize,
                    "interner exceeds u32 distinct-value indexing"
                );
                self.entries.push(Slot {
                    generation: 0,
                    entry: Some(entry),
                });
                (self.entries.len() - 1) as u32
            }
        };
        self.seen.insert(value, id);
        id
    }

    /// Evict cold distinct values until the live state fits the budget,
    /// returning how many were evicted. A no-op for unbounded budgets, for
    /// [`BudgetPolicy::Fallback`] (which never evicts), and while within
    /// budget. Runs automatically at every [`ColumnInterner::chunk`]
    /// boundary; callers driving [`ColumnInterner::intern`] directly can
    /// invoke it at their own batch boundaries.
    ///
    /// Eviction order is coldest-first (least recently interned). Each
    /// batch bumps the evicted slots' recycle generations and the
    /// interner-wide [`generation`](ColumnInterner::generation), and
    /// compacts the arena so the freed text bytes are actually released.
    pub fn enforce_budget(&mut self) -> usize {
        if self.budget.policy != BudgetPolicy::Evict || !self.over_budget() {
            return 0;
        }
        // Coldest-first victim selection over the live slots via a
        // min-heap on `(last_touch, id)`: heapifying is O(live) and each
        // pop O(log live), so a batch costs O(live + evicted·log live)
        // instead of sorting the whole live set (O(live·log live)) when
        // only a few victims are needed. Pop order — coldest first, ties
        // by slot id — is exactly the order the former full sort evicted
        // in, so victim choice is byte-identical.
        let mut coldest: BinaryHeap<Reverse<(u64, u32)>> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.entry.as_ref().map(|e| Reverse((e.last_touch, i as u32))))
            .collect();
        let mut victims: Vec<u32> = Vec::new();
        while self.over_budget() {
            let Some(Reverse((_, id))) = coldest.pop() else {
                break;
            };
            self.evict_slot(id);
            victims.push(id);
        }
        let evicted = victims.len();
        if evicted > 0 {
            self.generation += 1;
            self.stats.eviction_batches += 1;
            self.stats.evicted_values += evicted as u64;
            self.compact_arena();
            self.record_eviction_batch(victims);
        }
        evicted
    }

    /// Append one eviction batch to the bounded dirty-list log, retiring
    /// old batches (and advancing `log_floor` past them) to stay within
    /// [`EVICTION_LOG_BATCHES`] / [`EVICTION_LOG_IDS`]. Must run after the
    /// batch's generation bump so the entry carries the post-batch
    /// generation.
    fn record_eviction_batch(&mut self, victims: Vec<u32>) {
        if victims.len() > EVICTION_LOG_IDS {
            self.eviction_log.clear();
            self.log_floor = self.generation;
            return;
        }
        self.eviction_log.push_back((self.generation, victims));
        let mut retained: usize = self.eviction_log.iter().map(|(_, v)| v.len()).sum();
        while self.eviction_log.len() > EVICTION_LOG_BATCHES || retained > EVICTION_LOG_IDS {
            let (generation, ids) = self
                .eviction_log
                .pop_front()
                .expect("log is non-empty while over its caps");
            retained -= ids.len();
            self.log_floor = generation;
        }
    }

    /// The distinct-ids evicted since `generation` (a value previously read
    /// from [`ColumnInterner::generation`]), oldest batch first. Repeats are
    /// possible — a recycled slot re-evicted later appears once per batch —
    /// so per-id invalidation must be idempotent. Returns `None` when the
    /// bounded log no longer reaches back that far (or `generation` is from
    /// the future, i.e. another interner); the consumer must then fall back
    /// to a full walk of its per-id cache. The contract: when this returns
    /// `Some`, every id whose slot was evicted or recycled after
    /// `generation` is yielded, so ids *not* yielded are guaranteed
    /// unchanged.
    pub fn evicted_since(&self, generation: u64) -> Option<impl Iterator<Item = u32> + '_> {
        if generation < self.log_floor || generation > self.generation {
            return None;
        }
        Some(
            self.eviction_log
                .iter()
                .filter(move |(batch, _)| *batch > generation)
                .flat_map(|(_, ids)| ids.iter().copied()),
        )
    }

    /// Evict one live slot: drop its entry and dedup key, release its leaf
    /// reference (recycling the leaf-id when it was the last), and queue
    /// the slot for reuse under a bumped generation.
    fn evict_slot(&mut self, id: u32) {
        let slot = &mut self.entries[id as usize];
        let entry = slot.entry.take().expect("evicting a live slot");
        slot.generation += 1;
        let (start, end) = entry.span;
        self.seen.remove(&self.arena[start..end]);
        self.live -= 1;
        self.live_bytes -= end - start;
        self.token_bytes -= tokenized_footprint(&entry.tokenized);
        let leaf = self.leaf_slots[entry.leaf_id as usize]
            .as_mut()
            .expect("evicted value's leaf must be live");
        leaf.refs -= 1;
        if leaf.refs == 0 {
            let pattern = self.leaf_slots[entry.leaf_id as usize]
                .take()
                .expect("leaf slot present")
                .pattern;
            self.leaves.remove(&pattern);
            self.leaf_free.push(entry.leaf_id);
        }
        self.free.push(id);
        self.evicted += 1;
    }

    /// Rebuild the arena from the live entries, updating their spans, so
    /// evicted text is released rather than stranded.
    fn compact_arena(&mut self) {
        let old = std::mem::take(&mut self.arena);
        let mut arena = String::with_capacity(self.live_bytes);
        for slot in &mut self.entries {
            if let Some(entry) = &mut slot.entry {
                let start = arena.len();
                arena.push_str(&old[entry.span.0..entry.span.1]);
                entry.span = (start, arena.len());
            }
        }
        self.arena = arena;
    }

    /// Intern one streamed slice of rows and return it as a [`ColumnChunk`].
    ///
    /// The chunk's distinct-ids come from this interner, so they are stable
    /// across every chunk of the stream: a value first seen three chunks ago
    /// resolves to the same id here, letting a streaming consumer reuse any
    /// per-id decision it already made.
    ///
    /// A bounded interner enforces its budget here, *before* interning the
    /// chunk: cold values from earlier chunks may be evicted, but every id
    /// this chunk resolves to stays live while the returned [`ColumnChunk`]
    /// exists (the chunk borrows the interner, so no eviction can run under
    /// it).
    pub fn chunk<S: AsRef<str>>(&mut self, rows: &[S]) -> ColumnChunk<'_> {
        assert!(
            rows.len() < u32::MAX as usize,
            "chunk exceeds u32 row indexing"
        );
        self.enforce_budget();
        let before = self.live_distinct_count();
        let mut distinct_ids: Vec<u32> = Vec::new();
        // Global distinct-id -> local (chunk) index, for ids in this chunk.
        let mut local_of: HashMap<u32, u32> = HashMap::new();
        let mut rows_local: Vec<u32> = Vec::with_capacity(rows.len());
        for row in rows {
            let id = self.intern(row.as_ref());
            let local = match local_of.get(&id) {
                Some(&l) => l,
                None => {
                    let l = distinct_ids.len() as u32;
                    distinct_ids.push(id);
                    local_of.insert(id, l);
                    l
                }
            };
            rows_local.push(local);
        }
        // No eviction can run while the chunk is being interned, so the
        // live count only grew: the delta is exactly the new interns.
        let newly_interned = self.live_distinct_count() - before;
        self.publish_metrics();
        ColumnChunk {
            interner: self,
            distinct_ids,
            rows_local,
            newly_interned,
        }
    }

    /// Publish the `column.interner.*` series: tally deltas since the last
    /// publication plus current-state gauges. One `Option` branch when no
    /// sink is attached.
    fn publish_metrics(&mut self) {
        let Some(sink) = &self.telemetry else {
            return;
        };
        let delta = InternerStats {
            intern_hits: self.stats.intern_hits - self.published.intern_hits,
            intern_misses: self.stats.intern_misses - self.published.intern_misses,
            eviction_batches: self.stats.eviction_batches - self.published.eviction_batches,
            evicted_values: self.stats.evicted_values - self.published.evicted_values,
        };
        self.published = self.stats;
        sink.counter("column.interner.intern_hits", delta.intern_hits);
        sink.counter("column.interner.intern_misses", delta.intern_misses);
        sink.counter("column.interner.eviction_batches", delta.eviction_batches);
        sink.counter("column.interner.evicted_values", delta.evicted_values);
        sink.gauge("column.interner.arena_bytes", self.live_bytes as u64);
        sink.gauge("column.interner.memory_bytes", self.memory_used() as u64);
        sink.gauge("column.interner.live_distinct", self.live as u64);
        sink.gauge("column.interner.leaf_count", self.leaves.len() as u64);
    }

    /// Consume the interner into a [`Column`]: `row_map[r]` names the
    /// distinct value (by distinct-id) held by row `r`. The column inherits
    /// the interner's id space (distinct order, leaf-ids and
    /// [`instance`](ColumnInterner::instance) id).
    ///
    /// # Panics
    ///
    /// Panics if a `row_map` entry is not an id handed out by this
    /// interner, or if the interner has ever evicted (a bounded interner
    /// that evicted no longer holds every row's value — it serves streams,
    /// not whole columns).
    pub fn into_column(self, row_map: Vec<u32>) -> Column {
        assert!(
            self.evicted == 0,
            "cannot consume an interner that has evicted distinct values into a Column"
        );
        let generation = self.generation;
        let mut values: Vec<DistinctEntry> = self
            .entries
            .into_iter()
            .map(|slot| {
                let e = slot
                    .entry
                    .expect("eviction-free interner has no tombstones");
                DistinctEntry {
                    span: e.span,
                    rows: Vec::new(),
                    tokenized: e.tokenized,
                    leaf_id: e.leaf_id,
                }
            })
            .collect();
        for (row_index, &value_index) in row_map.iter().enumerate() {
            assert!(
                (value_index as usize) < values.len(),
                "row map entry {value_index} out of bounds ({} distinct values)",
                values.len()
            );
            values[value_index as usize].rows.push(row_index as u32);
        }
        Column {
            arena: self.arena,
            values,
            rows: Arc::from(row_map),
            source: self.instance,
            source_generation: generation,
            leaf_count: self.leaves.len(),
        }
    }
}

/// One streamed slice of a column, interned through a shared
/// [`ColumnInterner`].
///
/// A chunk stores no strings of its own: every row is a dense distinct-id
/// into the interner, and the ids are stable across chunks of the same
/// stream. The chunk keeps two maps:
///
/// * [`distinct_ids`](ColumnChunk::distinct_ids) — the (global) ids
///   appearing in this chunk, in chunk-first-occurrence order, and
/// * [`row_map`](ColumnChunk::row_map) — row → index into `distinct_ids`,
///   which is exactly the shape a columnar chunk report needs.
#[derive(Debug)]
pub struct ColumnChunk<'a> {
    interner: &'a ColumnInterner,
    /// Interner distinct-ids appearing in this chunk, first-occurrence order.
    distinct_ids: Vec<u32>,
    /// Row index -> index into `distinct_ids`.
    rows_local: Vec<u32>,
    /// How many of `distinct_ids` were first interned by this chunk.
    newly_interned: usize,
}

impl<'a> ColumnChunk<'a> {
    /// The interner this chunk's ids live in.
    pub fn interner(&self) -> &'a ColumnInterner {
        self.interner
    }

    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.rows_local.len()
    }

    /// `true` when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows_local.is_empty()
    }

    /// Number of distinct values appearing in the chunk.
    pub fn distinct_count(&self) -> usize {
        self.distinct_ids.len()
    }

    /// Number of the chunk's distinct values that had never been interned
    /// before this chunk (the per-chunk growth of the stream's id space).
    pub fn newly_interned(&self) -> usize {
        self.newly_interned
    }

    /// The interner distinct-ids appearing in this chunk, in
    /// chunk-first-occurrence order.
    pub fn distinct_ids(&self) -> &[u32] {
        &self.distinct_ids
    }

    /// Row index -> index into [`ColumnChunk::distinct_ids`] (a *local*
    /// index, not the global id — ready to serve as a columnar report's
    /// row→outcome map).
    pub fn row_map(&self) -> &[u32] {
        &self.rows_local
    }

    /// The text of row `index`.
    pub fn row(&self, index: usize) -> &'a str {
        self.interner
            .value(self.distinct_ids[self.rows_local[index] as usize])
    }

    /// All rows of the chunk, in order (interned text).
    pub fn rows(&self) -> impl Iterator<Item = &'a str> + '_ {
        self.rows_local
            .iter()
            .map(move |&l| self.interner.value(self.distinct_ids[l as usize]))
    }
}

/// Minimum rows per shard before auto-sharding bothers spawning threads.
const AUTO_MIN_BLOCK: usize = 8_192;

/// Sharded, multi-threaded column construction.
///
/// `Column::from_rows` is sequential; for very large columns (10M+ rows)
/// the builder runs construction in parallel phases: contiguous row blocks
/// are deduplicated on worker threads, a cheap sequential merge assigns
/// global distinct-ids and the row map, and per-distinct tokenization (the
/// expensive part) is sharded across workers again — each distinct value
/// tokenized exactly once, no matter how many blocks contained it. The
/// merge processes blocks in row order and each block's distinct values in
/// block-first-occurrence order, so the output is **row-for-row identical**
/// to the sequential path: same distinct order (global first occurrence),
/// same row map, same leaf signatures, same leaf-id assignment.
///
/// ```
/// use clx_column::{Column, ColumnBuilder};
///
/// let rows: Vec<String> = (0..1000).map(|i| format!("{:03}", i % 7)).collect();
/// let sequential = Column::from_rows(rows.clone());
/// let sharded = ColumnBuilder::new().shards(4).build(rows);
/// assert_eq!(sequential.to_vec(), sharded.to_vec());
/// assert_eq!(sequential.distinct_count(), sharded.distinct_count());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ColumnBuilder {
    shards: usize,
    /// Optional metrics destination for per-phase build timings.
    telemetry: Option<Arc<dyn MetricSink>>,
}

/// One worker's dedup of a contiguous block of rows.
struct BlockDedup<'a> {
    /// Block-distinct values in block-first-occurrence order.
    entries: Vec<&'a str>,
    /// Block row index -> index into `entries`.
    rows_local: Vec<u32>,
}

fn dedup_block(block: &[String]) -> BlockDedup<'_> {
    let mut seen: HashMap<&str, u32> = HashMap::new();
    let mut entries: Vec<&str> = Vec::new();
    let mut rows_local: Vec<u32> = Vec::with_capacity(block.len());
    for row in block {
        let local = match seen.get(row.as_str()) {
            Some(&l) => l,
            None => {
                let l = entries.len() as u32;
                entries.push(row.as_str());
                seen.insert(row, l);
                l
            }
        };
        rows_local.push(local);
    }
    BlockDedup {
        entries,
        rows_local,
    }
}

impl ColumnBuilder {
    /// A builder with automatic shard selection (one shard per available
    /// CPU for large columns, sequential for small ones).
    pub fn new() -> Self {
        ColumnBuilder {
            shards: 0,
            telemetry: None,
        }
    }

    /// Set the number of shards explicitly; `0` restores automatic
    /// selection. Explicit shard counts are honored even for small inputs
    /// (clamped to the row count so every block is non-empty).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Attach a telemetry sink: each [`ColumnBuilder::build`] records the
    /// whole-build latency plus (on the sharded path) per-phase
    /// `column.builder.*_ns` histograms — dedup, merge, tokenize,
    /// assemble. Without a sink no clock is ever read.
    pub fn with_telemetry(mut self, sink: Arc<dyn MetricSink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    fn resolved_shards(&self, rows: usize) -> usize {
        if rows == 0 {
            return 1;
        }
        if self.shards > 0 {
            return self.shards.min(rows);
        }
        if rows < 2 * AUTO_MIN_BLOCK {
            return 1;
        }
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        cpus.min(rows / AUTO_MIN_BLOCK).max(1)
    }

    /// Build a [`Column`] from owned rows, sharding the interning and
    /// per-distinct tokenization across worker threads.
    pub fn build(&self, rows: Vec<String>) -> Column {
        assert!(
            rows.len() < u32::MAX as usize,
            "column exceeds u32 row indexing"
        );
        let shards = self.resolved_shards(rows.len());
        let _build_span = Span::start(self.telemetry.as_ref(), "column.builder.build_ns");
        if shards <= 1 {
            let mut interner = ColumnInterner::new();
            let mut row_map = Vec::with_capacity(rows.len());
            for row in rows {
                row_map.push(interner.intern_owned(row));
            }
            return interner.into_column(row_map);
        }

        // Phase 1 (parallel): per-block dedup. No tokenization yet — a
        // value spanning several blocks must only be tokenized once, and
        // which values those are is not known until the merge.
        let dedup_span = Span::start(self.telemetry.as_ref(), "column.builder.dedup_ns");
        let block_size = rows.len().div_ceil(shards);
        let blocks: Vec<&[String]> = rows.chunks(block_size).collect();
        let deduped: Vec<BlockDedup<'_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .iter()
                .map(|&block| scope.spawn(move || dedup_block(block)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("column shard worker panicked"))
                .collect()
        });
        drop(dedup_span);
        let merge_span = Span::start(self.telemetry.as_ref(), "column.builder.merge_ns");

        // Phase 2 (sequential, cheap — O(block distinct) hashing plus
        // O(rows) integer translation): merge blocks in row order. Each
        // block's entries are in block-first-occurrence order, so walking
        // them block by block reproduces the global first-occurrence order
        // exactly — and with it the sequential path's id assignment.
        let mut seen: HashMap<&str, u32> = HashMap::new();
        let mut distinct: Vec<&str> = Vec::new();
        let mut row_map: Vec<u32> = Vec::with_capacity(rows.len());
        for block in &deduped {
            let mut global: Vec<u32> = Vec::with_capacity(block.entries.len());
            for &text in &block.entries {
                let id = match seen.get(text) {
                    Some(&i) => i,
                    None => {
                        let i = distinct.len() as u32;
                        distinct.push(text);
                        seen.insert(text, i);
                        i
                    }
                };
                global.push(id);
            }
            row_map.extend(block.rows_local.iter().map(|&l| global[l as usize]));
        }
        drop(merge_span);

        // Phase 3 (parallel): per-distinct tokenization — each worker takes
        // a slice of the global distinct list, so every distinct value is
        // tokenized exactly once no matter how many blocks contained it.
        let tokenize_span = Span::start(self.telemetry.as_ref(), "column.builder.tokenize_ns");
        let tokenize_block = distinct.len().div_ceil(shards).max(1);
        let tokenized: Vec<TokenizedString> = std::thread::scope(|scope| {
            let handles: Vec<_> = distinct
                .chunks(tokenize_block)
                .map(|texts| {
                    scope.spawn(move || {
                        texts
                            .iter()
                            .map(|t| tokenize_detailed(t))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tokenize shard worker panicked"))
                .collect()
        });

        drop(tokenize_span);

        // Phase 4 (sequential, O(distinct)): assemble the interner in
        // global first-occurrence order with the prepared tokenizations.
        let _assemble_span = Span::start(self.telemetry.as_ref(), "column.builder.assemble_ns");
        let mut interner = ColumnInterner::new();
        for (text, tokenized) in distinct.iter().zip(tokenized) {
            interner.intern_prepared(text, tokenized);
        }
        interner.into_column(row_map)
    }
}

/// One distinct value's interned span, row list and cached analysis.
#[derive(Debug, Clone)]
struct DistinctEntry {
    /// Half-open byte span of the value inside the column arena.
    span: (usize, usize),
    /// Original row indices holding this value, in ascending order.
    rows: Vec<u32>,
    /// The cached token stream: leaf pattern plus per-token slices,
    /// computed exactly once per distinct value.
    tokenized: TokenizedString,
    /// Dense id of this value's leaf pattern within the column's id space.
    leaf_id: u32,
}

/// A column of string data with interned rows, deduplicated values and
/// per-distinct-value cached token streams.
///
/// Construction tokenizes each *distinct* value exactly once; every later
/// consumer (profiler, synthesizer, session, engine) reads the cached
/// [`TokenizedString`] instead of re-deriving it. Each distinct value also
/// carries the dense [`leaf_id`](DistinctValue::leaf_id) of its leaf
/// pattern, so executors can dispatch by array index
/// (see [`Column::interner_id`] for the id-space guard).
#[derive(Debug, Clone)]
pub struct Column {
    /// All distinct values, concatenated; [`DistinctEntry::span`] slices it.
    arena: String,
    /// Distinct values in first-occurrence order.
    values: Vec<DistinctEntry>,
    /// Row index -> index into `values`. Shared (`Arc`) so that columnar
    /// reports can reference the map without copying it per report.
    rows: Arc<[u32]>,
    /// The id space the distinct-ids / leaf-ids of this column belong to
    /// (the building interner's instance id).
    source: u64,
    /// The building interner's generation when the column was assembled
    /// (always `0` today: only eviction-free interners can become columns).
    source_generation: u64,
    /// Number of distinct leaf patterns (the size of the leaf-id space).
    leaf_count: usize,
}

impl Default for Column {
    fn default() -> Self {
        Column {
            arena: String::new(),
            values: Vec::new(),
            rows: Arc::from(Vec::new()),
            source: next_instance(),
            source_generation: 0,
            leaf_count: 0,
        }
    }
}

impl Column {
    /// Build a column from owned rows, interning and analyzing each
    /// distinct value once (sequentially; see [`ColumnBuilder`] for the
    /// sharded multi-core equivalent).
    pub fn from_rows(rows: Vec<String>) -> Self {
        assert!(
            rows.len() < u32::MAX as usize,
            "column exceeds u32 row indexing"
        );
        let mut interner = ColumnInterner::new();
        let mut row_map = Vec::with_capacity(rows.len());
        for row in rows {
            row_map.push(interner.intern_owned(row));
        }
        interner.into_column(row_map)
    }

    /// Build a column from already-distinct, already-tokenized values plus
    /// the row→distinct map, skipping tokenization entirely.
    ///
    /// `values[k]` is the `k`-th distinct value (with its precomputed
    /// [`TokenizedString`]), and `row_map[r]` names the distinct value held
    /// by row `r`. This is how `result_patterns` builds the *output* column
    /// of a transformation in O(distinct): transformed outputs derive their
    /// token streams from the labelled target's split, so nothing needs to
    /// be re-tokenized. The column owns a fresh id space (leaf-ids are
    /// assigned by deduplicating the given values' leaf patterns).
    ///
    /// # Panics
    ///
    /// Panics if a `row_map` entry is out of bounds, or if `row_map` is
    /// non-empty while `values` is empty.
    pub fn from_distinct(values: Vec<TokenizedString>, row_map: Vec<u32>) -> Self {
        let mut arena = String::new();
        let mut leaves: HashMap<Pattern, u32> = HashMap::new();
        let mut entries: Vec<DistinctEntry> = Vec::with_capacity(values.len());
        for tokenized in values {
            let leaf_id = match leaves.get(&tokenized.pattern) {
                Some(&l) => l,
                None => {
                    let l = leaves.len() as u32;
                    leaves.insert(tokenized.pattern.clone(), l);
                    l
                }
            };
            let start = arena.len();
            arena.push_str(&tokenized.raw);
            entries.push(DistinctEntry {
                span: (start, arena.len()),
                rows: Vec::new(),
                tokenized,
                leaf_id,
            });
        }
        for (row_index, &value_index) in row_map.iter().enumerate() {
            assert!(
                (value_index as usize) < entries.len(),
                "row map entry {value_index} out of bounds ({} distinct values)",
                entries.len()
            );
            entries[value_index as usize].rows.push(row_index as u32);
        }
        Column {
            arena,
            values: entries,
            rows: Arc::from(row_map),
            source: next_instance(),
            source_generation: 0,
            leaf_count: leaves.len(),
        }
    }

    /// Build a column from borrowed values.
    pub fn from_values<S: AsRef<str>>(values: &[S]) -> Self {
        Self::from_rows(values.iter().map(|v| v.as_ref().to_string()).collect())
    }

    /// Number of rows (including duplicates).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct values.
    pub fn distinct_count(&self) -> usize {
        self.values.len()
    }

    /// Number of distinct leaf patterns across the column's distinct values
    /// (the size of the column's leaf-id space).
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// The process-unique id of the id space this column's distinct-ids and
    /// leaf-ids belong to — the building [`ColumnInterner`]'s
    /// [`instance`](ColumnInterner::instance) id. A consumer caching per
    /// leaf-id (e.g. an executor's dense dispatch cache) keys cache validity
    /// on this value: columns from different interners never share ids.
    pub fn interner_id(&self) -> u64 {
        self.source
    }

    /// The building interner's eviction
    /// [`generation`](ColumnInterner::generation) at assembly time. Paired
    /// with [`Column::interner_id`] by consumers whose leaf-id caches must
    /// also survive *streaming* interners, where the generation moves on
    /// eviction; a column's generation is fixed (and currently always `0`,
    /// since only eviction-free interners can be consumed into columns).
    pub fn interner_generation(&self) -> u64 {
        self.source_generation
    }

    /// The raw string of row `index` (a slice of the arena).
    pub fn row(&self, index: usize) -> &str {
        self.distinct(self.rows[index] as usize).text()
    }

    /// All rows, in original order.
    pub fn iter(&self) -> RowIter<'_> {
        RowIter {
            column: self,
            inner: self.rows.iter(),
        }
    }

    /// Index (into the distinct-value table) of the value held by `row`.
    pub fn distinct_index_of(&self, row: usize) -> usize {
        self.rows[row] as usize
    }

    /// The shared row→distinct map: entry `r` is the index (into the
    /// distinct-value table) of the value held by row `r`.
    ///
    /// The map is reference-counted; cloning the returned `Arc` is O(1),
    /// which is how columnar transform reports reference a column's row
    /// structure without copying it.
    pub fn row_map(&self) -> &Arc<[u32]> {
        &self.rows
    }

    /// The distinct value at `index` (first-occurrence order).
    ///
    /// # Panics
    /// If `index >= self.distinct_count()`.
    pub fn distinct(&self, index: usize) -> DistinctValue<'_> {
        assert!(index < self.values.len(), "distinct index out of bounds");
        DistinctValue {
            column: self,
            index,
        }
    }

    /// All distinct values, in first-occurrence order.
    pub fn distinct_values(&self) -> impl Iterator<Item = DistinctValue<'_>> + '_ {
        (0..self.values.len()).map(|i| self.distinct(i))
    }

    /// The rows as owned strings, in original order (for interop with APIs
    /// that still take `&[String]`).
    pub fn to_vec(&self) -> Vec<String> {
        self.iter().map(str::to_string).collect()
    }

    /// Total bytes of interned distinct-value text (the arena size): the
    /// memory the dedup actually pays for string storage.
    pub fn interned_bytes(&self) -> usize {
        self.arena.len()
    }
}

/// Iterator over a column's rows (original order, interned text).
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    column: &'a Column,
    inner: std::slice::Iter<'a, u32>,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let &v = self.inner.next()?;
        Some(self.column.distinct(v as usize).text())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for RowIter<'_> {}

impl<'a> IntoIterator for &'a Column {
    type Item = &'a str;
    type IntoIter = RowIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<Vec<String>> for Column {
    fn from(rows: Vec<String>) -> Self {
        Column::from_rows(rows)
    }
}

impl FromIterator<String> for Column {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Column::from_rows(iter.into_iter().collect())
    }
}

/// A handle to one distinct value of a [`Column`]: its interned text, the
/// original rows holding it, and its cached token stream.
#[derive(Debug, Clone, Copy)]
pub struct DistinctValue<'a> {
    column: &'a Column,
    index: usize,
}

impl<'a> DistinctValue<'a> {
    fn entry(&self) -> &'a DistinctEntry {
        &self.column.values[self.index]
    }

    /// Index of this value in the column's distinct-value table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The value's text (a slice of the column arena).
    pub fn text(&self) -> &'a str {
        let (start, end) = self.entry().span;
        &self.column.arena[start..end]
    }

    /// Number of rows holding this value.
    pub fn multiplicity(&self) -> usize {
        self.entry().rows.len()
    }

    /// Original row indices holding this value, ascending.
    pub fn rows(&self) -> impl Iterator<Item = usize> + 'a {
        self.entry().rows.iter().map(|&r| r as usize)
    }

    /// The cached leaf pattern (the value's `tokenize` signature).
    pub fn leaf(&self) -> &'a Pattern {
        &self.entry().tokenized.pattern
    }

    /// The dense leaf-id of this value's leaf pattern within the column's
    /// id space (see [`Column::interner_id`]). Distinct values sharing a
    /// leaf share a leaf-id.
    pub fn leaf_id(&self) -> u32 {
        self.entry().leaf_id
    }

    /// The cached per-token slices of the value.
    pub fn token_slices(&self) -> &'a [TokenSlice] {
        &self.entry().tokenized.slices
    }

    /// The full cached tokenization (raw text + leaf pattern + slices).
    pub fn tokenized(&self) -> &'a TokenizedString {
        &self.entry().tokenized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn sample() -> Column {
        Column::from_rows(vec![
            "(734) 645-8397".into(),
            "N/A".into(),
            "(734) 645-8397".into(),
            "734-422-8073".into(),
            "N/A".into(),
            "(734) 645-8397".into(),
        ])
    }

    #[test]
    fn dedup_preserves_rows_and_order() {
        let c = sample();
        assert_eq!(c.len(), 6);
        assert_eq!(c.distinct_count(), 3);
        // Distinct values in first-occurrence order.
        let texts: Vec<&str> = c.distinct_values().map(|v| v.text()).collect();
        assert_eq!(texts, vec!["(734) 645-8397", "N/A", "734-422-8073"]);
        // Row access reconstructs the original column.
        let rows: Vec<&str> = c.iter().collect();
        assert_eq!(
            rows,
            vec![
                "(734) 645-8397",
                "N/A",
                "(734) 645-8397",
                "734-422-8073",
                "N/A",
                "(734) 645-8397"
            ]
        );
        assert_eq!(c.to_vec(), rows);
    }

    #[test]
    fn multiplicity_and_row_indices() {
        let c = sample();
        let phone = c.distinct(0);
        assert_eq!(phone.multiplicity(), 3);
        assert_eq!(phone.rows().collect::<Vec<_>>(), vec![0, 2, 5]);
        let na = c.distinct(1);
        assert_eq!(na.multiplicity(), 2);
        assert_eq!(na.rows().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(c.distinct_index_of(3), 2);
        // Every row is owned by exactly one distinct value.
        let total: usize = c.distinct_values().map(|v| v.multiplicity()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn cached_tokenization_matches_tokenize() {
        let c = sample();
        for value in c.distinct_values() {
            assert_eq!(value.leaf(), &tokenize(value.text()), "{}", value.text());
            let rebuilt: String = value
                .token_slices()
                .iter()
                .map(|s| s.text.as_str())
                .collect();
            assert_eq!(rebuilt, value.text());
            assert_eq!(value.tokenized().raw, value.text());
        }
    }

    #[test]
    fn interning_stores_each_distinct_value_once() {
        let c = sample();
        assert_eq!(
            c.interned_bytes(),
            "(734) 645-8397".len() + "N/A".len() + "734-422-8073".len()
        );
    }

    #[test]
    fn empty_column_and_empty_strings() {
        let c = Column::from_rows(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.distinct_count(), 0);
        assert_eq!(c.distinct_values().count(), 0);
        assert_eq!(c.leaf_count(), 0);

        let c = Column::from_rows(vec!["".into(), "".into()]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.distinct_count(), 1);
        assert_eq!(c.row(1), "");
        assert!(c.distinct(0).leaf().is_empty());
    }

    #[test]
    fn from_values_and_collect() {
        let c = Column::from_values(&["a1", "a1", "b2"]);
        assert_eq!(c.distinct_count(), 2);
        let c2: Column = vec!["a1".to_string(), "b2".to_string()]
            .into_iter()
            .collect();
        assert_eq!(c2.len(), 2);
        let c3: Column = vec!["x".to_string()].into();
        assert_eq!(c3.row(0), "x");
    }

    #[test]
    fn row_map_is_shared_not_copied() {
        let c = sample();
        let map = c.row_map().clone();
        assert_eq!(map.len(), c.len());
        for (row, &v) in map.iter().enumerate() {
            assert_eq!(v as usize, c.distinct_index_of(row));
        }
        // Cloning the Arc does not clone the map storage.
        assert!(Arc::ptr_eq(&map, c.row_map()));
    }

    #[test]
    fn from_distinct_skips_tokenization_but_matches_from_rows() {
        let rows = vec![
            "a-1".to_string(),
            "b-2".to_string(),
            "a-1".to_string(),
            "a-1".to_string(),
        ];
        let baseline = Column::from_rows(rows.clone());
        let values = vec![tokenize_detailed("a-1"), tokenize_detailed("b-2")];
        let rebuilt = Column::from_distinct(values, vec![0, 1, 0, 0]);
        assert_eq!(rebuilt.len(), baseline.len());
        assert_eq!(rebuilt.distinct_count(), baseline.distinct_count());
        assert_eq!(rebuilt.leaf_count(), baseline.leaf_count());
        assert_eq!(rebuilt.to_vec(), rows);
        for (a, b) in rebuilt.distinct_values().zip(baseline.distinct_values()) {
            assert_eq!(a.text(), b.text());
            assert_eq!(a.leaf(), b.leaf());
            assert_eq!(a.leaf_id(), b.leaf_id());
            assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_distinct_rejects_bad_row_map() {
        Column::from_distinct(vec![tokenize_detailed("x")], vec![0, 1]);
    }

    #[test]
    fn unicode_values_intern_cleanly() {
        let c = Column::from_values(&["a€b", "a€b", "π"]);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.row(1), "a€b");
        assert_eq!(c.distinct(1).text(), "π");
        assert_eq!(c.distinct(0).leaf().to_string(), "<L>'€'<L>");
    }

    // ---- interner ---------------------------------------------------------

    #[test]
    fn interner_hands_out_stable_distinct_ids() {
        let mut interner = ColumnInterner::new();
        let a = interner.intern("734-422-8073");
        let b = interner.intern("N/A");
        assert_eq!((a, b), (0, 1));
        // Re-interning returns the existing id.
        assert_eq!(interner.intern("734-422-8073"), 0);
        assert_eq!(interner.intern_owned("N/A".to_string()), 1);
        assert_eq!(interner.distinct_count(), 2);
        assert_eq!(interner.value(0), "734-422-8073");
        assert_eq!(interner.leaf(0), &tokenize("734-422-8073"));
        assert_eq!(interner.tokenized(1).raw, "N/A");
        assert_eq!(
            interner.interned_bytes(),
            "734-422-8073".len() + "N/A".len()
        );
    }

    #[test]
    fn interner_leaf_ids_are_dense_and_shared() {
        let mut interner = ColumnInterner::new();
        // Same leaf <D>3'-'<D>4 for the first two, a new leaf for the third.
        let a = interner.intern("111-2222");
        let b = interner.intern("999-8888");
        let c = interner.intern("N/A");
        assert_eq!(interner.leaf_id(a), interner.leaf_id(b));
        assert_ne!(interner.leaf_id(a), interner.leaf_id(c));
        assert_eq!(interner.leaf_count(), 2);
        // Leaf ids are dense: 0 and 1.
        assert_eq!(interner.leaf_id(a), 0);
        assert_eq!(interner.leaf_id(c), 1);
    }

    #[test]
    fn interner_instances_are_unique() {
        let a = ColumnInterner::new();
        let b = ColumnInterner::new();
        assert_ne!(a.instance(), b.instance());
    }

    #[test]
    fn interner_stats_track_hits_misses_and_evictions() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(2));
        assert_eq!(interner.stats(), InternerStats::default());
        drop(interner.chunk(&["a-1", "b-2", "c-3", "a-1"])); // 3 misses, 1 hit
        drop(interner.chunk(&["d-4"])); // boundary evicts down to 2, 1 miss
        let stats = interner.stats();
        assert_eq!(stats.intern_hits, 1);
        assert_eq!(stats.intern_misses, 4);
        assert_eq!(stats.eviction_batches, 1);
        assert_eq!(stats.evicted_values, interner.evictions());
        assert!(stats.evicted_values > 0);
    }

    #[test]
    fn interner_publishes_metrics_at_chunk_boundaries() {
        let sink = clx_telemetry::InMemorySink::shared();
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(2));
        interner.attach_telemetry(sink.clone());
        drop(interner.chunk(&["a-1", "b-2", "a-1", "c-3"]));
        drop(interner.chunk(&["d-4"]));
        let snap = MetricSink::snapshot(&*sink);
        let stats = interner.stats();
        assert_eq!(
            snap.counter("column.interner.intern_hits"),
            Some(stats.intern_hits)
        );
        assert_eq!(
            snap.counter("column.interner.intern_misses"),
            Some(stats.intern_misses)
        );
        assert_eq!(
            snap.counter("column.interner.evicted_values"),
            Some(stats.evicted_values)
        );
        assert_eq!(
            snap.gauge("column.interner.arena_bytes"),
            Some(interner.interned_bytes() as u64)
        );
        assert_eq!(
            snap.gauge("column.interner.live_distinct"),
            Some(interner.live_distinct_count() as u64)
        );
    }

    #[test]
    fn builder_with_telemetry_records_phase_timings() {
        let sink = clx_telemetry::InMemorySink::shared();
        let rows: Vec<String> = (0..200).map(|i| format!("{:03}", i % 17)).collect();
        let plain = ColumnBuilder::new().shards(3).build(rows.clone());
        let timed = ColumnBuilder::new()
            .shards(3)
            .with_telemetry(sink.clone())
            .build(rows);
        // Telemetry never changes the built column.
        assert_eq!(plain.to_vec(), timed.to_vec());
        assert_eq!(plain.distinct_count(), timed.distinct_count());
        let snap = MetricSink::snapshot(&*sink);
        for phase in [
            "column.builder.build_ns",
            "column.builder.dedup_ns",
            "column.builder.merge_ns",
            "column.builder.tokenize_ns",
            "column.builder.assemble_ns",
        ] {
            assert_eq!(snap.histogram(phase).map(|h| h.count), Some(1), "{phase}");
        }
    }

    #[test]
    fn cloned_interner_owns_a_fresh_id_space() {
        let mut a = ColumnInterner::new();
        a.intern("x-1");
        let mut b = a.clone();
        // The clone keeps the existing mapping but not the instance id:
        // after divergence the same new id names different values in each,
        // so instance-keyed caches must be forced to reset.
        assert_ne!(a.instance(), b.instance());
        assert_eq!(b.value(0), "x-1");
        let in_a = a.intern("qqq");
        let in_b = b.intern("zzz");
        assert_eq!(in_a, in_b, "diverged clones alias ids...");
        assert_ne!(a.value(in_a), b.value(in_b), "...naming different values");
    }

    #[test]
    fn chunks_share_the_interner_id_space() {
        let mut interner = ColumnInterner::new();
        let first = interner.chunk(&["a-1", "b-2", "a-1", "a-1"]);
        assert_eq!(first.len(), 4);
        assert_eq!(first.distinct_count(), 2);
        assert_eq!(first.newly_interned(), 2);
        assert_eq!(first.distinct_ids(), &[0, 1]);
        assert_eq!(first.row_map(), &[0, 1, 0, 0]);
        assert_eq!(first.row(1), "b-2");
        assert_eq!(
            first.rows().collect::<Vec<_>>(),
            vec!["a-1", "b-2", "a-1", "a-1"]
        );
        drop(first);

        // The second chunk repeats "a-1" (same id 0) and adds "c-3" (id 2).
        let second = interner.chunk(&["c-3", "a-1", "c-3"]);
        assert_eq!(second.distinct_ids(), &[2, 0]);
        assert_eq!(second.row_map(), &[0, 1, 0]);
        assert_eq!(second.newly_interned(), 1);
        assert_eq!(second.interner().distinct_count(), 3);
    }

    #[test]
    fn empty_chunk_is_fine() {
        let mut interner = ColumnInterner::new();
        let chunk = interner.chunk::<&str>(&[]);
        assert!(chunk.is_empty());
        assert_eq!(chunk.distinct_count(), 0);
        assert_eq!(chunk.newly_interned(), 0);
    }

    #[test]
    fn interner_into_column_matches_from_rows() {
        let rows = vec![
            "(734) 645-8397".to_string(),
            "N/A".to_string(),
            "(734) 645-8397".to_string(),
        ];
        let baseline = Column::from_rows(rows.clone());
        let mut interner = ColumnInterner::new();
        let row_map: Vec<u32> = rows.iter().map(|r| interner.intern(r)).collect();
        let column = interner.into_column(row_map);
        assert_eq!(column.to_vec(), baseline.to_vec());
        assert_eq!(column.distinct_count(), baseline.distinct_count());
        assert_eq!(column.leaf_count(), baseline.leaf_count());
        for (a, b) in column.distinct_values().zip(baseline.distinct_values()) {
            assert_eq!(a.text(), b.text());
            assert_eq!(a.leaf_id(), b.leaf_id());
            assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn into_column_rejects_foreign_ids() {
        let mut interner = ColumnInterner::new();
        interner.intern("x");
        interner.into_column(vec![0, 7]);
    }

    // ---- budgets & eviction ------------------------------------------------

    #[test]
    fn bounded_interner_evicts_coldest_at_chunk_boundaries() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(2));
        let a = interner.chunk(&["a-1", "b-2", "c-3"]);
        assert_eq!(a.distinct_count(), 3);
        drop(a);
        // The chunk's own values are pinned: nothing is evicted until the
        // next chunk boundary.
        assert_eq!(interner.live_distinct_count(), 3);
        assert!(interner.over_budget());

        let b = interner.chunk(&["c-3"]);
        assert_eq!(b.row(0), "c-3");
        drop(b);
        // Only the coldest value was evicted; its slot generation and the
        // interner generation both moved.
        assert_eq!(interner.evictions(), 1);
        assert_eq!(interner.generation(), 1);
        assert!(!interner.is_live(0));
        assert!(interner.is_live(1) && interner.is_live(2));
        assert_eq!(interner.distinct_generation(0), 1);
        assert_eq!(interner.distinct_generation(1), 0);

        // The evicted value re-interns into the recycled slot.
        let c = interner.chunk(&["a-1"]);
        assert_eq!(c.distinct_ids(), &[0]);
        drop(c);
        assert_eq!(interner.value(0), "a-1");
        assert_eq!(interner.distinct_generation(0), 1);
    }

    #[test]
    fn eviction_order_is_least_recently_interned() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1));
        drop(interner.chunk(&["a-1", "b-2"]));
        // Touch a-1 again: b-2 becomes the coldest.
        drop(interner.chunk(&["a-1"]));
        drop(interner.chunk(&["x-9"]));
        assert_eq!(interner.value(0), "a-1");
        assert_eq!(interner.value(1), "x-9");
        assert_eq!(interner.distinct_generation(1), 1);
    }

    #[test]
    fn evicted_since_reports_exactly_the_batch_victims() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(2));
        drop(interner.chunk(&["a-1", "b-2", "c-3"]));
        let synced = interner.generation();
        // Nothing evicted yet: the log answers for the synced generation
        // with an empty dirty list.
        assert_eq!(interner.evicted_since(synced).unwrap().count(), 0);

        // The boundary evicts the coldest value (id 0).
        drop(interner.chunk(&["c-3"]));
        let dirty: Vec<u32> = interner.evicted_since(synced).unwrap().collect();
        assert_eq!(dirty, vec![0]);
        // A consumer already at the current generation sees nothing dirty.
        assert_eq!(
            interner
                .evicted_since(interner.generation())
                .unwrap()
                .count(),
            0
        );
        // A generation this interner has not reached is a foreign sync
        // point: decline rather than under-report.
        assert!(interner.evicted_since(interner.generation() + 1).is_none());
    }

    #[test]
    fn evicted_since_accumulates_across_batches_and_forgets_old_ones() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1));
        drop(interner.chunk(&["v-0"]));
        // Each boundary past the second evicts the coldest value: one
        // batch per chunk, ping-ponging between the two slots.
        for i in 1..=3u32 {
            drop(interner.chunk(&[format!("v-{i}")]));
        }
        let dirty: Vec<u32> = interner.evicted_since(0).unwrap().collect();
        assert_eq!(dirty, vec![0, 1]);

        // Push past the batch cap: the floor advances and a stale sync
        // point falls off the log.
        for i in 4..=20u32 {
            drop(interner.chunk(&[format!("v-{i}")]));
        }
        assert!(interner.evicted_since(0).is_none());
        let recent = interner.generation() - 1;
        assert_eq!(interner.evicted_since(recent).unwrap().count(), 1);
    }

    #[test]
    fn oversized_eviction_batches_clear_the_log_instead_of_storing_it() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1));
        let huge: Vec<String> = (0..(EVICTION_LOG_IDS + 2))
            .map(|i| format!("r-{i}"))
            .collect();
        drop(interner.chunk(&huge));
        drop(interner.chunk(&["after"]));
        // The batch that evicted the huge chunk was too large to log:
        // pre-batch sync points must fall back to a full walk...
        assert!(interner.evicted_since(0).is_none());
        // ...but the log resumes cleanly from the post-batch generation.
        assert_eq!(
            interner
                .evicted_since(interner.generation())
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "evicted")]
    fn evicted_ids_are_not_served() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1));
        drop(interner.chunk(&["a-1", "b-2"]));
        drop(interner.chunk(&["b-2"]));
        assert!(!interner.is_live(0));
        interner.value(0);
    }

    #[test]
    fn leaf_ids_are_recycled_with_their_last_value() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1));
        drop(interner.chunk(&["abc"])); // leaf <L>3 -> leaf-id 0
        drop(interner.chunk(&["12345"])); // leaf <D>5 -> leaf-id 1
                                          // The next boundary evicts "abc"; its leaf had no other holder, so
                                          // leaf-id 0 is freed and handed to the next new leaf.
        let c = interner.chunk(&["zz"]);
        let id = c.distinct_ids()[0];
        assert_eq!(c.interner().leaf_id(id), 0);
        drop(c);
        assert_eq!(interner.leaf_count(), 2);
        assert!(interner.generation() > 0);
    }

    #[test]
    fn arena_byte_budget_binds_and_compacts() {
        let budget = StreamBudget::unbounded().with_max_arena_bytes(10);
        let mut interner = ColumnInterner::with_budget(budget);
        drop(interner.chunk(&["aaaa-1111", "bbbb-2222"])); // 18 live bytes
        assert!(interner.over_budget());
        drop(interner.chunk(&["c"]));
        // The coldest value was evicted and the arena compacted down.
        assert!(interner.interned_bytes() <= 10);
        assert_eq!(interner.evictions(), 1);
    }

    #[test]
    fn memory_used_is_monotone_under_pushes_and_drops_after_eviction() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(8));
        let mut last = interner.memory_used();
        for k in 0..8 {
            interner.intern(&format!("value-{k:03}"));
            let now = interner.memory_used();
            assert!(now >= last, "memory_used must be monotone under pushes");
            last = now;
        }
        for k in 8..64 {
            interner.intern(&format!("value-{k:03}"));
        }
        let peak = interner.memory_used();
        assert!(interner.enforce_budget() > 0);
        assert!(interner.memory_used() < peak);
        assert!(interner.live_distinct_count() <= 8);
        assert_eq!(interner.interned_bytes(), 8 * "value-000".len());
    }

    #[test]
    fn fallback_budget_never_evicts() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1).fallback());
        drop(interner.chunk(&["a-1", "b-2"]));
        assert!(interner.over_budget());
        drop(interner.chunk(&["c-3"]));
        assert_eq!(interner.evictions(), 0);
        assert_eq!(interner.live_distinct_count(), 3);
        assert_eq!(interner.enforce_budget(), 0);
        assert_eq!(interner.generation(), 0);
    }

    #[test]
    fn unbounded_budget_is_the_default_and_never_binds() {
        let interner = ColumnInterner::new();
        assert!(interner.budget().is_unbounded());
        assert!(!interner.over_budget());
        assert_eq!(StreamBudget::default(), StreamBudget::unbounded());
    }

    #[test]
    #[should_panic(expected = "has evicted")]
    fn evicted_interner_cannot_become_a_column() {
        let mut interner = ColumnInterner::with_budget(StreamBudget::max_distinct(1));
        drop(interner.chunk(&["a-1", "b-2"]));
        drop(interner.chunk(&["c-3"]));
        assert!(interner.evictions() > 0);
        interner.into_column(vec![1]);
    }

    // ---- builder ----------------------------------------------------------

    fn assert_columns_identical(a: &Column, b: &Column) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.distinct_count(), b.distinct_count());
        assert_eq!(a.leaf_count(), b.leaf_count());
        assert_eq!(a.interned_bytes(), b.interned_bytes());
        assert_eq!(a.row_map().as_ref(), b.row_map().as_ref());
        for (va, vb) in a.distinct_values().zip(b.distinct_values()) {
            assert_eq!(va.text(), vb.text());
            assert_eq!(va.leaf(), vb.leaf());
            assert_eq!(va.leaf_id(), vb.leaf_id());
            assert_eq!(va.tokenized().slices.len(), vb.tokenized().slices.len());
            assert_eq!(va.rows().collect::<Vec<_>>(), vb.rows().collect::<Vec<_>>());
        }
    }

    #[test]
    fn sharded_build_is_identical_to_sequential() {
        // Values deliberately straddle shard boundaries.
        let rows: Vec<String> = (0..4_000)
            .map(|i| match i % 5 {
                0 | 1 => format!("{:03}-{:03}-{:04}", i % 13, i % 7, i % 23),
                2 => format!("({:03}) {:03}-{:04}", i % 13, i % 7, i % 23),
                3 => "N/A".to_string(),
                _ => format!("{:02}", i % 9),
            })
            .collect();
        let sequential = Column::from_rows(rows.clone());
        for shards in [1, 2, 3, 4, 7, 16] {
            let sharded = ColumnBuilder::new().shards(shards).build(rows.clone());
            assert_columns_identical(&sequential, &sharded);
        }
    }

    #[test]
    fn builder_handles_edge_sizes() {
        // Empty column.
        let empty = ColumnBuilder::new().shards(4).build(Vec::new());
        assert!(empty.is_empty());
        // Fewer rows than shards.
        let tiny = ColumnBuilder::new()
            .shards(8)
            .build(vec!["a".into(), "a".into()]);
        assert_eq!(tiny.len(), 2);
        assert_eq!(tiny.distinct_count(), 1);
        // Auto selection on a small column stays sequential and correct.
        let auto = ColumnBuilder::new().build(vec!["a".into(), "b".into()]);
        assert_eq!(auto.distinct_count(), 2);
    }

    #[test]
    fn columns_own_distinct_id_spaces() {
        let a = Column::from_values(&["x"]);
        let b = Column::from_values(&["x"]);
        assert_ne!(a.interner_id(), b.interner_id());
        // A clone shares the id space of its original.
        assert_eq!(a.clone().interner_id(), a.interner_id());
    }
}
