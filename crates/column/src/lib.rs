//! # clx-column
//!
//! The shared column data plane of CLX: one representation of a column of
//! string data that every layer of the stack — profiling (`clx-cluster`),
//! synthesis (`clx-synth`), the interactive session (`clx-core`) and the
//! batch engine (`clx-engine`) — reads instead of re-deriving its own.
//!
//! A [`Column`] does three things once, at construction:
//!
//! * **interns** every row string into a single arena (one contiguous
//!   allocation instead of one `String` per row);
//! * **deduplicates** identical values, keeping the original row indices of
//!   every duplicate (real-world columns are duplicate-heavy: a million-row
//!   phone column rarely holds more than a few thousand distinct values);
//! * **caches**, per *distinct* value, the token stream and leaf pattern
//!   produced by [`clx_pattern::tokenize_detailed`] — the signature every
//!   downstream layer keys on.
//!
//! Everything downstream then works in O(distinct) instead of O(rows):
//! the profiler clusters distinct values and fans counts back out to row
//! indices, synthesis validates plans against cached token streams, and the
//! engine dispatches on cached leaf signatures without ever re-tokenizing.
//!
//! ```
//! use clx_column::Column;
//!
//! let column = Column::from_rows(vec![
//!     "734-422-8073".to_string(),
//!     "N/A".to_string(),
//!     "734-422-8073".to_string(),
//! ]);
//! assert_eq!(column.len(), 3);
//! assert_eq!(column.distinct_count(), 2);
//!
//! let first = column.distinct(0);
//! assert_eq!(first.text(), "734-422-8073");
//! assert_eq!(first.multiplicity(), 2);
//! assert_eq!(first.leaf().to_string(), "<D>3'-'<D>3'-'<D>4");
//! assert_eq!(column.row(2), "734-422-8073");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Arc;

use clx_pattern::{tokenize_detailed, Pattern, TokenSlice, TokenizedString};

/// One distinct value's interned span and cached analysis.
#[derive(Debug, Clone)]
struct DistinctEntry {
    /// Half-open byte span of the value inside the column arena.
    span: (usize, usize),
    /// Original row indices holding this value, in ascending order.
    rows: Vec<u32>,
    /// The cached token stream: leaf pattern plus per-token slices,
    /// computed exactly once per distinct value.
    tokenized: TokenizedString,
}

/// A column of string data with interned rows, deduplicated values and
/// per-distinct-value cached token streams.
///
/// Construction tokenizes each *distinct* value exactly once; every later
/// consumer (profiler, synthesizer, session, engine) reads the cached
/// [`TokenizedString`] instead of re-deriving it.
#[derive(Debug, Clone)]
pub struct Column {
    /// All distinct values, concatenated; [`DistinctEntry::span`] slices it.
    arena: String,
    /// Distinct values in first-occurrence order.
    values: Vec<DistinctEntry>,
    /// Row index -> index into `values`. Shared (`Arc`) so that columnar
    /// reports can reference the map without copying it per report.
    rows: Arc<[u32]>,
}

impl Default for Column {
    fn default() -> Self {
        Column {
            arena: String::new(),
            values: Vec::new(),
            rows: Arc::from(Vec::new()),
        }
    }
}

impl Column {
    /// Build a column from owned rows, interning and analyzing each
    /// distinct value once.
    pub fn from_rows(rows: Vec<String>) -> Self {
        assert!(
            rows.len() < u32::MAX as usize,
            "column exceeds u32 row indexing"
        );
        let mut seen: HashMap<String, u32> = HashMap::new();
        let mut arena = String::new();
        let mut values: Vec<DistinctEntry> = Vec::new();
        let mut row_map: Vec<u32> = Vec::with_capacity(rows.len());
        for (row_index, row) in rows.into_iter().enumerate() {
            let value_index = match seen.get(row.as_str()) {
                Some(&i) => i,
                None => {
                    let i = values.len() as u32;
                    let start = arena.len();
                    arena.push_str(&row);
                    values.push(DistinctEntry {
                        span: (start, arena.len()),
                        rows: Vec::new(),
                        tokenized: tokenize_detailed(&row),
                    });
                    // The row string itself becomes the dedup key, reusing
                    // its allocation.
                    seen.insert(row, i);
                    i
                }
            };
            values[value_index as usize].rows.push(row_index as u32);
            row_map.push(value_index);
        }
        Column {
            arena,
            values,
            rows: Arc::from(row_map),
        }
    }

    /// Build a column from already-distinct, already-tokenized values plus
    /// the row→distinct map, skipping tokenization entirely.
    ///
    /// `values[k]` is the `k`-th distinct value (with its precomputed
    /// [`TokenizedString`]), and `row_map[r]` names the distinct value held
    /// by row `r`. This is how `result_patterns` builds the *output* column
    /// of a transformation in O(distinct): transformed outputs derive their
    /// token streams from the labelled target's split, so nothing needs to
    /// be re-tokenized.
    ///
    /// # Panics
    ///
    /// Panics if a `row_map` entry is out of bounds, or if `row_map` is
    /// non-empty while `values` is empty.
    pub fn from_distinct(values: Vec<TokenizedString>, row_map: Vec<u32>) -> Self {
        let mut arena = String::new();
        let mut entries: Vec<DistinctEntry> = Vec::with_capacity(values.len());
        for tokenized in values {
            let start = arena.len();
            arena.push_str(&tokenized.raw);
            entries.push(DistinctEntry {
                span: (start, arena.len()),
                rows: Vec::new(),
                tokenized,
            });
        }
        for (row_index, &value_index) in row_map.iter().enumerate() {
            assert!(
                (value_index as usize) < entries.len(),
                "row map entry {value_index} out of bounds ({} distinct values)",
                entries.len()
            );
            entries[value_index as usize].rows.push(row_index as u32);
        }
        Column {
            arena,
            values: entries,
            rows: Arc::from(row_map),
        }
    }

    /// Build a column from borrowed values.
    pub fn from_values<S: AsRef<str>>(values: &[S]) -> Self {
        Self::from_rows(values.iter().map(|v| v.as_ref().to_string()).collect())
    }

    /// Number of rows (including duplicates).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of distinct values.
    pub fn distinct_count(&self) -> usize {
        self.values.len()
    }

    /// The raw string of row `index` (a slice of the arena).
    pub fn row(&self, index: usize) -> &str {
        self.distinct(self.rows[index] as usize).text()
    }

    /// All rows, in original order.
    pub fn iter(&self) -> RowIter<'_> {
        RowIter {
            column: self,
            inner: self.rows.iter(),
        }
    }

    /// Index (into the distinct-value table) of the value held by `row`.
    pub fn distinct_index_of(&self, row: usize) -> usize {
        self.rows[row] as usize
    }

    /// The shared row→distinct map: entry `r` is the index (into the
    /// distinct-value table) of the value held by row `r`.
    ///
    /// The map is reference-counted; cloning the returned `Arc` is O(1),
    /// which is how columnar transform reports reference a column's row
    /// structure without copying it.
    pub fn row_map(&self) -> &Arc<[u32]> {
        &self.rows
    }

    /// The distinct value at `index` (first-occurrence order).
    ///
    /// # Panics
    /// If `index >= self.distinct_count()`.
    pub fn distinct(&self, index: usize) -> DistinctValue<'_> {
        assert!(index < self.values.len(), "distinct index out of bounds");
        DistinctValue {
            column: self,
            index,
        }
    }

    /// All distinct values, in first-occurrence order.
    pub fn distinct_values(&self) -> impl Iterator<Item = DistinctValue<'_>> + '_ {
        (0..self.values.len()).map(|i| self.distinct(i))
    }

    /// The rows as owned strings, in original order (for interop with APIs
    /// that still take `&[String]`).
    pub fn to_vec(&self) -> Vec<String> {
        self.iter().map(str::to_string).collect()
    }

    /// Total bytes of interned distinct-value text (the arena size): the
    /// memory the dedup actually pays for string storage.
    pub fn interned_bytes(&self) -> usize {
        self.arena.len()
    }
}

/// Iterator over a column's rows (original order, interned text).
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    column: &'a Column,
    inner: std::slice::Iter<'a, u32>,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let &v = self.inner.next()?;
        Some(self.column.distinct(v as usize).text())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for RowIter<'_> {}

impl<'a> IntoIterator for &'a Column {
    type Item = &'a str;
    type IntoIter = RowIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<Vec<String>> for Column {
    fn from(rows: Vec<String>) -> Self {
        Column::from_rows(rows)
    }
}

impl FromIterator<String> for Column {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        Column::from_rows(iter.into_iter().collect())
    }
}

/// A handle to one distinct value of a [`Column`]: its interned text, the
/// original rows holding it, and its cached token stream.
#[derive(Debug, Clone, Copy)]
pub struct DistinctValue<'a> {
    column: &'a Column,
    index: usize,
}

impl<'a> DistinctValue<'a> {
    fn entry(&self) -> &'a DistinctEntry {
        &self.column.values[self.index]
    }

    /// Index of this value in the column's distinct-value table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The value's text (a slice of the column arena).
    pub fn text(&self) -> &'a str {
        let (start, end) = self.entry().span;
        &self.column.arena[start..end]
    }

    /// Number of rows holding this value.
    pub fn multiplicity(&self) -> usize {
        self.entry().rows.len()
    }

    /// Original row indices holding this value, ascending.
    pub fn rows(&self) -> impl Iterator<Item = usize> + 'a {
        self.entry().rows.iter().map(|&r| r as usize)
    }

    /// The cached leaf pattern (the value's `tokenize` signature).
    pub fn leaf(&self) -> &'a Pattern {
        &self.entry().tokenized.pattern
    }

    /// The cached per-token slices of the value.
    pub fn token_slices(&self) -> &'a [TokenSlice] {
        &self.entry().tokenized.slices
    }

    /// The full cached tokenization (raw text + leaf pattern + slices).
    pub fn tokenized(&self) -> &'a TokenizedString {
        &self.entry().tokenized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn sample() -> Column {
        Column::from_rows(vec![
            "(734) 645-8397".into(),
            "N/A".into(),
            "(734) 645-8397".into(),
            "734-422-8073".into(),
            "N/A".into(),
            "(734) 645-8397".into(),
        ])
    }

    #[test]
    fn dedup_preserves_rows_and_order() {
        let c = sample();
        assert_eq!(c.len(), 6);
        assert_eq!(c.distinct_count(), 3);
        // Distinct values in first-occurrence order.
        let texts: Vec<&str> = c.distinct_values().map(|v| v.text()).collect();
        assert_eq!(texts, vec!["(734) 645-8397", "N/A", "734-422-8073"]);
        // Row access reconstructs the original column.
        let rows: Vec<&str> = c.iter().collect();
        assert_eq!(
            rows,
            vec![
                "(734) 645-8397",
                "N/A",
                "(734) 645-8397",
                "734-422-8073",
                "N/A",
                "(734) 645-8397"
            ]
        );
        assert_eq!(c.to_vec(), rows);
    }

    #[test]
    fn multiplicity_and_row_indices() {
        let c = sample();
        let phone = c.distinct(0);
        assert_eq!(phone.multiplicity(), 3);
        assert_eq!(phone.rows().collect::<Vec<_>>(), vec![0, 2, 5]);
        let na = c.distinct(1);
        assert_eq!(na.multiplicity(), 2);
        assert_eq!(na.rows().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(c.distinct_index_of(3), 2);
        // Every row is owned by exactly one distinct value.
        let total: usize = c.distinct_values().map(|v| v.multiplicity()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn cached_tokenization_matches_tokenize() {
        let c = sample();
        for value in c.distinct_values() {
            assert_eq!(value.leaf(), &tokenize(value.text()), "{}", value.text());
            let rebuilt: String = value
                .token_slices()
                .iter()
                .map(|s| s.text.as_str())
                .collect();
            assert_eq!(rebuilt, value.text());
            assert_eq!(value.tokenized().raw, value.text());
        }
    }

    #[test]
    fn interning_stores_each_distinct_value_once() {
        let c = sample();
        assert_eq!(
            c.interned_bytes(),
            "(734) 645-8397".len() + "N/A".len() + "734-422-8073".len()
        );
    }

    #[test]
    fn empty_column_and_empty_strings() {
        let c = Column::from_rows(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.distinct_count(), 0);
        assert_eq!(c.distinct_values().count(), 0);

        let c = Column::from_rows(vec!["".into(), "".into()]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.distinct_count(), 1);
        assert_eq!(c.row(1), "");
        assert!(c.distinct(0).leaf().is_empty());
    }

    #[test]
    fn from_values_and_collect() {
        let c = Column::from_values(&["a1", "a1", "b2"]);
        assert_eq!(c.distinct_count(), 2);
        let c2: Column = vec!["a1".to_string(), "b2".to_string()]
            .into_iter()
            .collect();
        assert_eq!(c2.len(), 2);
        let c3: Column = vec!["x".to_string()].into();
        assert_eq!(c3.row(0), "x");
    }

    #[test]
    fn row_map_is_shared_not_copied() {
        let c = sample();
        let map = c.row_map().clone();
        assert_eq!(map.len(), c.len());
        for (row, &v) in map.iter().enumerate() {
            assert_eq!(v as usize, c.distinct_index_of(row));
        }
        // Cloning the Arc does not clone the map storage.
        assert!(Arc::ptr_eq(&map, c.row_map()));
    }

    #[test]
    fn from_distinct_skips_tokenization_but_matches_from_rows() {
        let rows = vec![
            "a-1".to_string(),
            "b-2".to_string(),
            "a-1".to_string(),
            "a-1".to_string(),
        ];
        let baseline = Column::from_rows(rows.clone());
        let values = vec![tokenize_detailed("a-1"), tokenize_detailed("b-2")];
        let rebuilt = Column::from_distinct(values, vec![0, 1, 0, 0]);
        assert_eq!(rebuilt.len(), baseline.len());
        assert_eq!(rebuilt.distinct_count(), baseline.distinct_count());
        assert_eq!(rebuilt.to_vec(), rows);
        for (a, b) in rebuilt.distinct_values().zip(baseline.distinct_values()) {
            assert_eq!(a.text(), b.text());
            assert_eq!(a.leaf(), b.leaf());
            assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_distinct_rejects_bad_row_map() {
        Column::from_distinct(vec![tokenize_detailed("x")], vec![0, 1]);
    }

    #[test]
    fn unicode_values_intern_cleanly() {
        let c = Column::from_values(&["a€b", "a€b", "π"]);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.row(1), "a€b");
        assert_eq!(c.distinct(1).text(), "π");
        assert_eq!(c.distinct(0).leaf().to_string(), "<L>'€'<L>");
    }
}
