//! # clx-datagen
//!
//! Workload generation for the CLX evaluation: seeded generators for every
//! data type the paper's experiments touch (phone numbers, human names,
//! addresses, dates, identifiers, log entries, ...), the §7.2 phone-number
//! user-study datasets (`10(2)`, `100(4)`, `300(6)` and a 10k-row variant),
//! the reconstructed 47-task benchmark suite of §7.4 (Table 6), and the
//! three explainability tasks of §7.3 (Table 5).
//!
//! All generation is deterministic given a seed, so every figure and table
//! produced by `clx-bench` is exactly reproducible.
//!
//! ```
//! use clx_datagen::{benchmark_suite, study_cases};
//!
//! let suite = benchmark_suite(0);
//! assert_eq!(suite.len(), 47);
//!
//! let cases = study_cases(42);
//! assert_eq!(cases[2].name, "300(6)");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod generators;
mod phone_study;
mod suite;

pub use generators::{DataGenerator, PhoneFormat};
pub use phone_study::{duplicate_heavy_case, large_case, study_case, study_cases, PhoneStudyCase};
pub use suite::{
    benchmark_suite, explainability_tasks, suite_stats, BenchmarkTask, DataType, SuiteStats,
    TaskSource,
};
