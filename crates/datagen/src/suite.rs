//! The 47-task benchmark suite of Section 7.4 (Table 6) and the three
//! explainability tasks of Section 7.3 (Table 5).
//!
//! The paper assembles its suite from the SyGuS 2017 PBE-strings track (27
//! scenarios), the FlashFill paper (10), BlinkFill (4), PredProg (3) and the
//! Microsoft PROSE samples (3). The exact task files were never released
//! ("will be released upon the acceptance of the paper"), so this module
//! reconstructs a 47-task suite with the same source mix, the same data
//! types (Table 6's car model ids, human names, phone numbers, university
//! names, addresses, log entries, dates, urls, product names, ...) and
//! similar size/length statistics, generated deterministically from seeds.
//! Every task carries ground-truth outputs so simulated users can check any
//! system's result exactly.

use clx_pattern::Pattern;

use crate::generators::{DataGenerator, PhoneFormat};

/// Where a benchmark task (conceptually) comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskSource {
    /// SyGuS-COMP 2017 PBE-strings track.
    SyGus,
    /// Gulwani's FlashFill paper (POPL 2011).
    FlashFill,
    /// BlinkFill (PVLDB 2016).
    BlinkFill,
    /// "Predicting a correct program in PBE" (CAV 2015).
    PredProg,
    /// Microsoft PROSE SDK samples.
    Prose,
}

impl TaskSource {
    /// Display name matching Table 6.
    pub fn name(&self) -> &'static str {
        match self {
            TaskSource::SyGus => "SyGus",
            TaskSource::FlashFill => "FlashFill",
            TaskSource::BlinkFill => "BlinkFill",
            TaskSource::PredProg => "PredProg",
            TaskSource::Prose => "Prose",
        }
    }
}

/// The broad data type of a task (the "DataType" column of Tables 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Phone numbers in heterogeneous formats.
    PhoneNumber,
    /// Human names.
    HumanName,
    /// Street addresses.
    Address,
    /// Calendar dates.
    Date,
    /// Medical / product / car identifiers.
    Identifier,
    /// Email addresses.
    Email,
    /// URLs.
    Url,
    /// University names and affiliations.
    University,
    /// Server log entries.
    LogEntry,
    /// File paths.
    FilePath,
    /// Product names.
    ProductName,
    /// Currency amounts.
    Currency,
}

impl DataType {
    /// Human-readable label.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::PhoneNumber => "phone number",
            DataType::HumanName => "human name",
            DataType::Address => "address",
            DataType::Date => "date",
            DataType::Identifier => "identifier",
            DataType::Email => "email",
            DataType::Url => "url",
            DataType::University => "university name",
            DataType::LogEntry => "log entry",
            DataType::FilePath => "file directory",
            DataType::ProductName => "product name",
            DataType::Currency => "currency",
        }
    }
}

/// One benchmark task: a messy input column, its ground-truth outputs, and
/// the target format.
#[derive(Debug, Clone)]
pub struct BenchmarkTask {
    /// Stable task id (1-based, as in Figure 15's x-axis).
    pub id: usize,
    /// Short task name.
    pub name: String,
    /// Source corpus the task is modelled on.
    pub source: TaskSource,
    /// The data type of the column.
    pub data_type: DataType,
    /// The messy input column.
    pub inputs: Vec<String>,
    /// The desired output for every row.
    pub expected: Vec<String>,
    /// One example value already in the desired format.
    pub target_example: String,
    /// The target pattern a CLX user would label (possibly generalized with
    /// `+` quantifiers when the target fields have variable length).
    pub target: Pattern,
}

impl BenchmarkTask {
    /// Number of rows.
    pub fn size(&self) -> usize {
        self.inputs.len()
    }

    /// Average input length in characters.
    pub fn avg_len(&self) -> f64 {
        if self.inputs.is_empty() {
            return 0.0;
        }
        self.inputs.iter().map(|s| s.chars().count()).sum::<usize>() as f64
            / self.inputs.len() as f64
    }

    /// Maximum input length in characters.
    pub fn max_len(&self) -> usize {
        self.inputs
            .iter()
            .map(|s| s.chars().count())
            .max()
            .unwrap_or(0)
    }

    /// The target pattern a CLX user would label.
    pub fn target_pattern(&self) -> Pattern {
        self.target.clone()
    }

    /// Number of rows already in the desired format.
    pub fn already_correct(&self) -> usize {
        self.inputs
            .iter()
            .zip(&self.expected)
            .filter(|(i, e)| i == e)
            .count()
    }
}

/// Pairs of (input, expected) rows.
type Rows = Vec<(String, String)>;

fn rows_to_task(
    id: usize,
    name: &str,
    source: TaskSource,
    data_type: DataType,
    rows: Rows,
    target_example: &str,
    target_pattern: &str,
) -> BenchmarkTask {
    let (inputs, expected) = rows.into_iter().unzip();
    let target = clx_pattern::parse_pattern(target_pattern)
        .unwrap_or_else(|e| panic!("invalid target pattern for task {name}: {e}"));
    BenchmarkTask {
        id,
        name: name.to_string(),
        source,
        data_type,
        inputs,
        expected,
        target_example: target_example.to_string(),
        target,
    }
}

// ---------------------------------------------------------------------------
// Task templates. Each generates structured records first and renders both
// the messy input and the ground-truth output from the same record, so the
// expected column is correct by construction.
// ---------------------------------------------------------------------------

fn phone_normalize(rows: usize, n_formats: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    let formats = &PhoneFormat::STUDY_FORMATS[..n_formats];
    (0..rows)
        .map(|i| {
            let area = (200 + (i * 37) % 700) as u16;
            let exchange = (200 + (i * 53) % 700) as u16;
            let line = ((i * 691) % 10_000) as u16;
            let format = if i % 5 == 0 {
                PhoneFormat::Dashes
            } else {
                formats[i % formats.len()]
            };
            let _ = g.phone(PhoneFormat::Dashes); // keep the generator advancing
            (
                format.render(area, exchange, line),
                PhoneFormat::Dashes.render(area, exchange, line),
            )
        })
        .collect()
}

fn phone_parenthesize(rows: usize, n_formats: usize, seed: u64) -> Rows {
    phone_normalize(rows, n_formats, seed)
        .into_iter()
        .enumerate()
        .map(|(i, (input, dashed))| {
            let digits: Vec<&str> = dashed.split('-').collect();
            let target = format!("({}) {}-{}", digits[0], digits[1], digits[2]);
            if i % 6 == 0 {
                (target.clone(), target)
            } else {
                (input, target)
            }
        })
        .collect()
}

fn phone_strip_country_code(rows: usize, seed: u64) -> Rows {
    phone_normalize(rows, 1, seed)
        .into_iter()
        .enumerate()
        .map(|(i, (_, dashed))| {
            if i % 4 == 0 {
                (dashed.clone(), dashed)
            } else {
                (format!("+1 {dashed}"), dashed)
            }
        })
        .collect()
}

fn name_pairs(rows: usize, seed: u64) -> Vec<(String, String)> {
    let mut g = DataGenerator::new(seed);
    (0..rows).map(|_| g.name_pair()).collect()
}

fn name_last_first_initial(rows: usize, seed: u64) -> Rows {
    name_pairs(rows, seed)
        .into_iter()
        .enumerate()
        .map(|(i, (first, last))| {
            let target = format!(
                "{last}, {}.",
                first.chars().next().expect("non-empty first")
            );
            if i % 7 == 0 {
                (target.clone(), target)
            } else {
                (format!("{first} {last}"), target)
            }
        })
        .collect()
}

fn name_strip_title(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    name_pairs(rows, seed + 1)
        .into_iter()
        .enumerate()
        .map(|(i, (first, last))| {
            let full = format!("{first} {last}");
            let _ = g.full_name();
            if i % 5 == 0 {
                (full.clone(), full)
            } else {
                let title = ["Dr.", "Mr.", "Ms."][i % 3];
                (format!("{title} {first} {last}"), full)
            }
        })
        .collect()
}

fn name_initials(rows: usize, seed: u64) -> Rows {
    name_pairs(rows, seed)
        .into_iter()
        .enumerate()
        .map(|(i, (first, last))| {
            let target = format!(
                "{}.{}.",
                first.chars().next().expect("non-empty"),
                last.chars().next().expect("non-empty")
            );
            if i % 8 == 0 {
                (target.clone(), target)
            } else {
                (format!("{first} {last}"), target)
            }
        })
        .collect()
}

fn address_zip(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let address = g.address();
            let zip = address
                .rsplit(' ')
                .next()
                .expect("address has a zip")
                .to_string();
            if i % 9 == 0 {
                (zip.clone(), zip)
            } else {
                (address, zip)
            }
        })
        .collect()
}

fn address_state_zip(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let address = g.address();
            let mut parts = address.rsplitn(2, ", ");
            let state_zip = parts.next().expect("state and zip").to_string();
            if i % 9 == 0 {
                (state_zip.clone(), state_zip)
            } else {
                (address, state_zip)
            }
        })
        .collect()
}

fn date_reformat(rows: usize, seed: u64, iso: bool) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let (y, m, d) = g.date_parts();
            let target = if iso {
                format!("{y}-{m:02}-{d:02}")
            } else {
                format!("{m:02}-{d:02}-{y}")
            };
            if i % 6 == 0 {
                (target.clone(), target)
            } else {
                (format!("{m:02}/{d:02}/{y}"), target)
            }
        })
        .collect()
}

fn medical_codes(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let digits: u32 = 100 + ((i as u32 * 7919) % 99_000);
            let target = format!("[CPT-{digits}]");
            let _ = g.medical_code(i);
            let input = match i % 4 {
                0 => format!("CPT-{digits}"),
                1 => format!("[CPT-{digits}"),
                2 => target.clone(),
                _ => format!("CPT{digits}"),
            };
            (input, target.clone())
        })
        .collect()
}

fn email_domain(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let email = g.email();
            let domain = email
                .split('@')
                .nth(1)
                .expect("email has domain")
                .to_string();
            if i % 10 == 0 {
                (domain.clone(), domain)
            } else {
                (email, domain)
            }
        })
        .collect()
}

fn url_product_id(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let url = g.url();
            let id = url.rsplit('-').next().expect("url has id").to_string();
            if i % 11 == 0 {
                (id.clone(), id)
            } else {
                (url, id)
            }
        })
        .collect()
}

fn car_id_year(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let id = g.car_model_id();
            let year = id.rsplit('-').next().expect("car id has year").to_string();
            if i % 9 == 0 {
                (year.clone(), year)
            } else {
                (id, year)
            }
        })
        .collect()
}

fn car_id_code(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let id = g.car_model_id();
            let code = id.split('-').nth(1).expect("car id has code").to_string();
            if i % 9 == 0 {
                (code.clone(), code)
            } else {
                (id, code)
            }
        })
        .collect()
}

fn university_state(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let affiliation = g.university();
            let state = affiliation
                .rsplit(", ")
                .next()
                .expect("affiliation has state")
                .to_string();
            if i % 8 == 0 {
                (state.clone(), state)
            } else {
                (affiliation, state)
            }
        })
        .collect()
}

fn log_date(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let entry = g.log_entry();
            let date = entry.split(' ').next().expect("log has date").to_string();
            if i % 12 == 0 {
                (date.clone(), date)
            } else {
                (entry, date)
            }
        })
        .collect()
}

fn log_level(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let entry = g.log_entry();
            let level = entry.split(' ').nth(2).expect("log has level").to_string();
            if i % 12 == 0 {
                (level.clone(), level)
            } else {
                (entry, level)
            }
        })
        .collect()
}

fn file_extension(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let path = g.file_path();
            let ext = path
                .rsplit('.')
                .next()
                .expect("path has extension")
                .to_string();
            if i % 10 == 0 {
                (ext.clone(), ext)
            } else {
                (path, ext)
            }
        })
        .collect()
}

fn product_id(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let product = g.product();
            // "Widget 2000 rev3" -> "Widget-2000"
            let mut parts = product.split(' ');
            let name = parts.next().expect("product name");
            let num = parts.next().expect("product number");
            let target = format!("{name}-{num}");
            if i % 7 == 0 {
                (target.clone(), target)
            } else {
                (product.clone(), target)
            }
        })
        .collect()
}

fn currency_normalize(rows: usize, seed: u64) -> Rows {
    let mut g = DataGenerator::new(seed);
    (0..rows)
        .map(|i| {
            let amount = 10 + ((i as u64 * 997) % 99_000);
            let _ = g.currency(i);
            let target = format!("USD {amount}");
            let input = match i % 3 {
                0 => target.clone(),
                1 => format!("${amount}"),
                _ => format!("{amount} dollars"),
            };
            (input, target)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Suite assembly.
// ---------------------------------------------------------------------------

/// Build the full 47-task benchmark suite. The same seed always produces the
/// same suite.
pub fn benchmark_suite(seed: u64) -> Vec<BenchmarkTask> {
    use DataType as D;
    use TaskSource as S;

    let mut tasks: Vec<BenchmarkTask> = Vec::with_capacity(47);
    let mut id = 0usize;
    let mut push = |tasks: &mut Vec<BenchmarkTask>,
                    name: &str,
                    source: S,
                    data_type: D,
                    rows: Rows,
                    target_example: &str,
                    target_pattern: &str| {
        id += 1;
        tasks.push(rows_to_task(
            id,
            name,
            source,
            data_type,
            rows,
            target_example,
            target_pattern,
        ));
    };

    // --- SyGuS (27 tasks): larger columns (avg ≈ 63 rows). ---
    push(
        &mut tasks,
        "sygus-phone-1",
        S::SyGus,
        D::PhoneNumber,
        phone_normalize(60, 3, seed + 1),
        "734-422-8073",
        "<D>3'-'<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-phone-2",
        S::SyGus,
        D::PhoneNumber,
        phone_normalize(80, 4, seed + 2),
        "734-422-8073",
        "<D>3'-'<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-phone-3",
        S::SyGus,
        D::PhoneNumber,
        phone_normalize(100, 6, seed + 3),
        "734-422-8073",
        "<D>3'-'<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-phone-4",
        S::SyGus,
        D::PhoneNumber,
        phone_parenthesize(60, 3, seed + 4),
        "(734) 422-8073",
        "'('<D>3')'' '<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-phone-5",
        S::SyGus,
        D::PhoneNumber,
        phone_parenthesize(40, 4, seed + 5),
        "(734) 422-8073",
        "'('<D>3')'' '<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-phone-6",
        S::SyGus,
        D::PhoneNumber,
        phone_strip_country_code(63, seed + 6),
        "734-422-8073",
        "<D>3'-'<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-phone-10-long",
        S::SyGus,
        D::PhoneNumber,
        phone_parenthesize(100, 5, seed + 7),
        "(734) 422-8073",
        "'('<D>3')'' '<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-name-1",
        S::SyGus,
        D::HumanName,
        name_last_first_initial(60, seed + 8),
        "Yahav, E.",
        "<U><L>+','' '<U>'.'",
    );
    push(
        &mut tasks,
        "sygus-name-2",
        S::SyGus,
        D::HumanName,
        name_strip_title(70, seed + 9),
        "Eran Yahav",
        "<U><L>+' '<U><L>+",
    );
    push(
        &mut tasks,
        "sygus-name-3",
        S::SyGus,
        D::HumanName,
        name_initials(50, seed + 10),
        "E.Y.",
        "<U>'.'<U>'.'",
    );
    push(
        &mut tasks,
        "sygus-name-4",
        S::SyGus,
        D::HumanName,
        name_last_first_initial(40, seed + 11),
        "Yahav, E.",
        "<U><L>+','' '<U>'.'",
    );
    push(
        &mut tasks,
        "sygus-name-5",
        S::SyGus,
        D::HumanName,
        name_strip_title(63, seed + 12),
        "Eran Yahav",
        "<U><L>+' '<U><L>+",
    );
    push(
        &mut tasks,
        "sygus-car-1",
        S::SyGus,
        D::Identifier,
        car_id_year(60, seed + 13),
        "1986",
        "<D>4",
    );
    push(
        &mut tasks,
        "sygus-car-2",
        S::SyGus,
        D::Identifier,
        car_id_code(70, seed + 14),
        "AE86",
        "<U>2<D>2",
    );
    push(
        &mut tasks,
        "sygus-car-3",
        S::SyGus,
        D::Identifier,
        car_id_year(55, seed + 15),
        "1986",
        "<D>4",
    );
    push(
        &mut tasks,
        "sygus-car-4",
        S::SyGus,
        D::Identifier,
        car_id_code(45, seed + 16),
        "AE86",
        "<U>2<D>2",
    );
    push(
        &mut tasks,
        "sygus-univ-1",
        S::SyGus,
        D::University,
        university_state(60, seed + 17),
        "MI",
        "<U>2",
    );
    push(
        &mut tasks,
        "sygus-univ-2",
        S::SyGus,
        D::University,
        university_state(80, seed + 18),
        "MI",
        "<U>2",
    );
    push(
        &mut tasks,
        "sygus-univ-3",
        S::SyGus,
        D::University,
        university_state(50, seed + 19),
        "MI",
        "<U>2",
    );
    push(
        &mut tasks,
        "sygus-addr-1",
        S::SyGus,
        D::Address,
        address_zip(60, seed + 20),
        "92173",
        "<D>5",
    );
    push(
        &mut tasks,
        "sygus-addr-2",
        S::SyGus,
        D::Address,
        address_state_zip(70, seed + 21),
        "CA 92173",
        "<U>2' '<D>5",
    );
    push(
        &mut tasks,
        "sygus-addr-3",
        S::SyGus,
        D::Address,
        address_zip(65, seed + 22),
        "92173",
        "<D>5",
    );
    push(
        &mut tasks,
        "sygus-addr-4",
        S::SyGus,
        D::Address,
        address_state_zip(55, seed + 23),
        "CA 92173",
        "<U>2' '<D>5",
    );
    push(
        &mut tasks,
        "sygus-date-1",
        S::SyGus,
        D::Date,
        date_reformat(60, seed + 24, true),
        "2017-11-02",
        "<D>4'-'<D>2'-'<D>2",
    );
    push(
        &mut tasks,
        "sygus-date-2",
        S::SyGus,
        D::Date,
        date_reformat(75, seed + 25, false),
        "11-02-2017",
        "<D>2'-'<D>2'-'<D>4",
    );
    push(
        &mut tasks,
        "sygus-date-3",
        S::SyGus,
        D::Date,
        date_reformat(63, seed + 26, true),
        "2017-11-02",
        "<D>4'-'<D>2'-'<D>2",
    );
    push(
        &mut tasks,
        "sygus-date-4",
        S::SyGus,
        D::Date,
        date_reformat(58, seed + 27, false),
        "11-02-2017",
        "<D>2'-'<D>2'-'<D>4",
    );

    // --- FlashFill (10 tasks): small columns (avg ≈ 10 rows). ---
    push(
        &mut tasks,
        "ff-log-entry",
        S::FlashFill,
        D::LogEntry,
        log_date(10, seed + 30),
        "2017-08-13",
        "<D>4'-'<D>2'-'<D>2",
    );
    push(
        &mut tasks,
        "ff-log-level",
        S::FlashFill,
        D::LogEntry,
        log_level(10, seed + 31),
        "ERROR",
        "<U>+",
    );
    push(
        &mut tasks,
        "ff-phone",
        S::FlashFill,
        D::PhoneNumber,
        phone_normalize(12, 3, seed + 32),
        "734-422-8073",
        "<D>3'-'<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "ff-name-ex9",
        S::FlashFill,
        D::HumanName,
        name_last_first_initial(10, seed + 33),
        "Yahav, E.",
        "<U><L>+','' '<U>'.'",
    );
    push(
        &mut tasks,
        "ff-name-ex11",
        S::FlashFill,
        D::HumanName,
        name_strip_title(10, seed + 34),
        "Eran Yahav",
        "<U><L>+' '<U><L>+",
    );
    push(
        &mut tasks,
        "ff-date",
        S::FlashFill,
        D::Date,
        date_reformat(10, seed + 35, true),
        "2017-11-02",
        "<D>4'-'<D>2'-'<D>2",
    );
    push(
        &mut tasks,
        "ff-file-dir",
        S::FlashFill,
        D::FilePath,
        file_extension(10, seed + 36),
        "pdf",
        "<L>+",
    );
    push(
        &mut tasks,
        "ff-url",
        S::FlashFill,
        D::Url,
        url_product_id(10, seed + 37),
        "42",
        "<D>+",
    );
    push(
        &mut tasks,
        "ff-product",
        S::FlashFill,
        D::ProductName,
        product_id(11, seed + 38),
        "Widget-2000",
        "<U><L>+'-'<D>+",
    );
    push(
        &mut tasks,
        "ff-currency",
        S::FlashFill,
        D::Currency,
        currency_normalize(10, seed + 39),
        "USD 1234",
        "'USD '<D>+",
    );

    // --- BlinkFill (4 tasks, avg ≈ 11 rows). ---
    push(
        &mut tasks,
        "bf-medical-ex3",
        S::BlinkFill,
        D::Identifier,
        medical_codes(12, seed + 40),
        "[CPT-11536]",
        "'['<U>+'-'<D>+']'",
    );
    push(
        &mut tasks,
        "bf-city-state",
        S::BlinkFill,
        D::University,
        university_state(11, seed + 41),
        "MI",
        "<U>2",
    );
    push(
        &mut tasks,
        "bf-name",
        S::BlinkFill,
        D::HumanName,
        name_initials(10, seed + 42),
        "E.Y.",
        "<U>'.'<U>'.'",
    );
    push(
        &mut tasks,
        "bf-product-id",
        S::BlinkFill,
        D::ProductName,
        product_id(10, seed + 43),
        "Widget-2000",
        "<U><L>+'-'<D>+",
    );

    // --- PredProg (3 tasks, ≈ 10 rows). ---
    push(
        &mut tasks,
        "pp-name",
        S::PredProg,
        D::HumanName,
        name_last_first_initial(10, seed + 44),
        "Yahav, E.",
        "<U><L>+','' '<U>'.'",
    );
    push(
        &mut tasks,
        "pp-address-ex3",
        S::PredProg,
        D::Address,
        address_state_zip(10, seed + 45),
        "CA 92173",
        "<U>2' '<D>5",
    );
    push(
        &mut tasks,
        "pp-address-zip",
        S::PredProg,
        D::Address,
        address_zip(10, seed + 46),
        "92173",
        "<D>5",
    );

    // --- PROSE (3 tasks, avg ≈ 39 rows). ---
    push(
        &mut tasks,
        "prose-email",
        S::Prose,
        D::Email,
        email_domain(40, seed + 47),
        "gmail.com",
        "<L>+'.'<L>+",
    );
    push(
        &mut tasks,
        "prose-country-number",
        S::Prose,
        D::PhoneNumber,
        phone_strip_country_code(40, seed + 48),
        "734-422-8073",
        "<D>3'-'<D>3'-'<D>4",
    );
    push(
        &mut tasks,
        "prose-popl-13",
        S::Prose,
        D::University,
        university_state(38, seed + 49),
        "MI",
        "<U>2",
    );

    debug_assert_eq!(tasks.len(), 47);
    tasks
}

/// Summary statistics of a group of tasks (one row of Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteStats {
    /// Source label.
    pub source: String,
    /// Number of tasks.
    pub tests: usize,
    /// Average rows per task.
    pub avg_size: f64,
    /// Average input length (characters).
    pub avg_len: f64,
    /// Maximum input length (characters).
    pub max_len: usize,
}

/// Compute the per-source rows of Table 6 (plus an "Overall" row).
pub fn suite_stats(tasks: &[BenchmarkTask]) -> Vec<SuiteStats> {
    let sources = [
        TaskSource::SyGus,
        TaskSource::FlashFill,
        TaskSource::BlinkFill,
        TaskSource::PredProg,
        TaskSource::Prose,
    ];
    let mut rows: Vec<SuiteStats> = sources
        .iter()
        .map(|s| stats_for(tasks.iter().filter(|t| t.source == *s), s.name()))
        .collect();
    rows.push(stats_for(tasks.iter(), "Overall"));
    rows
}

fn stats_for<'a>(tasks: impl Iterator<Item = &'a BenchmarkTask>, label: &str) -> SuiteStats {
    let tasks: Vec<&BenchmarkTask> = tasks.collect();
    let tests = tasks.len();
    let avg_size = if tests == 0 {
        0.0
    } else {
        tasks.iter().map(|t| t.size()).sum::<usize>() as f64 / tests as f64
    };
    let avg_len = if tests == 0 {
        0.0
    } else {
        tasks.iter().map(|t| t.avg_len()).sum::<f64>() / tests as f64
    };
    let max_len = tasks.iter().map(|t| t.max_len()).max().unwrap_or(0);
    SuiteStats {
        source: label.to_string(),
        tests,
        avg_size,
        avg_len,
        max_len,
    }
}

/// The three explainability tasks of Table 5: human name (task 1), address
/// (task 2), phone number (task 3, the SyGuS "phone-10-long" scenario).
pub fn explainability_tasks(seed: u64) -> Vec<BenchmarkTask> {
    vec![
        rows_to_task(
            1,
            "task1-human-name",
            TaskSource::FlashFill,
            DataType::HumanName,
            name_last_first_initial(10, seed + 100),
            "Yahav, E.",
            "<U><L>+','' '<U>'.'",
        ),
        rows_to_task(
            2,
            "task2-address",
            TaskSource::PredProg,
            DataType::Address,
            address_state_zip(10, seed + 101),
            "CA 92173",
            "<U>2' '<D>5",
        ),
        rows_to_task(
            3,
            "task3-phone",
            TaskSource::SyGus,
            DataType::PhoneNumber,
            phone_parenthesize(100, 4, seed + 102),
            "(734) 422-8073",
            "'('<D>3')'' '<D>3'-'<D>4",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_47_tasks_with_table_6_source_mix() {
        let suite = benchmark_suite(0);
        assert_eq!(suite.len(), 47);
        let count = |s: TaskSource| suite.iter().filter(|t| t.source == s).count();
        assert_eq!(count(TaskSource::SyGus), 27);
        assert_eq!(count(TaskSource::FlashFill), 10);
        assert_eq!(count(TaskSource::BlinkFill), 4);
        assert_eq!(count(TaskSource::PredProg), 3);
        assert_eq!(count(TaskSource::Prose), 3);
        // Ids are 1..=47 and unique.
        let ids: Vec<usize> = suite.iter().map(|t| t.id).collect();
        assert_eq!(ids, (1..=47).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_is_internally_consistent() {
        for task in benchmark_suite(0) {
            assert_eq!(task.inputs.len(), task.expected.len(), "{}", task.name);
            assert!(!task.inputs.is_empty(), "{}", task.name);
            assert!(
                task.already_correct() > 0,
                "task {} needs at least one row already in the target format",
                task.name
            );
            // The target example matches the pattern of the expected rows that
            // are already correct.
            let target = task.target_pattern();
            let conforming = task.expected.iter().filter(|e| target.matches(e)).count();
            assert!(
                conforming * 2 >= task.expected.len(),
                "task {}: most expected outputs should match the target pattern ({} of {})",
                task.name,
                conforming,
                task.expected.len()
            );
        }
    }

    #[test]
    fn suite_stats_resemble_table_6() {
        let suite = benchmark_suite(0);
        let stats = suite_stats(&suite);
        assert_eq!(stats.len(), 6);
        let by_label = |label: &str| stats.iter().find(|s| s.source == label).unwrap().clone();
        // Source mix sizes mirror Table 6 exactly.
        assert_eq!(by_label("SyGus").tests, 27);
        assert_eq!(by_label("FlashFill").tests, 10);
        assert_eq!(by_label("Overall").tests, 47);
        // SyGuS columns are much larger than FlashFill columns, as in the paper
        // (63.3 vs 10.3 rows on average).
        assert!(by_label("SyGus").avg_size > 40.0);
        assert!(by_label("FlashFill").avg_size < 15.0);
        // Overall average row length is in the same ballpark (paper: 13.0).
        let overall = by_label("Overall");
        assert!(overall.avg_len > 5.0 && overall.avg_len < 30.0);
        assert!(overall.max_len >= 20);
    }

    #[test]
    fn suite_is_deterministic_per_seed() {
        let a = benchmark_suite(5);
        let b = benchmark_suite(5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.inputs, y.inputs);
            assert_eq!(x.expected, y.expected);
        }
        let c = benchmark_suite(6);
        assert!(a.iter().zip(&c).any(|(x, y)| x.inputs != y.inputs));
    }

    #[test]
    fn explainability_tasks_match_table_5() {
        let tasks = explainability_tasks(0);
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].data_type, DataType::HumanName);
        assert_eq!(tasks[1].data_type, DataType::Address);
        assert_eq!(tasks[2].data_type, DataType::PhoneNumber);
        assert_eq!(tasks[0].size(), 10);
        assert_eq!(tasks[1].size(), 10);
        assert_eq!(tasks[2].size(), 100);
        // Table 5: task sizes 10 / 10 / 100 and phone strings around length 14.
        assert!(tasks[2].avg_len() > 10.0 && tasks[2].avg_len() < 20.0);
    }

    #[test]
    fn target_examples_match_expected_formats() {
        for task in benchmark_suite(0) {
            let target = task.target_pattern();
            assert!(
                target.matches(&task.target_example),
                "target example of {} must match its own pattern",
                task.name
            );
        }
    }

    #[test]
    fn medical_task_reproduces_example_5_shapes() {
        let suite = benchmark_suite(0);
        let medical = suite.iter().find(|t| t.name == "bf-medical-ex3").unwrap();
        assert!(medical.inputs.iter().any(|i| i.starts_with("CPT-")));
        assert!(medical
            .inputs
            .iter()
            .any(|i| i.starts_with("[CPT-") && !i.ends_with(']')));
        assert!(medical
            .inputs
            .iter()
            .any(|i| i.starts_with("[CPT-") && i.ends_with(']')));
        assert!(medical
            .expected
            .iter()
            .all(|e| e.starts_with("[CPT-") && e.ends_with(']')));
    }

    #[test]
    fn task_metric_helpers() {
        let task = &benchmark_suite(0)[0];
        assert!(task.avg_len() > 0.0);
        assert!(task.max_len() >= task.avg_len() as usize);
        assert!(task.size() >= task.already_correct());
    }
}
