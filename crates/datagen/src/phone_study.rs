//! The phone-number datasets of the §7.2 verification-effort user study.
//!
//! The paper samples a column of 331 messy phone numbers from the NYC "Times
//! Square Food & Beverage Locations" open data set into three test cases —
//! 10 rows / 2 patterns, 100 rows / 4 patterns, 300 rows / 6 patterns — and
//! asks users to normalize everything to `<D>3-<D>3-<D>4`. The raw file is
//! not redistributed here; [`study_case`] regenerates columns with the same
//! sizes, the same six formats and a similar frequency skew.

use clx_pattern::{tokenize, Pattern};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::generators::{DataGenerator, PhoneFormat};

/// One dataset of the verification-effort study.
#[derive(Debug, Clone)]
pub struct PhoneStudyCase {
    /// Display name, e.g. `"300(6)"`.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of distinct phone formats (patterns).
    pub pattern_count: usize,
    /// The column values.
    pub data: Vec<String>,
    /// An example value in the desired target format.
    pub target_example: String,
}

impl PhoneStudyCase {
    /// The target pattern of the study task (`<D>3-<D>3-<D>4`).
    pub fn target_pattern(&self) -> Pattern {
        tokenize(&self.target_example)
    }
}

/// Frequency weights of the six study formats, mimicking the skew of the
/// original column (most rows in one or two dominant formats, a long tail of
/// rarer ones — compare Figure 3's cluster sizes).
const STUDY_WEIGHTS: [usize; 6] = [45, 30, 12, 8, 3, 2];

/// Build one study dataset with `rows` rows over the first `pattern_count`
/// of the six study formats.
pub fn study_case(rows: usize, pattern_count: usize, seed: u64) -> PhoneStudyCase {
    assert!(
        (1..=PhoneFormat::STUDY_FORMATS.len()).contains(&pattern_count),
        "pattern_count must be between 1 and 6"
    );
    let mut generator = DataGenerator::new(seed);
    let formats = &PhoneFormat::STUDY_FORMATS[..pattern_count];
    let weights = &STUDY_WEIGHTS[..pattern_count];
    let data = generator.phone_column(rows, formats, weights);
    PhoneStudyCase {
        name: format!("{rows}({pattern_count})"),
        rows,
        pattern_count,
        data,
        target_example: "734-422-8073".to_string(),
    }
}

/// The three datasets used in the paper's §7.2 study: `10(2)`, `100(4)`,
/// `300(6)`.
pub fn study_cases(seed: u64) -> Vec<PhoneStudyCase> {
    vec![
        study_case(10, 2, seed),
        study_case(100, 4, seed + 1),
        study_case(300, 6, seed + 2),
    ]
}

/// A large-scale variant (the motivating example talks about 10,000 phone
/// numbers) for the latency benchmarks.
pub fn large_case(rows: usize, seed: u64) -> PhoneStudyCase {
    study_case(rows, 6, seed)
}

/// A duplicate-heavy column: `rows` rows drawn (with the study's format
/// skew) from a pool of at most `distinct` distinct values, plus the `N/A`
/// noise value. Real-world columns repeat values constantly — a CRM export
/// holds the same office number thousands of times — and this is the
/// workload where the shared column data plane (dedup + cached token
/// streams) turns O(rows) profiling into O(distinct).
pub fn duplicate_heavy_case(rows: usize, distinct: usize, seed: u64) -> PhoneStudyCase {
    assert!(distinct >= 2, "need at least one phone value plus noise");
    let mut generator = DataGenerator::new(seed);
    let mut pool =
        generator.phone_column(distinct - 1, &PhoneFormat::STUDY_FORMATS, &STUDY_WEIGHTS);
    pool.push("N/A".to_string());
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9));
    let data = (0..rows)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect();
    PhoneStudyCase {
        name: format!("{rows}x{distinct}dup"),
        rows,
        pattern_count: PhoneFormat::STUDY_FORMATS.len(),
        data,
        target_example: "734-422-8073".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn study_cases_match_paper_sizes() {
        let cases = study_cases(42);
        let sizes: Vec<(usize, usize)> = cases.iter().map(|c| (c.rows, c.pattern_count)).collect();
        assert_eq!(sizes, vec![(10, 2), (100, 4), (300, 6)]);
        for c in &cases {
            assert_eq!(c.data.len(), c.rows);
            assert_eq!(c.name, format!("{}({})", c.rows, c.pattern_count));
        }
    }

    #[test]
    fn pattern_counts_are_exact() {
        for case in study_cases(7) {
            let distinct: HashSet<String> =
                case.data.iter().map(|v| tokenize(v).to_string()).collect();
            assert_eq!(
                distinct.len(),
                case.pattern_count,
                "case {} must have exactly {} patterns",
                case.name,
                case.pattern_count
            );
        }
    }

    #[test]
    fn duplicate_heavy_case_bounds_distinct_values() {
        let case = duplicate_heavy_case(10_000, 100, 3);
        assert_eq!(case.data.len(), 10_000);
        let distinct: HashSet<&String> = case.data.iter().collect();
        assert!(distinct.len() <= 100, "{} distinct", distinct.len());
        // Heavy duplication: far fewer distinct values than rows.
        assert!(distinct.len() >= 50);
        assert!(case.data.iter().any(|v| v == "N/A"));
        // Deterministic per seed.
        assert_eq!(case.data, duplicate_heavy_case(10_000, 100, 3).data);
        assert_ne!(case.data, duplicate_heavy_case(10_000, 100, 4).data);
    }

    #[test]
    fn target_pattern_is_dashed_phone() {
        let case = study_case(10, 2, 1);
        assert_eq!(case.target_pattern().to_string(), "<D>3'-'<D>3'-'<D>4");
    }

    #[test]
    fn dominant_format_has_most_rows() {
        let case = study_case(300, 6, 99);
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for v in &case.data {
            *counts.entry(tokenize(v).to_string()).or_insert(0) += 1;
        }
        let dominant = counts.get("'('<D>3')'' '<D>3'-'<D>4").copied().unwrap_or(0);
        assert!(
            dominant > 300 / 6,
            "the paren-space format should dominate, got {dominant}"
        );
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        assert_eq!(study_case(50, 4, 5).data, study_case(50, 4, 5).data);
        assert_ne!(study_case(50, 4, 5).data, study_case(50, 4, 6).data);
    }

    #[test]
    fn large_case_scales() {
        let case = large_case(10_000, 3);
        assert_eq!(case.data.len(), 10_000);
        assert_eq!(case.pattern_count, 6);
    }

    #[test]
    #[should_panic(expected = "pattern_count")]
    fn zero_patterns_rejected() {
        study_case(10, 0, 1);
    }
}
