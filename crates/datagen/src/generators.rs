//! Deterministic, seeded generators for the data types used throughout the
//! CLX evaluation (phone numbers, human names, addresses, dates, ids, ...).
//!
//! The paper evaluates on a mix of public data (the NYC "Times Square Food &
//! Beverage Locations" phone column) and benchmark tasks from SyGuS,
//! FlashFill, BlinkFill, PredProg and PROSE. None of those data files ship
//! with this repository, so the generators below produce columns with the
//! same formats, heterogeneity and size distributions; every generator is
//! seeded so experiments are exactly reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded data generator.
#[derive(Debug)]
pub struct DataGenerator {
    rng: StdRng,
}

/// The phone-number formats observed in the paper's motivating example
/// (Figures 1 and 3) plus the noise/extension formats its anecdotes mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhoneFormat {
    /// `(734) 645-8397`
    ParenSpace,
    /// `(734)586-7252`
    Paren,
    /// `734-422-8073`
    Dashes,
    /// `734.236.3466`
    Dots,
    /// `7342363466`
    Bare,
    /// `734 236 3466`
    Spaces,
    /// `+1 734-236-3466`
    CountryCode,
    /// `N/A` (noise)
    Missing,
}

impl PhoneFormat {
    /// The first six formats, in decreasing frequency as used by the §7.2
    /// user-study datasets.
    pub const STUDY_FORMATS: [PhoneFormat; 6] = [
        PhoneFormat::ParenSpace,
        PhoneFormat::Dashes,
        PhoneFormat::Paren,
        PhoneFormat::Dots,
        PhoneFormat::Bare,
        PhoneFormat::Spaces,
    ];

    /// Render a 10-digit number (area, exchange, line) in this format.
    pub fn render(&self, area: u16, exchange: u16, line: u16) -> String {
        match self {
            PhoneFormat::ParenSpace => format!("({area:03}) {exchange:03}-{line:04}"),
            PhoneFormat::Paren => format!("({area:03}){exchange:03}-{line:04}"),
            PhoneFormat::Dashes => format!("{area:03}-{exchange:03}-{line:04}"),
            PhoneFormat::Dots => format!("{area:03}.{exchange:03}.{line:04}"),
            PhoneFormat::Bare => format!("{area:03}{exchange:03}{line:04}"),
            PhoneFormat::Spaces => format!("{area:03} {exchange:03} {line:04}"),
            PhoneFormat::CountryCode => format!("+1 {area:03}-{exchange:03}-{line:04}"),
            PhoneFormat::Missing => "N/A".to_string(),
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "Eran", "Bill", "Oege", "Sumit", "Rishabh", "Jane", "Alan", "Grace", "Ada", "Linus", "Barbara",
    "Edsger", "Donald", "Margaret", "Dana", "Tim", "Vint", "Radia", "Ken", "Dennis",
];

const LAST_NAMES: &[&str] = &[
    "Yahav", "Gates", "Moor", "Gulwani", "Singh", "Doe", "Turing", "Hopper", "Lovelace",
    "Torvalds", "Liskov", "Dijkstra", "Knuth", "Hamilton", "Scott", "Lee", "Cerf", "Perlman",
    "Thompson", "Ritchie",
];

const STREET_NAMES: &[&str] = &[
    "Main St",
    "Broadway",
    "NE 36th Street",
    "South Michigan Ave",
    "Elm Street",
    "Oak Avenue",
    "7th Ave",
    "Sunset Blvd",
    "Park Road",
    "High Street",
];

const CITIES: &[&str] = &[
    "San Diego",
    "Redmond",
    "Chicago",
    "Ann Arbor",
    "Berkeley",
    "New York",
    "Austin",
    "Seattle",
    "Boston",
    "Denver",
];

const STATES: &[&str] = &["CA", "WA", "IL", "MI", "NY", "TX", "MA", "CO"];

const UNIVERSITIES: &[&str] = &[
    "University of Michigan",
    "UC Berkeley",
    "MIT",
    "Stanford University",
    "CMU",
    "University of Washington",
    "Cornell University",
    "Princeton University",
];

const CAR_MAKES: &[&str] = &["Toyota", "Honda", "Ford", "Tesla", "BMW", "Audi", "Subaru"];

const DOMAINS: &[&str] = &[
    "gmail.com",
    "yahoo.org",
    "umich.edu",
    "example.com",
    "trifacta.com",
];

const PRODUCTS: &[&str] = &[
    "Widget",
    "Gadget",
    "Sprocket",
    "Flange",
    "Gizmo",
    "Doohickey",
    "Contraption",
];

impl DataGenerator {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        DataGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a>(&mut self, options: &'a [&'a str]) -> &'a str {
        options.choose(&mut self.rng).expect("non-empty options")
    }

    /// A 10-digit phone number rendered in `format`.
    pub fn phone(&mut self, format: PhoneFormat) -> String {
        let area = self.rng.gen_range(200..990);
        let exchange = self.rng.gen_range(200..999);
        let line = self.rng.gen_range(0..10_000);
        format.render(area, exchange, line)
    }

    /// A column of `n` phone numbers drawn from `formats` using the given
    /// frequency weights (parallel to `formats`).
    pub fn phone_column(
        &mut self,
        n: usize,
        formats: &[PhoneFormat],
        weights: &[usize],
    ) -> Vec<String> {
        assert_eq!(
            formats.len(),
            weights.len(),
            "formats and weights must align"
        );
        let total: usize = weights.iter().sum();
        let mut out = Vec::with_capacity(n);
        // First guarantee at least one row per format (matching the paper's
        // "k patterns" dataset descriptions), then fill by weight.
        for format in formats {
            if out.len() < n {
                out.push(self.phone(*format));
            }
        }
        while out.len() < n {
            let mut pick = self.rng.gen_range(0..total.max(1));
            let mut chosen = formats[0];
            for (format, w) in formats.iter().zip(weights) {
                if pick < *w {
                    chosen = *format;
                    break;
                }
                pick -= w;
            }
            out.push(self.phone(chosen));
        }
        out.shuffle(&mut self.rng);
        out
    }

    /// A human first/last name pair.
    pub fn name_pair(&mut self) -> (String, String) {
        (
            self.pick(FIRST_NAMES).to_string(),
            self.pick(LAST_NAMES).to_string(),
        )
    }

    /// `"First Last"`.
    pub fn full_name(&mut self) -> String {
        let (f, l) = self.name_pair();
        format!("{f} {l}")
    }

    /// A name with a title prefix, e.g. `"Dr. Eran Yahav"`.
    pub fn titled_name(&mut self) -> String {
        let title = *["Dr.", "Mr.", "Ms.", "Prof."]
            .choose(&mut self.rng)
            .expect("non-empty");
        format!("{title} {}", self.full_name())
    }

    /// A US-style street address, e.g. `"155 Main St, San Diego, CA 92173"`.
    pub fn address(&mut self) -> String {
        let number = self.rng.gen_range(1..9999);
        let street = self.pick(STREET_NAMES);
        let city = self.pick(CITIES);
        let state = self.pick(STATES);
        let zip = self.rng.gen_range(10000..99999);
        format!("{number} {street}, {city}, {state} {zip}")
    }

    /// A medical billing code in one of the messy formats of Example 5.
    pub fn medical_code(&mut self, style: usize) -> String {
        let digits = self.rng.gen_range(100..99999);
        match style % 4 {
            0 => format!("CPT-{digits:05}"),
            1 => format!("[CPT-{digits:05}"),
            2 => format!("[CPT-{digits:05}]"),
            _ => format!("CPT{digits:03}"),
        }
    }

    /// A date as `(year, month, day)`.
    pub fn date_parts(&mut self) -> (u16, u8, u8) {
        (
            self.rng.gen_range(1990..2025),
            self.rng.gen_range(1..13),
            self.rng.gen_range(1..29),
        )
    }

    /// A date rendered as `MM/DD/YYYY`.
    pub fn date_mdy(&mut self) -> String {
        let (y, m, d) = self.date_parts();
        format!("{m:02}/{d:02}/{y}")
    }

    /// An email address, e.g. `"Eran.Yahav@umich.edu"`.
    pub fn email(&mut self) -> String {
        let (f, l) = self.name_pair();
        let domain = self.pick(DOMAINS);
        format!("{f}.{l}@{domain}")
    }

    /// A URL, e.g. `"https://example.com/products/widget-42"`.
    pub fn url(&mut self) -> String {
        let domain = self.pick(DOMAINS);
        let product = self.pick(PRODUCTS).to_lowercase();
        let id = self.rng.gen_range(1..999);
        format!("https://{domain}/products/{product}-{id}")
    }

    /// A product name with id, e.g. `"Widget 2000 rev3"`.
    pub fn product(&mut self) -> String {
        let name = self.pick(PRODUCTS);
        let num = self.rng.gen_range(100..9999);
        let rev = self.rng.gen_range(1..9);
        format!("{name} {num} rev{rev}")
    }

    /// A car model id, e.g. `"Toyota-AE86-1986"`.
    pub fn car_model_id(&mut self) -> String {
        let make = self.pick(CAR_MAKES);
        let a = (b'A' + self.rng.gen_range(0..26)) as char;
        let b = (b'A' + self.rng.gen_range(0..26)) as char;
        let num = self.rng.gen_range(10..99);
        let year = self.rng.gen_range(1985..2024);
        format!("{make}-{a}{b}{num}-{year}")
    }

    /// A university affiliation string, e.g.
    /// `"University of Michigan, Ann Arbor, MI"`.
    pub fn university(&mut self) -> String {
        let uni = self.pick(UNIVERSITIES);
        let city = self.pick(CITIES);
        let state = self.pick(STATES);
        format!("{uni}, {city}, {state}")
    }

    /// A server log entry, e.g.
    /// `"2017-08-13 10:32:01 ERROR disk full on node7"`.
    pub fn log_entry(&mut self) -> String {
        let (y, m, d) = self.date_parts();
        let hh = self.rng.gen_range(0..24);
        let mm = self.rng.gen_range(0..60);
        let ss = self.rng.gen_range(0..60);
        let level = *["INFO", "WARN", "ERROR"]
            .choose(&mut self.rng)
            .expect("non-empty");
        let node = self.rng.gen_range(1..32);
        format!("{y}-{m:02}-{d:02} {hh:02}:{mm:02}:{ss:02} {level} disk event on node{node}")
    }

    /// A file path, e.g. `"/home/alice/reports/q3.pdf"`.
    pub fn file_path(&mut self) -> String {
        let user = self.pick(FIRST_NAMES).to_lowercase();
        let dir = *["reports", "data", "images", "src"]
            .choose(&mut self.rng)
            .expect("non-empty");
        let stem = self.pick(PRODUCTS).to_lowercase();
        let ext = *["pdf", "csv", "txt", "jpeg"]
            .choose(&mut self.rng)
            .expect("non-empty");
        format!("/home/{user}/{dir}/{stem}.{ext}")
    }

    /// A currency amount string in one of several formats, e.g. `"USD 1,234"`.
    pub fn currency(&mut self, style: usize) -> String {
        let amount = self.rng.gen_range(10..100_000);
        match style % 3 {
            0 => format!("USD {amount}"),
            1 => format!("${amount}"),
            _ => format!("{amount} dollars"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    #[test]
    fn determinism_same_seed_same_output() {
        let mut a = DataGenerator::new(7);
        let mut b = DataGenerator::new(7);
        for _ in 0..20 {
            assert_eq!(
                a.phone(PhoneFormat::ParenSpace),
                b.phone(PhoneFormat::ParenSpace)
            );
            assert_eq!(a.full_name(), b.full_name());
            assert_eq!(a.address(), b.address());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DataGenerator::new(1);
        let mut b = DataGenerator::new(2);
        let va: Vec<String> = (0..10).map(|_| a.phone(PhoneFormat::Dashes)).collect();
        let vb: Vec<String> = (0..10).map(|_| b.phone(PhoneFormat::Dashes)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn phone_formats_match_figure_3_patterns() {
        let mut g = DataGenerator::new(3);
        assert_eq!(
            tokenize(&g.phone(PhoneFormat::ParenSpace)).to_string(),
            "'('<D>3')'' '<D>3'-'<D>4"
        );
        assert_eq!(
            tokenize(&g.phone(PhoneFormat::Paren)).to_string(),
            "'('<D>3')'<D>3'-'<D>4"
        );
        assert_eq!(
            tokenize(&g.phone(PhoneFormat::Dashes)).to_string(),
            "<D>3'-'<D>3'-'<D>4"
        );
        assert_eq!(
            tokenize(&g.phone(PhoneFormat::Dots)).to_string(),
            "<D>3'.'<D>3'.'<D>4"
        );
        assert_eq!(tokenize(&g.phone(PhoneFormat::Bare)).to_string(), "<D>10");
        assert_eq!(
            tokenize(&g.phone(PhoneFormat::CountryCode)).to_string(),
            "'+'<D>' '<D>3'-'<D>3'-'<D>4"
        );
        assert_eq!(g.phone(PhoneFormat::Missing), "N/A");
    }

    #[test]
    fn phone_column_respects_size_and_format_count() {
        let mut g = DataGenerator::new(11);
        let formats = &PhoneFormat::STUDY_FORMATS[..4];
        let column = g.phone_column(100, formats, &[70, 15, 10, 5]);
        assert_eq!(column.len(), 100);
        let distinct: std::collections::HashSet<String> =
            column.iter().map(|v| tokenize(v).to_string()).collect();
        assert_eq!(distinct.len(), 4, "all requested formats appear");
    }

    #[test]
    fn phone_column_small_sizes_still_cover_formats() {
        let mut g = DataGenerator::new(5);
        let column = g.phone_column(2, &PhoneFormat::STUDY_FORMATS[..2], &[1, 1]);
        assert_eq!(column.len(), 2);
        let distinct: std::collections::HashSet<String> =
            column.iter().map(|v| tokenize(v).to_string()).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn generated_values_have_expected_shapes() {
        let mut g = DataGenerator::new(13);
        assert!(g.email().contains('@'));
        assert!(g.url().starts_with("https://"));
        assert!(g.address().contains(", "));
        assert!(g.titled_name().contains(". ") || g.titled_name().contains("Prof."));
        assert!(g.log_entry().contains(" on node"));
        assert!(g.file_path().starts_with("/home/"));
        assert!(g.car_model_id().contains('-'));
        assert!(g.university().contains(','));
        assert!(g.product().contains("rev"));
        let date = g.date_mdy();
        assert_eq!(tokenize(&date).to_string(), "<D>2'/'<D>2'/'<D>4");
    }

    #[test]
    fn medical_code_styles_cycle() {
        let mut g = DataGenerator::new(17);
        let styles: Vec<String> = (0..4).map(|s| g.medical_code(s)).collect();
        assert!(styles[0].starts_with("CPT-"));
        assert!(styles[1].starts_with("[CPT-"));
        assert!(styles[2].ends_with(']'));
        assert!(!styles[3].contains('-'));
    }

    #[test]
    fn currency_styles() {
        let mut g = DataGenerator::new(19);
        assert!(g.currency(0).starts_with("USD "));
        assert!(g.currency(1).starts_with('$'));
        assert!(g.currency(2).ends_with("dollars"));
    }

    #[test]
    fn date_parts_in_range() {
        let mut g = DataGenerator::new(23);
        for _ in 0..50 {
            let (y, m, d) = g.date_parts();
            assert!((1990..2025).contains(&y));
            assert!((1..=12).contains(&m));
            assert!((1..=28).contains(&d));
        }
    }
}
