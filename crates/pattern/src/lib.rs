//! # clx-pattern
//!
//! The pattern language underlying CLX ("Cluster–Label–Transform") data
//! transformation, as defined in Section 3.1 and Section 4.1 of
//! *CLX: Towards verifiable PBE data transformation* (Jin et al.).
//!
//! A **data pattern** is a high-level description of a string value: a sequence
//! of [`Token`]s, each a [`TokenClass`] (digit, lower, upper, alpha,
//! alpha-numeric, or a literal) paired with a [`Quantifier`] giving the number
//! of occurrences (a natural number, or `+` for "at least one").
//!
//! This crate provides:
//!
//! * the token and pattern data model ([`TokenClass`], [`Quantifier`],
//!   [`Token`], [`Pattern`]);
//! * the [`tokenize`] function that derives the most-specific pattern of a raw
//!   string (the *initial clustering* step of the paper);
//! * a [`parser`](parse_pattern) for the textual pattern syntax used throughout
//!   the paper (e.g. `<U><L>2<D>3'@'<L>5'.'<L>3`);
//! * pattern-level operations used by the clustering and synthesis layers:
//!   token frequency `Q` (Eq. 1), generalization (`is_generalization_of`),
//!   matching raw strings against patterns, and splitting a string into the
//!   per-token slices a pattern describes;
//! * rendering into the "natural-language-like" regular expression syntax of
//!   Wrangler/Trifacta ([`wrangler`]) and into the concrete regex syntax
//!   consumed by the `clx-regex` engine;
//! * a bit-parallel multi-pattern [`automaton`] (shift-and) shared by the
//!   engine's fused cold-path dispatch and the static analyzer's
//!   language-level checks (emptiness, intersection, subsumption).
//!
//! # Example
//!
//! ```
//! use clx_pattern::{tokenize, Pattern, TokenClass};
//!
//! let p = tokenize("Bob123@gmail.com");
//! assert_eq!(p.to_string(), "<U><L>2<D>3'@'<L>5'.'<L>3");
//! assert_eq!(p.token_frequency(TokenClass::Digit), 3);
//!
//! // Patterns match exactly the strings they were derived from ...
//! assert!(p.matches("Bob123@gmail.com"));
//! // ... and any other string with the same structure.
//! assert!(p.matches("Tim456@yahoo.org"));
//! assert!(!p.matches("bob@gmail.com"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod automaton;
mod error;
mod parse;
mod pattern;
mod token;
mod tokenizer;
pub mod wrangler;

pub use error::PatternError;
pub use parse::parse_pattern;
pub use pattern::{Pattern, TokenSlice};
pub use token::{Quantifier, Token, TokenClass};
pub use tokenizer::{tokenize, tokenize_detailed, SplitTokenizer, TokenizedString};

/// All base token classes, in the fixed order used by the paper
/// (`T = [<D>, <L>, <U>, <A>, <AN>]`, Section 6.1).
pub const BASE_TOKEN_CLASSES: [TokenClass; 5] = [
    TokenClass::Digit,
    TokenClass::Lower,
    TokenClass::Upper,
    TokenClass::Alpha,
    TokenClass::AlphaNumeric,
];

/// Size of the tokenizer's leaf class alphabet: the number of base classes
/// a leaf pattern can carry (`<D>`, `<L>`, `<U>` — see
/// [`TokenClass::leaf_class_index`]). `<A>` and `<AN>` only appear in
/// generalized (parent) patterns.
pub const LEAF_CLASS_COUNT: usize = 3;
