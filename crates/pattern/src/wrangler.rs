//! Rendering patterns in the "natural-language-like" regular expression
//! syntax popularized by Wrangler / Trifacta, which is how CLX presents
//! patterns and Replace operations to end users (Figures 2–4 of the paper).
//!
//! Two renderings are provided:
//!
//! * [`pattern_to_wrangler`] — the compact cluster label shown in the
//!   pattern list, e.g. `\({digit}3\)\ {digit}3\-{digit}4`;
//! * [`pattern_to_wrangler_regex`] — the full `/^...$/` regex shown inside a
//!   suggested `Replace` operation, e.g.
//!   `/^\(({digit}{3})\)({digit}{3})\-({digit}{4})$/`, with the tokens to be
//!   extracted wrapped in capture groups.

use crate::token::{Quantifier, Token, TokenClass};
use crate::Pattern;

/// The Wrangler-style name of a base token class (`{digit}`, `{lower}`,
/// `{upper}`, `{alpha}`, `{alnum}`).
pub fn class_wrangler_name(class: &TokenClass) -> Option<&'static str> {
    match class {
        TokenClass::Digit => Some("{digit}"),
        TokenClass::Lower => Some("{lower}"),
        TokenClass::Upper => Some("{upper}"),
        TokenClass::Alpha => Some("{alpha}"),
        TokenClass::AlphaNumeric => Some("{alnum}"),
        TokenClass::Literal(_) => None,
    }
}

/// Escape a literal for display in the Wrangler syntax: every character is
/// preceded by a backslash, as in `\(` or `\ ` (Figure 2 of the paper).
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        out.push('\\');
        out.push(c);
    }
    out
}

fn render_token(token: &Token, braced_quantifier: bool) -> String {
    match &token.class {
        TokenClass::Literal(s) => escape_literal(s),
        base => {
            let name = class_wrangler_name(base).expect("base class has a wrangler name");
            match token.quantifier {
                Quantifier::Exact(1) => name.to_string(),
                Quantifier::Exact(n) if braced_quantifier => format!("{name}{{{n}}}"),
                Quantifier::Exact(n) => format!("{name}{n}"),
                Quantifier::OneOrMore => format!("{name}+"),
            }
        }
    }
}

/// Render a pattern as the compact Wrangler-style label shown in the pattern
/// cluster list, e.g. `\({digit}3\)\ {digit}3\-{digit}4`.
pub fn pattern_to_wrangler(pattern: &Pattern) -> String {
    pattern.iter().map(|t| render_token(t, false)).collect()
}

/// Render a pattern as a full `/^...$/` Wrangler regular expression, with the
/// (zero-based) token indices in `grouped` wrapped in capture groups, e.g.
/// `/^\(({digit}{3})\)({digit}{3})\-({digit}{4})$/`.
pub fn pattern_to_wrangler_regex(pattern: &Pattern, grouped: &[usize]) -> String {
    let mut out = String::from("/^");
    for (i, t) in pattern.iter().enumerate() {
        if grouped.contains(&i) {
            out.push('(');
            out.push_str(&render_token(t, true));
            out.push(')');
        } else {
            out.push_str(&render_token(t, true));
        }
    }
    out.push_str("$/");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    #[test]
    fn figure_2_pattern_label() {
        let p = tokenize("(734) 645-8397");
        assert_eq!(
            pattern_to_wrangler(&p),
            "\\({digit}3\\)\\ {digit}3\\-{digit}4"
        );
    }

    #[test]
    fn figure_3_pattern_labels() {
        assert_eq!(
            pattern_to_wrangler(&tokenize("(734)586-7252")),
            "\\({digit}3\\){digit}3\\-{digit}4"
        );
        assert_eq!(
            pattern_to_wrangler(&tokenize("734-422-8073")),
            "{digit}3\\-{digit}3\\-{digit}4"
        );
        assert_eq!(
            pattern_to_wrangler(&tokenize("734.236.3466")),
            "{digit}3\\.{digit}3\\.{digit}4"
        );
    }

    #[test]
    fn figure_4_replace_regex() {
        let p = tokenize("(734)586-7252");
        // tokens: '(' <D>3 ')' <D>3 '-' <D>4 ; groups on the three digit runs
        assert_eq!(
            pattern_to_wrangler_regex(&p, &[1, 3, 5]),
            "/^\\(({digit}{3})\\)({digit}{3})\\-({digit}{4})$/"
        );
    }

    #[test]
    fn plus_and_single_quantifiers() {
        let p = crate::parse_pattern("<U><L>+'@'<AN>+").unwrap();
        assert_eq!(pattern_to_wrangler(&p), "{upper}{lower}+\\@{alnum}+");
        assert_eq!(
            pattern_to_wrangler_regex(&p, &[]),
            "/^{upper}{lower}+\\@{alnum}+$/"
        );
    }

    #[test]
    fn class_names() {
        assert_eq!(class_wrangler_name(&TokenClass::Digit), Some("{digit}"));
        assert_eq!(class_wrangler_name(&TokenClass::Alpha), Some("{alpha}"));
        assert_eq!(class_wrangler_name(&TokenClass::literal("-")), None);
    }

    #[test]
    fn empty_pattern_renders_empty() {
        assert_eq!(pattern_to_wrangler(&Pattern::empty()), "");
        assert_eq!(pattern_to_wrangler_regex(&Pattern::empty(), &[]), "/^$/");
    }
}
