use crate::pattern::{Pattern, TokenSlice};
use crate::token::{Token, TokenClass};

/// The result of tokenizing a raw string: the derived leaf [`Pattern`]
/// together with the per-token slices of the original string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizedString {
    /// The original string.
    pub raw: String,
    /// The most-specific pattern describing it.
    pub pattern: Pattern,
    /// One slice per token of `pattern`.
    pub slices: Vec<TokenSlice>,
}

/// Tokenize a raw string into its most-specific leaf pattern, following the
/// rules of Section 4.1 of the paper:
///
/// * every non-alphanumeric character becomes an individual **literal**
///   token (so `"(734) 645"` yields `'('`, `<D>3`, `')'`, `' '`, `<D>3`);
/// * maximal runs of characters of the most precise base class (`digit`,
///   `lower`, `upper`) become a single base token with a natural-number
///   quantifier;
/// * quantifiers are always natural numbers at this stage — the `+` form
///   only appears after agglomerative refinement.
///
/// # Example
///
/// ```
/// use clx_pattern::tokenize;
/// assert_eq!(tokenize("Bob123@gmail.com").to_string(),
///            "<U><L>2<D>3'@'<L>5'.'<L>3");
/// ```
pub fn tokenize(s: &str) -> Pattern {
    // Single pass, no intermediate buffers: this is the hottest function of
    // the whole system (clustering profiles every row with it, and the batch
    // engine derives its dispatch signature from it).
    let mut tokens: Vec<Token> = Vec::new();
    let mut run: Option<(TokenClass, usize)> = None;
    for c in s.chars() {
        match precise_class(c) {
            Some(class) => match &mut run {
                Some((current, len)) if *current == class => *len += 1,
                _ => {
                    if let Some((class, len)) = run.take() {
                        tokens.push(Token::base(class, len));
                    }
                    run = Some((class, 1));
                }
            },
            None => {
                if let Some((class, len)) = run.take() {
                    tokens.push(Token::base(class, len));
                }
                tokens.push(Token::literal(c.to_string()));
            }
        }
    }
    if let Some((class, len)) = run {
        tokens.push(Token::base(class, len));
    }
    Pattern::new(tokens)
}

/// Like [`tokenize`] but also returns the character slices each token covers.
pub fn tokenize_detailed(s: &str) -> TokenizedString {
    let chars: Vec<char> = s.chars().collect();
    let mut byte_offsets = Vec::with_capacity(chars.len() + 1);
    let mut off = 0usize;
    for c in &chars {
        byte_offsets.push(off);
        off += c.len_utf8();
    }
    byte_offsets.push(off);

    let mut tokens = Vec::new();
    let mut slices = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if let Some(class) = precise_class(c) {
            let start = i;
            while i < chars.len() && precise_class(chars[i]) == Some(class.clone()) {
                i += 1;
            }
            let run_len = i - start;
            slices.push((tokens.len(), start, i));
            tokens.push(Token::base(class, run_len));
        } else {
            // Non-alphanumeric characters each become an individual literal
            // token carrying the character itself.
            slices.push((tokens.len(), i, i + 1));
            tokens.push(Token::literal(c.to_string()));
            i += 1;
        }
    }

    let pattern = Pattern::new(tokens);
    let slices = slices
        .into_iter()
        .map(|(token_index, cs, ce)| TokenSlice {
            token_index,
            start: byte_offsets[cs],
            end: byte_offsets[ce],
            text: chars[cs..ce].iter().collect(),
        })
        .collect();
    TokenizedString {
        raw: s.to_string(),
        pattern,
        slices,
    }
}

/// Tokenization driven by a [`Pattern::split`] instead of a character scan.
///
/// When a string is already known to match some pattern — the way every
/// transformed output of a CLX run matches the labelled target — its leaf
/// tokenization can be *derived* from the pattern's split instead of
/// re-scanned character by character:
///
/// * a slice of a precise base token (`<D>`, `<L>`, `<U>`) is one leaf
///   token of that class whose count is the slice length;
/// * a literal token contributes the same constant text to every string, so
///   its internal tokenization is computed **once** (at construction) and
///   spliced in;
/// * only slices of generalized classes (`<A>`, `<AN>`), whose precise
///   structure genuinely varies per string, are scanned.
///
/// Adjacent same-class runs merge at fragment boundaries, so the result is
/// exactly [`tokenize_detailed`] of the string.
///
/// ```
/// use clx_pattern::{parse_pattern, tokenize_detailed, SplitTokenizer};
///
/// let target = parse_pattern("'['<U>+'-'<D>+']'").unwrap();
/// let tokenizer = SplitTokenizer::new(&target);
/// let derived = tokenizer.tokenize("[CPT-00350]").unwrap();
/// assert_eq!(derived, tokenize_detailed("[CPT-00350]"));
/// assert!(tokenizer.tokenize("no match").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SplitTokenizer {
    pattern: Pattern,
    /// Per pattern token: the precomputed tokenization of its constant
    /// text, for literal tokens.
    literal_fragments: Vec<Option<TokenizedString>>,
}

impl SplitTokenizer {
    /// Build a tokenizer for strings matching `pattern`, tokenizing each
    /// literal token's constant text once up front.
    pub fn new(pattern: &Pattern) -> Self {
        let literal_fragments = pattern
            .iter()
            .map(|t| t.literal_value().map(tokenize_detailed))
            .collect();
        SplitTokenizer {
            pattern: pattern.clone(),
            literal_fragments,
        }
    }

    /// The pattern this tokenizer splits against.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Tokenize `text` by splitting it against the pattern; equals
    /// [`tokenize_detailed`]`(text)`. Returns `None` when `text` does not
    /// match the pattern.
    pub fn tokenize(&self, text: &str) -> Option<TokenizedString> {
        let slices = self.pattern.split(text).ok()?;
        let mut tokens: Vec<Token> = Vec::new();
        let mut texts: Vec<String> = Vec::new();
        for slice in &slices {
            let token = self
                .pattern
                .token(slice.token_index)
                .expect("split yields in-range token indices");
            match &token.class {
                TokenClass::Literal(_) => {
                    let fragment = self.literal_fragments[slice.token_index]
                        .as_ref()
                        .expect("literal tokens have precomputed fragments");
                    splice_fragment(&mut tokens, &mut texts, fragment);
                }
                TokenClass::Digit | TokenClass::Lower | TokenClass::Upper => push_fragment(
                    &mut tokens,
                    &mut texts,
                    Token::base(token.class.clone(), slice.text.chars().count()),
                    &slice.text,
                ),
                TokenClass::Alpha | TokenClass::AlphaNumeric => {
                    // The precise run structure of a generalized slice is
                    // not determined by the pattern: scan just the slice.
                    splice_fragment(&mut tokens, &mut texts, &tokenize_detailed(&slice.text));
                }
            }
        }

        let mut out_slices = Vec::with_capacity(tokens.len());
        let mut offset = 0usize;
        for (token_index, text) in texts.into_iter().enumerate() {
            let start = offset;
            offset += text.len();
            out_slices.push(TokenSlice {
                token_index,
                start,
                end: offset,
                text,
            });
        }
        Some(TokenizedString {
            raw: text.to_string(),
            pattern: Pattern::new(tokens),
            slices: out_slices,
        })
    }
}

/// Append every token of a pre-tokenized fragment, merging at the boundary.
fn splice_fragment(tokens: &mut Vec<Token>, texts: &mut Vec<String>, fragment: &TokenizedString) {
    for slice in &fragment.slices {
        let token = fragment
            .pattern
            .token(slice.token_index)
            .expect("fragment slices index their own pattern");
        push_fragment(tokens, texts, token.clone(), &slice.text);
    }
}

/// Append one `(token, covered text)` fragment, merging it into the
/// previous fragment when both are base tokens of the same class — exactly
/// the maximal-run rule of [`tokenize`]. (Literal tokens never merge:
/// `tokenize` emits one literal token per non-alphanumeric character, and
/// every literal fragment arriving here is already in that form.)
fn push_fragment(tokens: &mut Vec<Token>, texts: &mut Vec<String>, token: Token, text: &str) {
    if text.is_empty() {
        return;
    }
    if let (Some(last_token), Some(last_text)) = (tokens.last_mut(), texts.last_mut()) {
        if last_token.is_base() && token.is_base() && last_token.class == token.class {
            last_text.push_str(text);
            *last_token = Token::base(token.class, last_text.chars().count());
            return;
        }
    }
    tokens.push(token);
    texts.push(text.to_string());
}

/// The most precise base class of a single character (`digit`, `lower`,
/// `upper`), or `None` for characters that become literal tokens.
fn precise_class(c: char) -> Option<TokenClass> {
    if c.is_ascii_digit() {
        Some(TokenClass::Digit)
    } else if c.is_ascii_lowercase() {
        Some(TokenClass::Lower)
    } else if c.is_ascii_uppercase() {
        Some(TokenClass::Upper)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Quantifier;

    #[test]
    fn example_3_from_paper() {
        // "Bob123@gmail.com" -> [<U>, <L>2, <D>3, '@', <L>5, '.', <L>3]
        let p = tokenize("Bob123@gmail.com");
        assert_eq!(p.to_string(), "<U><L>2<D>3'@'<L>5'.'<L>3");
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn phone_formats_from_figure_3() {
        assert_eq!(
            tokenize("(734) 645-8397").to_string(),
            "'('<D>3')'' '<D>3'-'<D>4"
        );
        assert_eq!(
            tokenize("(734)586-7252").to_string(),
            "'('<D>3')'<D>3'-'<D>4"
        );
        assert_eq!(tokenize("734-422-8073").to_string(), "<D>3'-'<D>3'-'<D>4");
        assert_eq!(tokenize("734.236.3466").to_string(), "<D>3'.'<D>3'.'<D>4");
    }

    #[test]
    fn empty_string() {
        let p = tokenize("");
        assert!(p.is_empty());
    }

    #[test]
    fn single_classes() {
        assert_eq!(tokenize("12345").to_string(), "<D>5");
        assert_eq!(tokenize("abc").to_string(), "<L>3");
        assert_eq!(tokenize("ABC").to_string(), "<U>3");
        assert_eq!(tokenize("@").to_string(), "'@'");
    }

    #[test]
    fn case_transitions_split_tokens() {
        // Most precise classes: upper run then lower run are distinct tokens.
        assert_eq!(tokenize("McMillan").to_string(), "<U><L><U><L>5");
        assert_eq!(tokenize("IBMCorp").to_string(), "<U>4<L>3");
    }

    #[test]
    fn each_symbol_is_its_own_literal() {
        assert_eq!(tokenize("--").to_string(), "'-''-'");
        assert_eq!(tokenize("a  b").to_string(), "<L>' '' '<L>");
    }

    #[test]
    fn underscores_and_hyphens_are_literals_at_leaf_level() {
        assert_eq!(tokenize("a_b-c").to_string(), "<L>'_'<L>'-'<L>");
    }

    #[test]
    fn quantifiers_are_natural_numbers() {
        let p = tokenize("aaaa1111BBBB");
        assert!(p
            .tokens()
            .iter()
            .all(|t| matches!(t.quantifier, Quantifier::Exact(_))));
    }

    #[test]
    fn detailed_slices_cover_string() {
        let t = tokenize_detailed("(734) 645-8397");
        let rebuilt: String = t.slices.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(rebuilt, "(734) 645-8397");
        assert_eq!(t.slices.len(), t.pattern.len());
        // slices are contiguous
        for w in t.slices.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn pattern_derived_by_tokenizer_matches_its_source() {
        for s in [
            "Bob123@gmail.com",
            "(734) 645-8397",
            "734.236.3466",
            "[CPT-00350",
            "Dr. Eran Yahav",
            "+1 724-285-5210",
            "N/A",
        ] {
            let p = tokenize(s);
            assert!(p.matches(s), "pattern {p} should match {s:?}");
        }
    }

    #[test]
    fn unicode_symbols_become_literals() {
        let p = tokenize("a€b");
        assert_eq!(p.to_string(), "<L>'€'<L>");
        assert!(p.matches("a€b"));
    }

    #[test]
    fn split_agrees_with_tokenizer_slices() {
        let t = tokenize_detailed("CPT115");
        let split = t.pattern.split("CPT115").unwrap();
        assert_eq!(split, t.slices);
    }

    #[test]
    fn fast_tokenize_agrees_with_detailed() {
        for s in [
            "",
            "Bob123@gmail.com",
            "(734) 645-8397",
            "+1 724-285-5210",
            "a€b",
            "N/A",
            "--",
            "McMillan",
            "aaaa1111BBBB",
            "   ",
        ] {
            assert_eq!(tokenize(s), tokenize_detailed(s).pattern, "on {s:?}");
        }
    }

    #[test]
    fn split_tokenizer_equals_detailed_tokenization() {
        use crate::parse::parse_pattern;
        // (pattern, matching outputs) pairs covering precise classes,
        // plus-quantifiers, symbol literals, letter literals (constant
        // folding), generalized classes and merge-at-boundary cases.
        let cases: Vec<(&str, Vec<&str>)> = vec![
            ("<D>3'-'<D>3'-'<D>4", vec!["734-422-8073", "555-111-2222"]),
            (
                "'['<U>+'-'<D>+']'",
                vec!["[CPT-00350]", "[X-1]", "[ABCDE-99999]"],
            ),
            ("'Dr. '<U><L>+", vec!["Dr. Smith", "Dr. Yahav"]),
            (
                "<AN>+'@'<AN>+'.'<AN>+",
                vec!["Bob123@gmail.com", "alice99@yahoo.org", "Zed5@x.io"],
            ),
            // Boundary merges: base run adjacent to a literal of the same
            // class, and literal runs splicing into base runs.
            ("<L>+'x'", vec!["abx", "zx"]),
            ("'x'<L>+", vec!["xab"]),
            ("<D>+'5'<D>2", vec!["12511", "9578"]),
            ("<A>+' '<A>+", vec!["Eran Yahav", "bill GATES"]),
            ("<U><L>+", vec!["Smith"]),
        ];
        for (pattern_str, outputs) in cases {
            let pattern = parse_pattern(pattern_str).unwrap();
            let tokenizer = SplitTokenizer::new(&pattern);
            for output in outputs {
                let derived = tokenizer
                    .tokenize(output)
                    .unwrap_or_else(|| panic!("{output:?} must match {pattern_str}"));
                assert_eq!(
                    derived,
                    tokenize_detailed(output),
                    "pattern {pattern_str}, output {output:?}"
                );
            }
        }
    }

    #[test]
    fn split_tokenizer_equals_detailed_on_leaf_patterns() {
        // The leaf pattern of any string trivially matches it: derived
        // tokenization must round-trip.
        for s in ["(734) 645-8397", "N/A", "Bob123@gmail.com", "--", ""] {
            let tokenizer = SplitTokenizer::new(&tokenize(s));
            assert_eq!(tokenizer.tokenize(s).unwrap(), tokenize_detailed(s));
        }
    }

    #[test]
    fn split_tokenizer_rejects_non_matching_text() {
        let tokenizer = SplitTokenizer::new(&tokenize("734-422-8073"));
        assert!(tokenizer.tokenize("N/A").is_none());
        assert!(tokenizer.tokenize("").is_none());
    }
}
