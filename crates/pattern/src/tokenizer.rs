use crate::pattern::{Pattern, TokenSlice};
use crate::token::{Token, TokenClass};

/// The result of tokenizing a raw string: the derived leaf [`Pattern`]
/// together with the per-token slices of the original string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizedString {
    /// The original string.
    pub raw: String,
    /// The most-specific pattern describing it.
    pub pattern: Pattern,
    /// One slice per token of `pattern`.
    pub slices: Vec<TokenSlice>,
}

/// Tokenize a raw string into its most-specific leaf pattern, following the
/// rules of Section 4.1 of the paper:
///
/// * every non-alphanumeric character becomes an individual **literal**
///   token (so `"(734) 645"` yields `'('`, `<D>3`, `')'`, `' '`, `<D>3`);
/// * maximal runs of characters of the most precise base class (`digit`,
///   `lower`, `upper`) become a single base token with a natural-number
///   quantifier;
/// * quantifiers are always natural numbers at this stage — the `+` form
///   only appears after agglomerative refinement.
///
/// # Example
///
/// ```
/// use clx_pattern::tokenize;
/// assert_eq!(tokenize("Bob123@gmail.com").to_string(),
///            "<U><L>2<D>3'@'<L>5'.'<L>3");
/// ```
pub fn tokenize(s: &str) -> Pattern {
    // Single pass, no intermediate buffers: this is the hottest function of
    // the whole system (clustering profiles every row with it, and the batch
    // engine derives its dispatch signature from it).
    let mut tokens: Vec<Token> = Vec::new();
    let mut run: Option<(TokenClass, usize)> = None;
    for c in s.chars() {
        match precise_class(c) {
            Some(class) => match &mut run {
                Some((current, len)) if *current == class => *len += 1,
                _ => {
                    if let Some((class, len)) = run.take() {
                        tokens.push(Token::base(class, len));
                    }
                    run = Some((class, 1));
                }
            },
            None => {
                if let Some((class, len)) = run.take() {
                    tokens.push(Token::base(class, len));
                }
                tokens.push(Token::literal(c.to_string()));
            }
        }
    }
    if let Some((class, len)) = run {
        tokens.push(Token::base(class, len));
    }
    Pattern::new(tokens)
}

/// Like [`tokenize`] but also returns the character slices each token covers.
pub fn tokenize_detailed(s: &str) -> TokenizedString {
    let chars: Vec<char> = s.chars().collect();
    let mut byte_offsets = Vec::with_capacity(chars.len() + 1);
    let mut off = 0usize;
    for c in &chars {
        byte_offsets.push(off);
        off += c.len_utf8();
    }
    byte_offsets.push(off);

    let mut tokens = Vec::new();
    let mut slices = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if let Some(class) = precise_class(c) {
            let start = i;
            while i < chars.len() && precise_class(chars[i]) == Some(class.clone()) {
                i += 1;
            }
            let run_len = i - start;
            slices.push((tokens.len(), start, i));
            tokens.push(Token::base(class, run_len));
        } else {
            // Non-alphanumeric characters each become an individual literal
            // token carrying the character itself.
            slices.push((tokens.len(), i, i + 1));
            tokens.push(Token::literal(c.to_string()));
            i += 1;
        }
    }

    let pattern = Pattern::new(tokens);
    let slices = slices
        .into_iter()
        .map(|(token_index, cs, ce)| TokenSlice {
            token_index,
            start: byte_offsets[cs],
            end: byte_offsets[ce],
            text: chars[cs..ce].iter().collect(),
        })
        .collect();
    TokenizedString {
        raw: s.to_string(),
        pattern,
        slices,
    }
}

/// The most precise base class of a single character (`digit`, `lower`,
/// `upper`), or `None` for characters that become literal tokens.
fn precise_class(c: char) -> Option<TokenClass> {
    if c.is_ascii_digit() {
        Some(TokenClass::Digit)
    } else if c.is_ascii_lowercase() {
        Some(TokenClass::Lower)
    } else if c.is_ascii_uppercase() {
        Some(TokenClass::Upper)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Quantifier;

    #[test]
    fn example_3_from_paper() {
        // "Bob123@gmail.com" -> [<U>, <L>2, <D>3, '@', <L>5, '.', <L>3]
        let p = tokenize("Bob123@gmail.com");
        assert_eq!(p.to_string(), "<U><L>2<D>3'@'<L>5'.'<L>3");
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn phone_formats_from_figure_3() {
        assert_eq!(
            tokenize("(734) 645-8397").to_string(),
            "'('<D>3')'' '<D>3'-'<D>4"
        );
        assert_eq!(
            tokenize("(734)586-7252").to_string(),
            "'('<D>3')'<D>3'-'<D>4"
        );
        assert_eq!(tokenize("734-422-8073").to_string(), "<D>3'-'<D>3'-'<D>4");
        assert_eq!(tokenize("734.236.3466").to_string(), "<D>3'.'<D>3'.'<D>4");
    }

    #[test]
    fn empty_string() {
        let p = tokenize("");
        assert!(p.is_empty());
    }

    #[test]
    fn single_classes() {
        assert_eq!(tokenize("12345").to_string(), "<D>5");
        assert_eq!(tokenize("abc").to_string(), "<L>3");
        assert_eq!(tokenize("ABC").to_string(), "<U>3");
        assert_eq!(tokenize("@").to_string(), "'@'");
    }

    #[test]
    fn case_transitions_split_tokens() {
        // Most precise classes: upper run then lower run are distinct tokens.
        assert_eq!(tokenize("McMillan").to_string(), "<U><L><U><L>5");
        assert_eq!(tokenize("IBMCorp").to_string(), "<U>4<L>3");
    }

    #[test]
    fn each_symbol_is_its_own_literal() {
        assert_eq!(tokenize("--").to_string(), "'-''-'");
        assert_eq!(tokenize("a  b").to_string(), "<L>' '' '<L>");
    }

    #[test]
    fn underscores_and_hyphens_are_literals_at_leaf_level() {
        assert_eq!(tokenize("a_b-c").to_string(), "<L>'_'<L>'-'<L>");
    }

    #[test]
    fn quantifiers_are_natural_numbers() {
        let p = tokenize("aaaa1111BBBB");
        assert!(p
            .tokens()
            .iter()
            .all(|t| matches!(t.quantifier, Quantifier::Exact(_))));
    }

    #[test]
    fn detailed_slices_cover_string() {
        let t = tokenize_detailed("(734) 645-8397");
        let rebuilt: String = t.slices.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(rebuilt, "(734) 645-8397");
        assert_eq!(t.slices.len(), t.pattern.len());
        // slices are contiguous
        for w in t.slices.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn pattern_derived_by_tokenizer_matches_its_source() {
        for s in [
            "Bob123@gmail.com",
            "(734) 645-8397",
            "734.236.3466",
            "[CPT-00350",
            "Dr. Eran Yahav",
            "+1 724-285-5210",
            "N/A",
        ] {
            let p = tokenize(s);
            assert!(p.matches(s), "pattern {p} should match {s:?}");
        }
    }

    #[test]
    fn unicode_symbols_become_literals() {
        let p = tokenize("a€b");
        assert_eq!(p.to_string(), "<L>'€'<L>");
        assert!(p.matches("a€b"));
    }

    #[test]
    fn split_agrees_with_tokenizer_slices() {
        let t = tokenize_detailed("CPT115");
        let split = t.pattern.split("CPT115").unwrap();
        assert_eq!(split, t.slices);
    }

    #[test]
    fn fast_tokenize_agrees_with_detailed() {
        for s in [
            "",
            "Bob123@gmail.com",
            "(734) 645-8397",
            "+1 724-285-5210",
            "a€b",
            "N/A",
            "--",
            "McMillan",
            "aaaa1111BBBB",
            "   ",
        ] {
            assert_eq!(tokenize(s), tokenize_detailed(s).pattern, "on {s:?}");
        }
    }
}
