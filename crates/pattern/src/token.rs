use std::fmt;

/// The class of a token, per Table 2 of the paper plus literal tokens.
///
/// Base classes describe *what kind of characters* a run of text contains;
/// the `Literal` class carries a concrete constant string (symbols such as
/// `-`, `@`, or discovered constant words such as `Dr.`).
///
/// The base classes form a small generalization lattice used by the
/// agglomerative refinement step of clustering:
///
/// ```text
///            <AN>  (alpha-numeric: [a-zA-Z0-9_-])
///           /    \
///        <A>     <D>
///       /   \
///    <U>     <L>
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TokenClass {
    /// `[0-9]`, notated `<D>`.
    Digit,
    /// `[a-z]`, notated `<L>`.
    Lower,
    /// `[A-Z]`, notated `<U>`.
    Upper,
    /// `[a-zA-Z]`, notated `<A>`.
    Alpha,
    /// `[a-zA-Z0-9_-]`, notated `<AN>`.
    AlphaNumeric,
    /// A constant string, e.g. `'-'` or `'Dr.'`.
    Literal(String),
}

impl TokenClass {
    /// A literal token class holding `s`.
    pub fn literal(s: impl Into<String>) -> Self {
        TokenClass::Literal(s.into())
    }

    /// `true` if this is one of the five base classes of Table 2.
    pub fn is_base(&self) -> bool {
        !matches!(self, TokenClass::Literal(_))
    }

    /// `true` if this is a literal (constant-value) token class.
    pub fn is_literal(&self) -> bool {
        matches!(self, TokenClass::Literal(_))
    }

    /// The constant string carried by a literal class, if any.
    pub fn literal_value(&self) -> Option<&str> {
        match self {
            TokenClass::Literal(s) => Some(s),
            _ => None,
        }
    }

    /// The short notation of the class (`<D>`, `<L>`, `<U>`, `<A>`, `<AN>`),
    /// or the quoted literal.
    pub fn notation(&self) -> String {
        match self {
            TokenClass::Digit => "<D>".into(),
            TokenClass::Lower => "<L>".into(),
            TokenClass::Upper => "<U>".into(),
            TokenClass::Alpha => "<A>".into(),
            TokenClass::AlphaNumeric => "<AN>".into(),
            TokenClass::Literal(s) => format!("'{s}'"),
        }
    }

    /// The class name used in Table 2 ("digit", "lower", ...).
    pub fn class_name(&self) -> &'static str {
        match self {
            TokenClass::Digit => "digit",
            TokenClass::Lower => "lower",
            TokenClass::Upper => "upper",
            TokenClass::Alpha => "alpha",
            TokenClass::AlphaNumeric => "alpha-numeric",
            TokenClass::Literal(_) => "literal",
        }
    }

    /// The regular expression character class describing one occurrence of
    /// this token class (Table 2), in the syntax of `clx-regex`.
    ///
    /// For literal classes this is the escaped constant string.
    pub fn regex_char_class(&self) -> String {
        match self {
            TokenClass::Digit => "[0-9]".into(),
            TokenClass::Lower => "[a-z]".into(),
            TokenClass::Upper => "[A-Z]".into(),
            TokenClass::Alpha => "[a-zA-Z]".into(),
            TokenClass::AlphaNumeric => "[a-zA-Z0-9_-]".into(),
            TokenClass::Literal(s) => escape_regex(s),
        }
    }

    /// Does a single character belong to this (base) class?
    ///
    /// Literal classes return `false`: membership of literals is positional
    /// and handled by [`crate::Pattern::matches`].
    pub fn contains_char(&self, c: char) -> bool {
        match self {
            TokenClass::Digit => c.is_ascii_digit(),
            TokenClass::Lower => c.is_ascii_lowercase(),
            TokenClass::Upper => c.is_ascii_uppercase(),
            TokenClass::Alpha => c.is_ascii_alphabetic(),
            TokenClass::AlphaNumeric => c.is_ascii_alphanumeric() || c == '_' || c == '-',
            TokenClass::Literal(_) => false,
        }
    }

    /// Is `self` equal to or a generalization of `other` in the base-class
    /// lattice?
    ///
    /// * every class generalizes itself;
    /// * `<A>` generalizes `<L>` and `<U>`;
    /// * `<AN>` generalizes `<A>`, `<L>`, `<U>`, `<D>` and the literal
    ///   classes `'-'` and `'_'` (per generalization strategy 3 in §4.2).
    pub fn generalizes(&self, other: &TokenClass) -> bool {
        if self == other {
            return true;
        }
        match self {
            TokenClass::Alpha => matches!(other, TokenClass::Lower | TokenClass::Upper),
            TokenClass::AlphaNumeric => match other {
                TokenClass::Lower | TokenClass::Upper | TokenClass::Alpha | TokenClass::Digit => {
                    true
                }
                TokenClass::Literal(s) => s.chars().all(|c| c == '-' || c == '_'),
                _ => false,
            },
            _ => false,
        }
    }

    /// The dense id of this class within the tokenizer's *leaf alphabet*,
    /// or `None` for the classes leaves never carry.
    ///
    /// [`tokenize`](crate::tokenize) describes a string using exactly three
    /// base classes — a maximal run of digits becomes a `<D>` token, of
    /// lowercase a `<L>` token, of uppercase a `<U>` token — and every
    /// other character becomes a literal token. Ids are assigned in that
    /// order (`<D>` = 0, `<L>` = 1, `<U>` = 2; see
    /// [`LEAF_CLASS_COUNT`](crate::LEAF_CLASS_COUNT)), giving matchers that
    /// operate on leaf signatures a ready-made dense index — `clx-engine`'s
    /// fused dispatch automaton keys its class transition masks by it.
    pub fn leaf_class_index(&self) -> Option<usize> {
        match self {
            TokenClass::Digit => Some(0),
            TokenClass::Lower => Some(1),
            TokenClass::Upper => Some(2),
            _ => None,
        }
    }

    /// The immediate parent of this class in the generalization lattice, if
    /// any (`<L>`/`<U>` → `<A>`, `<A>`/`<D>` → `<AN>`).
    pub fn parent_class(&self) -> Option<TokenClass> {
        match self {
            TokenClass::Lower | TokenClass::Upper => Some(TokenClass::Alpha),
            TokenClass::Alpha | TokenClass::Digit => Some(TokenClass::AlphaNumeric),
            TokenClass::AlphaNumeric => None,
            TokenClass::Literal(s) if s.chars().all(|c| c == '-' || c == '_') && !s.is_empty() => {
                Some(TokenClass::AlphaNumeric)
            }
            TokenClass::Literal(_) => None,
        }
    }
}

impl fmt::Display for TokenClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

/// Escape a string so it can be embedded verbatim in a `clx-regex` pattern.
pub fn escape_regex(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if is_regex_metachar(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Is `c` a metacharacter in the `clx-regex` syntax?
pub fn is_regex_metachar(c: char) -> bool {
    matches!(
        c,
        '\\' | '.' | '+' | '*' | '?' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '^' | '$'
    )
}

/// A token quantifier: either an exact natural-number count or `+` meaning
/// "one or more".
///
/// Leaf patterns produced by the tokenizer always use exact counts; the `+`
/// form appears in parent patterns produced by the agglomerative refinement
/// (generalization strategy 1, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Quantifier {
    /// Exactly `n` occurrences (`n >= 1`).
    Exact(usize),
    /// One or more occurrences (`+`).
    OneOrMore,
}

impl Quantifier {
    /// The minimum number of occurrences this quantifier admits.
    ///
    /// `+` is treated as `1`, exactly as in the token-frequency definition of
    /// Eq. 1 ("if a quantifier is not a natural number but `+`, we treat it
    /// as 1 in computing Q").
    pub fn min_count(&self) -> usize {
        match self {
            Quantifier::Exact(n) => *n,
            Quantifier::OneOrMore => 1,
        }
    }

    /// `true` for the `+` quantifier.
    pub fn is_plus(&self) -> bool {
        matches!(self, Quantifier::OneOrMore)
    }

    /// Does `self` admit every count that `other` admits?
    ///
    /// `+` admits everything; `Exact(n)` only admits `Exact(n)`.
    pub fn generalizes(&self, other: &Quantifier) -> bool {
        match (self, other) {
            (Quantifier::OneOrMore, _) => true,
            (Quantifier::Exact(a), Quantifier::Exact(b)) => a == b,
            (Quantifier::Exact(_), Quantifier::OneOrMore) => false,
        }
    }

    /// Does a run of `n` characters satisfy this quantifier?
    pub fn admits(&self, n: usize) -> bool {
        match self {
            Quantifier::Exact(m) => n == *m,
            Quantifier::OneOrMore => n >= 1,
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::Exact(n) => write!(f, "{n}"),
            Quantifier::OneOrMore => write!(f, "+"),
        }
    }
}

/// A token: a [`TokenClass`] with a [`Quantifier`].
///
/// Literal tokens always carry the implicit quantifier `1` (their constant
/// string already encodes repetition); the quantifier field is kept at
/// `Exact(1)` for them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token {
    /// The token class.
    pub class: TokenClass,
    /// The quantifier.
    pub quantifier: Quantifier,
}

impl Token {
    /// A base token with an exact count.
    pub fn base(class: TokenClass, count: usize) -> Self {
        debug_assert!(class.is_base(), "Token::base requires a base class");
        Token {
            class,
            quantifier: Quantifier::Exact(count),
        }
    }

    /// A base token with the `+` quantifier.
    pub fn plus(class: TokenClass) -> Self {
        debug_assert!(class.is_base(), "Token::plus requires a base class");
        Token {
            class,
            quantifier: Quantifier::OneOrMore,
        }
    }

    /// A literal token for the constant string `s`.
    pub fn literal(s: impl Into<String>) -> Self {
        Token {
            class: TokenClass::Literal(s.into()),
            quantifier: Quantifier::Exact(1),
        }
    }

    /// `true` if this token is a literal (constant-value) token.
    pub fn is_literal(&self) -> bool {
        self.class.is_literal()
    }

    /// `true` if this token is a base-class token.
    pub fn is_base(&self) -> bool {
        self.class.is_base()
    }

    /// The constant string carried by a literal token.
    pub fn literal_value(&self) -> Option<&str> {
        self.class.literal_value()
    }

    /// Number of occurrences contributed to the token frequency `Q` (Eq. 1):
    /// the exact count, or 1 for `+`. Literal tokens contribute 0 to base
    /// classes (they are counted separately).
    pub fn frequency_weight(&self) -> usize {
        if self.is_literal() {
            0
        } else {
            self.quantifier.min_count()
        }
    }

    /// Is `self` equal to or a generalization of `other`?
    ///
    /// A token generalizes another when its class generalizes the other's
    /// class and its quantifier admits every count the other's admits. A
    /// literal token only generalizes an identical literal token (or, for
    /// `<AN>` generalization purposes, see [`TokenClass::generalizes`]).
    pub fn generalizes(&self, other: &Token) -> bool {
        match (&self.class, &other.class) {
            (TokenClass::Literal(a), TokenClass::Literal(b)) => a == b,
            (c, o) => {
                if !c.generalizes(o) {
                    return false;
                }
                if o.is_literal() {
                    // e.g. <AN>+ generalizing the literal '-' : quantifier of
                    // the literal is its length in characters.
                    let len = o.literal_value().map(str::len).unwrap_or(0);
                    self.quantifier.admits(len) || self.quantifier.is_plus()
                } else {
                    self.quantifier.generalizes(&other.quantifier)
                }
            }
        }
    }

    /// The `clx-regex` fragment matching this token.
    pub fn to_regex(&self) -> String {
        match &self.class {
            TokenClass::Literal(s) => escape_regex(s),
            base => {
                let cc = base.regex_char_class();
                match self.quantifier {
                    Quantifier::Exact(1) => cc,
                    Quantifier::Exact(n) => format!("{cc}{{{n}}}"),
                    Quantifier::OneOrMore => format!("{cc}+"),
                }
            }
        }
    }

    /// Notation used throughout the paper: `<D>3`, `<L>+`, `'@'`.
    pub fn notation(&self) -> String {
        match &self.class {
            TokenClass::Literal(s) => format!("'{s}'"),
            base => match self.quantifier {
                Quantifier::Exact(1) => base.notation(),
                Quantifier::Exact(n) => format!("{}{}", base.notation(), n),
                Quantifier::OneOrMore => format!("{}+", base.notation()),
            },
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notation_of_base_classes() {
        assert_eq!(TokenClass::Digit.notation(), "<D>");
        assert_eq!(TokenClass::Lower.notation(), "<L>");
        assert_eq!(TokenClass::Upper.notation(), "<U>");
        assert_eq!(TokenClass::Alpha.notation(), "<A>");
        assert_eq!(TokenClass::AlphaNumeric.notation(), "<AN>");
        assert_eq!(TokenClass::literal("@").notation(), "'@'");
    }

    #[test]
    fn class_names_match_table_2() {
        assert_eq!(TokenClass::Digit.class_name(), "digit");
        assert_eq!(TokenClass::Lower.class_name(), "lower");
        assert_eq!(TokenClass::Upper.class_name(), "upper");
        assert_eq!(TokenClass::Alpha.class_name(), "alpha");
        assert_eq!(TokenClass::AlphaNumeric.class_name(), "alpha-numeric");
    }

    #[test]
    fn char_membership() {
        assert!(TokenClass::Digit.contains_char('7'));
        assert!(!TokenClass::Digit.contains_char('a'));
        assert!(TokenClass::Lower.contains_char('a'));
        assert!(!TokenClass::Lower.contains_char('A'));
        assert!(TokenClass::Upper.contains_char('Z'));
        assert!(TokenClass::Alpha.contains_char('z'));
        assert!(TokenClass::Alpha.contains_char('Z'));
        assert!(!TokenClass::Alpha.contains_char('0'));
        assert!(TokenClass::AlphaNumeric.contains_char('0'));
        assert!(TokenClass::AlphaNumeric.contains_char('_'));
        assert!(TokenClass::AlphaNumeric.contains_char('-'));
        assert!(!TokenClass::AlphaNumeric.contains_char('@'));
    }

    #[test]
    fn class_generalization_lattice() {
        assert!(TokenClass::Alpha.generalizes(&TokenClass::Lower));
        assert!(TokenClass::Alpha.generalizes(&TokenClass::Upper));
        assert!(!TokenClass::Alpha.generalizes(&TokenClass::Digit));
        assert!(TokenClass::AlphaNumeric.generalizes(&TokenClass::Digit));
        assert!(TokenClass::AlphaNumeric.generalizes(&TokenClass::Alpha));
        assert!(TokenClass::AlphaNumeric.generalizes(&TokenClass::Lower));
        assert!(TokenClass::AlphaNumeric.generalizes(&TokenClass::literal("-")));
        assert!(TokenClass::AlphaNumeric.generalizes(&TokenClass::literal("_")));
        assert!(!TokenClass::AlphaNumeric.generalizes(&TokenClass::literal("@")));
        assert!(!TokenClass::Lower.generalizes(&TokenClass::Alpha));
        // reflexivity
        for c in crate::BASE_TOKEN_CLASSES {
            assert!(c.generalizes(&c));
        }
    }

    #[test]
    fn parent_classes() {
        assert_eq!(TokenClass::Lower.parent_class(), Some(TokenClass::Alpha));
        assert_eq!(TokenClass::Upper.parent_class(), Some(TokenClass::Alpha));
        assert_eq!(
            TokenClass::Alpha.parent_class(),
            Some(TokenClass::AlphaNumeric)
        );
        assert_eq!(
            TokenClass::Digit.parent_class(),
            Some(TokenClass::AlphaNumeric)
        );
        assert_eq!(TokenClass::AlphaNumeric.parent_class(), None);
        assert_eq!(
            TokenClass::literal("-").parent_class(),
            Some(TokenClass::AlphaNumeric)
        );
        assert_eq!(TokenClass::literal(".").parent_class(), None);
    }

    #[test]
    fn quantifier_semantics() {
        assert_eq!(Quantifier::Exact(3).min_count(), 3);
        assert_eq!(Quantifier::OneOrMore.min_count(), 1);
        assert!(Quantifier::OneOrMore.generalizes(&Quantifier::Exact(7)));
        assert!(Quantifier::OneOrMore.generalizes(&Quantifier::OneOrMore));
        assert!(!Quantifier::Exact(2).generalizes(&Quantifier::OneOrMore));
        assert!(Quantifier::Exact(2).generalizes(&Quantifier::Exact(2)));
        assert!(!Quantifier::Exact(2).generalizes(&Quantifier::Exact(3)));
        assert!(Quantifier::Exact(2).admits(2));
        assert!(!Quantifier::Exact(2).admits(1));
        assert!(Quantifier::OneOrMore.admits(1));
        assert!(Quantifier::OneOrMore.admits(100));
        assert!(!Quantifier::OneOrMore.admits(0));
    }

    #[test]
    fn token_notation() {
        assert_eq!(Token::base(TokenClass::Digit, 3).notation(), "<D>3");
        assert_eq!(Token::base(TokenClass::Digit, 1).notation(), "<D>");
        assert_eq!(Token::plus(TokenClass::Lower).notation(), "<L>+");
        assert_eq!(Token::literal("@").notation(), "'@'");
        assert_eq!(Token::literal("Dr.").notation(), "'Dr.'");
    }

    #[test]
    fn token_regex() {
        assert_eq!(Token::base(TokenClass::Digit, 3).to_regex(), "[0-9]{3}");
        assert_eq!(Token::base(TokenClass::Digit, 1).to_regex(), "[0-9]");
        assert_eq!(Token::plus(TokenClass::Alpha).to_regex(), "[a-zA-Z]+");
        assert_eq!(Token::literal(".").to_regex(), "\\.");
        assert_eq!(Token::literal("(").to_regex(), "\\(");
        assert_eq!(Token::literal("ab").to_regex(), "ab");
    }

    #[test]
    fn token_generalization() {
        let d3 = Token::base(TokenClass::Digit, 3);
        let dplus = Token::plus(TokenClass::Digit);
        let aplus = Token::plus(TokenClass::Alpha);
        let l2 = Token::base(TokenClass::Lower, 2);
        let anplus = Token::plus(TokenClass::AlphaNumeric);
        assert!(dplus.generalizes(&d3));
        assert!(!d3.generalizes(&dplus));
        assert!(aplus.generalizes(&l2));
        assert!(anplus.generalizes(&d3));
        assert!(anplus.generalizes(&l2));
        assert!(anplus.generalizes(&Token::literal("-")));
        assert!(!anplus.generalizes(&Token::literal("@")));
        assert!(d3.generalizes(&d3));
        assert!(Token::literal("@").generalizes(&Token::literal("@")));
        assert!(!Token::literal("@").generalizes(&Token::literal("#")));
    }

    #[test]
    fn frequency_weight() {
        assert_eq!(Token::base(TokenClass::Digit, 3).frequency_weight(), 3);
        assert_eq!(Token::plus(TokenClass::Digit).frequency_weight(), 1);
        assert_eq!(Token::literal("---").frequency_weight(), 0);
    }

    #[test]
    fn regex_escaping() {
        assert_eq!(escape_regex("a.b"), "a\\.b");
        assert_eq!(escape_regex("(x)"), "\\(x\\)");
        assert_eq!(escape_regex("a+b*c"), "a\\+b\\*c");
        assert_eq!(escape_regex("plain"), "plain");
        assert_eq!(escape_regex("$^|"), "\\$\\^\\|");
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", TokenClass::Digit), "<D>");
        assert_eq!(format!("{}", Quantifier::Exact(4)), "4");
        assert_eq!(format!("{}", Quantifier::OneOrMore), "+");
        assert_eq!(format!("{}", Token::base(TokenClass::Upper, 2)), "<U>2");
    }
}
