//! A bit-parallel multi-pattern automaton over patterns, with bounded
//! language analysis.
//!
//! One [`MultiPatternAutomaton`] compiles a list of [`Pattern`] *segments*
//! into a single shift-and automaton (Baeza-Yates–Gonnet; the
//! compiled-pattern-buffer + single-pass-scan design of the classic DECUS
//! grep): each pattern becomes a contiguous run of bit positions, each
//! position a character predicate, and one pass over an input simulates
//! every pattern simultaneously with a handful of word-wide shift/AND/OR
//! operations per consumed character.
//!
//! The automaton serves two consumers with **one** implementation:
//!
//! * `clx-engine`'s fused cold-path dispatch ([`classify`]): deciding which
//!   of a program's patterns match a new leaf signature in one scan instead
//!   of one backtracking matcher run per pattern;
//! * `clx-analyze`'s static program diagnostics: *language-level* facts —
//!   emptiness, pairwise intersection, and subsumption of one segment by a
//!   union of others — computed by a bounded breadth-first exploration of
//!   the automaton's reachable bit-states ([`language_empty`],
//!   [`intersection_witness`], [`uncovered_witness`]).
//!
//! [`classify`]: MultiPatternAutomaton::classify
//! [`language_empty`]: MultiPatternAutomaton::language_empty
//! [`intersection_witness`]: MultiPatternAutomaton::intersection_witness
//! [`uncovered_witness`]: MultiPatternAutomaton::uncovered_witness
//!
//! # Position predicates
//!
//! Bit positions map onto pattern tokens as one position per literal
//! character, `n` positions for an `Exact(n)` class token, and one
//! self-looping position for a `+`-quantified class token. A position's
//! predicate is exactly [`TokenClass::contains_char`]:
//!
//! * a `<D>`/`<L>`/`<U>` position accepts its class's characters;
//! * an `<A>` position accepts both letter classes;
//! * an `<AN>` position accepts `<D>`, `<L>`, `<U>` and the concrete
//!   characters `-` and `_`;
//! * a literal position accepts exactly its concrete character.
//!
//! Because [`Pattern`]'s backtracking matcher recognizes precisely the
//! anchored concatenation of these per-position predicates (an `Exact(n)`
//! class token consumes exactly `n` class characters, a `+` token any
//! non-empty run, a literal its characters verbatim), the automaton's
//! language over concrete strings **equals** `Pattern::matches` — for
//! *every* pattern, including "opaque" ones whose literals contain
//! alphanumerics. The engine's leaf-classification entry point
//! ([`classify`]) additionally restricts itself to the tokenizer's leaf
//! alphabet, where a digit run of length n is n abstract `<D>` symbols;
//! that abstraction is only sound for transparent patterns, which is why
//! [`classify`] is a separate, narrower API than the language operations.
//!
//! # Simulation
//!
//! Bit i of the state word(s) means "some prefix of the input ends a match
//! of positions `start(segment)..=i`". A step shifts the state left by one
//! (advancing every thread), re-seeds segment start bits only on the first
//! consumed character (the automaton is anchored — bits carried across a
//! segment boundary are masked off), ANDs with the symbol's transition
//! mask, and ORs back the self-loop threads of `+`-quantified positions. A
//! pattern matches iff its last position's bit is set after the final
//! symbol (an empty pattern matches iff the value is empty).
//!
//! # Language analysis
//!
//! Segments never interact: the only cross-bit flow is the shift by one,
//! and a bit shifted onto another segment's first position is masked off
//! (every non-empty segment's first position is a start bit, seeded only
//! before the first character). The whole-automaton bit-state is therefore
//! the product of the per-segment NFA subset-states, and breadth-first
//! search over the reachable bit-states *is* exact simultaneous language
//! exploration of all segments. The search alphabet is finite because
//! concrete characters fall into finitely many equivalence classes
//! ("atoms") under the position predicates: each character interned by
//! some literal (or by `<AN>`'s `-`/`_`) is its own atom, and all
//! remaining characters of one leaf class are indistinguishable, so one
//! representative per class suffices ([`TokenClass::contains_char`] is
//! ASCII-exact, making the residue classes finite and non-empty checks
//! trivial). Characters accepted by no position can never contribute to
//! any match and are ignored. The search is bounded by
//! [`SEARCH_STATE_LIMIT`] reachable states; overflow is reported as
//! "inconclusive" (`None`), never as a wrong verdict.

use std::collections::HashMap;

use crate::{Pattern, Quantifier, TokenClass, LEAF_CLASS_COUNT};

/// Bit-state word count of the automaton. Four words cover every realistic
/// synthesized program (one bit position per pattern character) while the
/// whole state still fits in two cache lines.
const WORDS: usize = 4;

/// Maximum combined automaton width, in bit positions: the sum over all
/// segments of their character positions. Pattern lists needing more fail
/// to build with [`WidthOverflow`].
pub const MAX_WIDTH: usize = WORDS * 64;

/// Cap on the number of distinct bit-states a language-analysis search may
/// visit before reporting "inconclusive". Reachable state counts are tiny
/// for synthesized programs (segments are short concatenations); the cap
/// exists so adversarial pattern lists degrade to an honest `None` instead
/// of an exponential walk.
pub const SEARCH_STATE_LIMIT: usize = 4096;

type BitRow = [u64; WORDS];

const ZERO: BitRow = [0; WORDS];

/// Sentinel for "character outside the automaton's alphabet"; its
/// transition mask is all-zero, so one step kills every thread.
const NO_SYMBOL: u16 = u16::MAX;

/// The pattern list needs more than [`MAX_WIDTH`] bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthOverflow {
    /// Positions the pattern list would need.
    pub required: usize,
}

impl std::fmt::Display for WidthOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "patterns need {} automaton positions (limit {MAX_WIDTH})",
            self.required
        )
    }
}

impl std::error::Error for WidthOverflow {}

/// Where one segment's pattern lives in the bit-state.
#[derive(Debug, Clone, Copy)]
enum Segment {
    /// No pattern was supplied for this slot (`None` at build time); it
    /// matches nothing and has the empty language.
    Absent,
    /// A zero-width pattern (no positions), which matches exactly the
    /// empty string.
    Empty,
    /// A non-empty pattern occupying bits `first..=last`.
    Span {
        /// The segment's first bit position (a start bit).
        first: u32,
        /// The segment's final (accept) bit position.
        last: u32,
    },
}

/// The state of one classification pass: which automaton threads survived
/// the whole input. Produced by [`MultiPatternAutomaton::classify`],
/// consumed by [`MultiPatternAutomaton::matches`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMatches {
    state: BitRow,
    /// `false` iff the input was empty (no character consumed), which is
    /// what zero-width segments accept.
    consumed: bool,
}

/// One consumed unit of a recorded classification pass: a whole class run
/// (all `n` characters of an `Exact(n)` leaf token) or a single literal
/// character, plus the frontier after consuming it.
#[derive(Debug, Clone, Copy)]
struct JournalStep {
    /// The symbol consumed: a leaf-class id for a class run, a concrete
    /// symbol id for a literal character.
    sym: u16,
    /// Characters the unit consumed (the class run length; 1 for a
    /// literal character).
    len: u32,
    /// Automaton state after the whole unit. Exact even when the run
    /// exited early on a fixed point: past the fixed point further steps
    /// cannot change the state, so this equals the state after all `len`
    /// characters.
    state: BitRow,
}

/// A classification pass that kept its per-unit frontier journal, produced
/// by [`MultiPatternAutomaton::classify_recorded`]. Besides answering
/// [`matches`] like a plain [`SegmentMatches`], it can reconstruct the
/// split boundaries of any accepting segment via
/// [`split_boundaries`] — the same slices `Pattern::split` produces,
/// recovered from the accepting path without a second matcher run.
///
/// [`matches`]: MultiPatternAutomaton::matches
/// [`split_boundaries`]: MultiPatternAutomaton::split_boundaries
#[derive(Debug, Clone)]
pub struct ClassifyRun {
    matches: SegmentMatches,
    journal: Vec<JournalStep>,
}

impl ClassifyRun {
    /// The thread-survival state of the pass, for
    /// [`MultiPatternAutomaton::matches`].
    pub fn matches(&self) -> &SegmentMatches {
        &self.matches
    }
}

/// One equivalence class of concrete characters under the automaton's
/// position predicates, with a representative character used to build
/// witness strings.
struct Atom {
    rep: char,
    mask: BitRow,
}

/// One shift-and automaton over a list of pattern segments. Immutable
/// after construction; safe to share across threads.
#[derive(Debug)]
pub struct MultiPatternAutomaton {
    /// Live state words (`ceil(width / 64)`, at least 1).
    words: usize,
    /// Bit set at every non-empty segment's first position.
    starts: BitRow,
    /// Bit set at every `+`-quantified (self-looping) position.
    plus: BitRow,
    /// Per-symbol transition masks: bit i set iff position i's predicate
    /// accepts the symbol. Ids `0..LEAF_CLASS_COUNT` are the abstract
    /// class symbols; the rest are concrete characters.
    masks: Vec<BitRow>,
    /// ASCII character -> symbol id (`NO_SYMBOL` when absent).
    ascii_symbol: [u16; 128],
    /// Non-ASCII character -> symbol id.
    other_symbol: HashMap<char, u16>,
    /// Interned concrete characters, in id order (`id - LEAF_CLASS_COUNT`
    /// indexes this). The language-analysis atom alphabet is derived from
    /// this list.
    interned: Vec<char>,
    /// Per-slot segment layout, in build order.
    segments: Vec<Segment>,
    /// Per bit position, the zero-based token index (within its segment's
    /// pattern) the position belongs to. Split-boundary reconstruction
    /// turns accepting-path positions into per-token character counts
    /// through this map.
    token_of: Vec<u16>,
    /// Per segment, the token count of its pattern (0 for absent slots).
    /// Zero-width tokens own no bit position, so this cannot be recovered
    /// from `token_of`.
    token_counts: Vec<u32>,
}

impl MultiPatternAutomaton {
    /// Compile the automaton for a list of pattern segments. A `None` slot
    /// is kept (so slot indices line up with the caller's numbering) but
    /// matches nothing. Errors when the combined width exceeds
    /// [`MAX_WIDTH`].
    pub fn build(patterns: &[Option<&Pattern>]) -> Result<MultiPatternAutomaton, WidthOverflow> {
        // Width check first — O(tokens), before any O(width) allocation.
        let required: usize = patterns.iter().flatten().map(|p| pattern_width(p)).sum();
        if required > MAX_WIDTH {
            return Err(WidthOverflow { required });
        }

        let mut automaton = MultiPatternAutomaton {
            words: required.div_ceil(64).max(1),
            starts: ZERO,
            plus: ZERO,
            masks: vec![ZERO; LEAF_CLASS_COUNT],
            ascii_symbol: [NO_SYMBOL; 128],
            other_symbol: HashMap::new(),
            interned: Vec::new(),
            segments: Vec::with_capacity(patterns.len()),
            token_of: Vec::with_capacity(required),
            token_counts: Vec::with_capacity(patterns.len()),
        };
        let mut next_bit = 0u32;
        for pattern in patterns {
            let segment = match pattern {
                None => Segment::Absent,
                Some(p) => layout_segment(&mut automaton, p, &mut next_bit),
            };
            automaton.segments.push(segment);
            automaton
                .token_counts
                .push(pattern.map_or(0, |p| p.len() as u32));
        }
        debug_assert_eq!(next_bit as usize, required);
        Ok(automaton)
    }

    /// Number of live state words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of segments (pattern slots, including absent ones).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Which segments match `leaf`, in one pass over its tokens.
    ///
    /// `leaf` is interpreted over the tokenizer's *leaf alphabet*: a digit
    /// run of length n is n abstract `<D>` symbols (likewise `<L>` and
    /// `<U>`), every other character its own concrete symbol. That
    /// abstraction is only exact for transparent segment patterns (no
    /// ASCII alphanumerics inside literals) — `clx-engine` guarantees it
    /// by keeping opaque patterns out of the fused automaton.
    ///
    /// Returns `None` when `leaf` is not a leaf signature the tokenizer
    /// can produce (a `+` quantifier or an `<A>`/`<AN>` class) — callers
    /// fall back to per-pattern matching for that value.
    ///
    /// Class runs apply the same step `n` times but exit early on a fixed
    /// point, so a `<D>4000` leaf token costs O(automaton width) steps,
    /// not 4000.
    pub fn classify(&self, leaf: &Pattern) -> Option<SegmentMatches> {
        self.classify_inner(leaf, None)
    }

    /// [`classify`], but keeping a per-unit frontier journal so that
    /// [`split_boundaries`] can afterwards reconstruct any accepting
    /// segment's token slices from the accepting path. One extra
    /// journal step (34 bytes) per leaf token character-run; the step
    /// loop itself is identical to the plain pass.
    ///
    /// [`classify`]: MultiPatternAutomaton::classify
    /// [`split_boundaries`]: MultiPatternAutomaton::split_boundaries
    pub fn classify_recorded(&self, leaf: &Pattern) -> Option<ClassifyRun> {
        let mut journal = Vec::with_capacity(leaf.len());
        let matches = self.classify_inner(leaf, Some(&mut journal))?;
        Some(ClassifyRun { matches, journal })
    }

    /// The shared classification loop. `journal`, when present, receives
    /// one entry per consumed unit (a whole class run, or one literal
    /// character) holding the frontier after that unit.
    fn classify_inner(
        &self,
        leaf: &Pattern,
        mut journal: Option<&mut Vec<JournalStep>>,
    ) -> Option<SegmentMatches> {
        let mut state = ZERO;
        let mut consumed = false;
        for token in leaf.iter() {
            match token.literal_value() {
                Some(s) => {
                    for c in s.chars() {
                        let sym = self.symbol(c);
                        self.step(&mut state, sym, !consumed);
                        consumed = true;
                        if let Some(j) = journal.as_deref_mut() {
                            j.push(JournalStep { sym, len: 1, state });
                        }
                        if state == ZERO {
                            return Some(SegmentMatches { state, consumed });
                        }
                    }
                }
                None => {
                    let class = token.class.leaf_class_index()? as u16;
                    let Quantifier::Exact(n) = token.quantifier else {
                        return None;
                    };
                    self.step(&mut state, class, !consumed);
                    consumed = true;
                    if state != ZERO {
                        let mut prev = state;
                        for _ in 1..n {
                            self.step(&mut state, class, false);
                            if state == prev || state == ZERO {
                                // Fixed point: repeating the same symbol
                                // can no longer change the state (steps
                                // are a pure function of it), so a long
                                // run costs O(width), not O(run length).
                                break;
                            }
                            prev = state;
                        }
                    }
                    if let Some(j) = journal.as_deref_mut() {
                        j.push(JournalStep {
                            sym: class,
                            len: n as u32,
                            state,
                        });
                    }
                    if state == ZERO {
                        return Some(SegmentMatches { state, consumed });
                    }
                }
            }
        }
        Some(SegmentMatches { state, consumed })
    }

    /// Reconstruct segment `index`'s token slices — the same split
    /// `Pattern::split` computes — from a recorded classification pass.
    ///
    /// Returns one half-open **character** range per pattern token
    /// (zero-width tokens get empty ranges), or `None` when the segment
    /// did not match or the walk cannot pin a boundary down. For matching
    /// fused-eligible segments the walk never declines — valid paths of a
    /// shift/stay thread are closed under pointwise minimum, so the
    /// minimal-predecessor walk below always reconstructs the pointwise
    /// lowest accepting path, which assigns every character to the
    /// earliest token able to take it: exactly `Pattern::split`'s
    /// greedy-longest-first backtracking result. The `None` arm is
    /// defensive; callers surface it as an explicit fallback, never a
    /// wrong answer.
    pub fn split_boundaries(&self, run: &ClassifyRun, index: usize) -> Option<Vec<(usize, usize)>> {
        let tokens = self.token_counts[index] as usize;
        let (first, last) = match self.segments[index] {
            Segment::Absent => return None,
            Segment::Empty => {
                // A zero-width pattern matches only the empty input; every
                // token (all zero-width) covers the empty range.
                return (!run.matches.consumed).then(|| vec![(0, 0); tokens]);
            }
            Segment::Span { first, last } => (first, last),
        };
        if !bit_set(&run.matches.state, last) {
            return None;
        }

        // Walk the journal backward from the accept bit, choosing at each
        // unit the minimal position in the previous frontier that can reach
        // the current one. `counts[t]` accumulates how many characters the
        // reconstructed path spends on token `t`.
        let mut counts = vec![0usize; tokens];
        let mut q = last;
        for (j, unit) in run.journal.iter().enumerate().rev() {
            if unit.sym == NO_SYMBOL || unit.len == 0 {
                return None;
            }
            let mask = &self.masks[unit.sym as usize];
            let n = unit.len;
            if j == 0 {
                // First unit: injection seeds the segment start, so the
                // path's first character lands exactly on `first`.
                if !bit_set(mask, first) || q < first || q - first > n - 1 {
                    return None;
                }
                if !self.run_contiguous(mask, first, q) {
                    return None;
                }
                for pos in first..=q {
                    counts[self.token_of[pos as usize] as usize] += 1;
                }
                let stays = (n - 1) - (q - first);
                if stays > 0 {
                    let r = self.lowest_loop(mask, first, q)?;
                    counts[self.token_of[r as usize] as usize] += stays as usize;
                }
            } else {
                let frontier = &run.journal[j - 1].state;
                if n == 1 {
                    // Shift from q-1 beats staying at q: smaller
                    // predecessor, hence the pointwise-minimal path.
                    counts[self.token_of[q as usize] as usize] += 1;
                    if q > first && bit_set(frontier, q - 1) {
                        q -= 1;
                    } else if !(bit_set(&self.plus, q) && bit_set(frontier, q)) {
                        return None;
                    }
                } else {
                    // A class run of n characters: the thread moved from
                    // some predecessor p up to q, shifting through
                    // class-accepting positions p+1..=q and spending the
                    // remaining n-(q-p) characters looping on a
                    // `+` position in p..=q. Scan candidate predecessors
                    // from the lowest.
                    let lo = first.max(q.saturating_sub(n));
                    let mut p = None;
                    for cand in lo..=q {
                        if !bit_set(frontier, cand) {
                            continue;
                        }
                        if !self.run_contiguous(mask, cand + 1, q) {
                            continue;
                        }
                        if q - cand == n || self.lowest_loop(mask, cand, q).is_some() {
                            p = Some(cand);
                            break;
                        }
                    }
                    let p = p?;
                    for pos in (p + 1)..=q {
                        counts[self.token_of[pos as usize] as usize] += 1;
                    }
                    let stays = n - (q - p);
                    if stays > 0 {
                        let r = self.lowest_loop(mask, p, q)?;
                        counts[self.token_of[r as usize] as usize] += stays as usize;
                    }
                    q = p;
                }
            }
        }
        debug_assert_eq!(
            counts.iter().sum::<usize>(),
            run.journal.iter().map(|u| u.len as usize).sum::<usize>(),
            "reconstructed path must spend every consumed character"
        );

        let mut ranges = Vec::with_capacity(tokens);
        let mut at = 0usize;
        for &count in &counts {
            ranges.push((at, at + count));
            at += count;
        }
        Some(ranges)
    }

    /// Do positions `lo..=hi` all accept `mask`'s symbol? (Trivially true
    /// for an empty range, i.e. `lo > hi`.)
    fn run_contiguous(&self, mask: &BitRow, lo: u32, hi: u32) -> bool {
        (lo..=hi).all(|pos| bit_set(mask, pos))
    }

    /// The lowest `+`-looping position in `lo..=hi` accepting `mask`'s
    /// symbol — where the pointwise-minimal path parks its stay steps.
    fn lowest_loop(&self, mask: &BitRow, lo: u32, hi: u32) -> Option<u32> {
        (lo..=hi).find(|&pos| bit_set(&self.plus, pos) && bit_set(mask, pos))
    }

    /// Did segment `index` match? Always `false` for absent segments.
    pub fn matches(&self, m: &SegmentMatches, index: usize) -> bool {
        match self.segments[index] {
            Segment::Absent => false,
            Segment::Empty => !m.consumed,
            Segment::Span { last, .. } => bit_set(&m.state, last),
        }
    }

    /// Is segment `index`'s language empty (no string at all matches)?
    ///
    /// `None` means inconclusive: the segment is absent, or the bounded
    /// state search overflowed. (For well-formed patterns the language is
    /// never empty — every position predicate is satisfiable — so this
    /// check exists for completeness of the algebra, not because the
    /// answer is ever expected to be `true`.)
    pub fn language_empty(&self, index: usize) -> Option<bool> {
        match self.segments[index] {
            Segment::Absent => None,
            Segment::Empty => Some(false),
            Segment::Span { last, .. } => {
                let rel = self.segment_bits(index);
                match self.search(&rel, |state| bit_set(state, last)) {
                    Ok(witness) => Some(witness.is_none()),
                    Err(SearchOverflow) => None,
                }
            }
        }
    }

    /// A string in the intersection of segments `a` and `b`'s languages.
    ///
    /// Returns `Some(Some(witness))` with a concrete string both patterns
    /// match, `Some(None)` when the languages are provably disjoint, and
    /// `None` when inconclusive (an absent segment, or the bounded state
    /// search overflowed).
    pub fn intersection_witness(&self, a: usize, b: usize) -> Option<Option<String>> {
        let (sa, sb) = (self.segments[a], self.segments[b]);
        match (sa, sb) {
            (Segment::Absent, _) | (_, Segment::Absent) => None,
            // A zero-width pattern matches only the empty string.
            (Segment::Empty, Segment::Empty) => Some(Some(String::new())),
            (Segment::Empty, Segment::Span { .. }) | (Segment::Span { .. }, Segment::Empty) => {
                Some(None)
            }
            (Segment::Span { last: la, .. }, Segment::Span { last: lb, .. }) => {
                let mut rel = self.segment_bits(a);
                or_rows(&mut rel, &self.segment_bits(b));
                self.search(&rel, |state| bit_set(state, la) && bit_set(state, lb))
                    .ok()
            }
        }
    }

    /// A string in segment `sub`'s language that **no** segment of
    /// `covers` matches — a counterexample to `L(sub) ⊆ ∪ L(covers)`.
    ///
    /// Returns `Some(Some(witness))` with such a string, `Some(None)` when
    /// `sub`'s language is provably covered by the union, and `None` when
    /// inconclusive (`sub` absent, or the bounded state search
    /// overflowed). Absent segments in `covers` contribute the empty
    /// language.
    pub fn uncovered_witness(&self, sub: usize, covers: &[usize]) -> Option<Option<String>> {
        let accepts_of = |indices: &[usize]| -> Vec<u32> {
            indices
                .iter()
                .filter_map(|&i| match self.segments[i] {
                    Segment::Span { last, .. } => Some(last),
                    _ => None,
                })
                .collect()
        };
        match self.segments[sub] {
            Segment::Absent => None,
            // L(sub) = {""}: covered iff some cover also matches "".
            Segment::Empty => {
                let covered = covers
                    .iter()
                    .any(|&i| matches!(self.segments[i], Segment::Empty));
                Some(if covered { None } else { Some(String::new()) })
            }
            Segment::Span { last, .. } => {
                let mut rel = self.segment_bits(sub);
                for &i in covers {
                    or_rows(&mut rel, &self.segment_bits(i));
                }
                // Zero-width covers match only "", never a searched
                // (non-empty) string, so only Span covers get accept bits.
                let cover_bits = accepts_of(covers);
                self.search(&rel, |state| {
                    bit_set(state, last) && !cover_bits.iter().any(|&b| bit_set(state, b))
                })
                .ok()
            }
        }
    }

    /// Bounded breadth-first search over the reachable bit-states,
    /// restricted to the bits in `rel` (the involved segments' positions —
    /// sound because segments never interact; see the module docs).
    /// Returns the witness string of the first state satisfying `hit`,
    /// `Ok(None)` when the reachable states are exhausted without a hit,
    /// or `Err` when more than [`SEARCH_STATE_LIMIT`] states were visited.
    ///
    /// The empty string is never tested: callers handle zero-width
    /// segments (the only ε-acceptors) before searching.
    fn search(
        &self,
        rel: &BitRow,
        hit: impl Fn(&BitRow) -> bool,
    ) -> Result<Option<String>, SearchOverflow> {
        let atoms = self.atoms();
        // (state, parent index or usize::MAX, consumed character).
        let mut nodes: Vec<(BitRow, usize, char)> = Vec::new();
        let mut seen: HashMap<BitRow, ()> = HashMap::new();
        let mut head = 0usize;

        let push = |nodes: &mut Vec<(BitRow, usize, char)>,
                    seen: &mut HashMap<BitRow, ()>,
                    state: BitRow,
                    parent: usize,
                    rep: char|
         -> Result<Option<usize>, SearchOverflow> {
            if state == ZERO || seen.contains_key(&state) {
                return Ok(None);
            }
            if nodes.len() >= SEARCH_STATE_LIMIT {
                return Err(SearchOverflow);
            }
            seen.insert(state, ());
            nodes.push((state, parent, rep));
            Ok(Some(nodes.len() - 1))
        };

        // Seed: every atom applied to the pre-input state (start bits
        // injected, exactly like the first consumed character).
        for atom in &atoms {
            let mut state = ZERO;
            self.step_mask(&mut state, &atom.mask, true);
            and_rows(&mut state, rel);
            if let Some(i) = push(&mut nodes, &mut seen, state, usize::MAX, atom.rep)? {
                if hit(&nodes[i].0) {
                    return Ok(Some(reconstruct(&nodes, i)));
                }
            }
        }
        while head < nodes.len() {
            let from = nodes[head].0;
            for atom in &atoms {
                let mut state = from;
                self.step_mask(&mut state, &atom.mask, false);
                and_rows(&mut state, rel);
                if let Some(i) = push(&mut nodes, &mut seen, state, head, atom.rep)? {
                    if hit(&nodes[i].0) {
                        return Ok(Some(reconstruct(&nodes, i)));
                    }
                }
            }
            head += 1;
        }
        Ok(None)
    }

    /// The atom alphabet: every interned concrete character is its own
    /// atom (an alphanumeric one additionally triggers its class's
    /// positions), plus one representative per leaf class for the
    /// characters of that class no literal mentions. Characters accepted
    /// by no position are omitted — they kill every thread and can never
    /// contribute to a match.
    fn atoms(&self) -> Vec<Atom> {
        let mut atoms = Vec::with_capacity(self.interned.len() + LEAF_CLASS_COUNT);
        for (k, &c) in self.interned.iter().enumerate() {
            let mut mask = self.masks[LEAF_CLASS_COUNT + k];
            if let Some(class) = char_leaf_class(c) {
                or_rows(&mut mask, &self.masks[class]);
            }
            if mask != ZERO {
                atoms.push(Atom { rep: c, mask });
            }
        }
        let residues: [(usize, std::ops::RangeInclusive<char>); LEAF_CLASS_COUNT] =
            [(0, '0'..='9'), (1, 'a'..='z'), (2, 'A'..='Z')];
        for (class, range) in residues {
            if self.masks[class] == ZERO {
                continue;
            }
            // contains_char is ASCII-exact, so the class residue is
            // non-empty iff some canonical character is un-interned; all
            // residue characters behave identically (class positions only).
            if let Some(rep) = range.into_iter().find(|&c| self.symbol(c) == NO_SYMBOL) {
                atoms.push(Atom {
                    rep,
                    mask: self.masks[class],
                });
            }
        }
        atoms
    }

    /// Bit mask of the positions belonging to segment `index`.
    fn segment_bits(&self, index: usize) -> BitRow {
        let mut row = ZERO;
        if let Segment::Span { first, last } = self.segments[index] {
            for bit in first..=last {
                set_bit(&mut row, bit);
            }
        }
        row
    }

    /// Advance every thread by one abstract character.
    #[inline]
    fn step(&self, state: &mut BitRow, sym: u16, inject: bool) {
        let mask = if sym == NO_SYMBOL {
            ZERO
        } else {
            self.masks[sym as usize]
        };
        self.step_mask(state, &mask, inject);
    }

    /// Advance every thread by one character whose transition mask is
    /// `mask` (a single symbol's mask, or the union mask of an atom).
    #[inline]
    fn step_mask(&self, state: &mut BitRow, mask: &BitRow, inject: bool) {
        let mut carry = 0u64;
        for w in 0..self.words {
            let shifted = (state[w] << 1) | carry;
            carry = state[w] >> 63;
            // A bit shifted onto a start position crossed a segment
            // boundary from the previous pattern's accept position; mask
            // it off. Starts are seeded only on the first character: the
            // automaton is anchored at both ends.
            let mut entering = shifted & !self.starts[w];
            if inject {
                entering |= self.starts[w];
            }
            state[w] = (entering & mask[w]) | (state[w] & mask[w] & self.plus[w]);
        }
    }

    /// The symbol id of one concrete character.
    #[inline]
    fn symbol(&self, c: char) -> u16 {
        if (c as u32) < 128 {
            self.ascii_symbol[c as usize]
        } else {
            self.other_symbol.get(&c).copied().unwrap_or(NO_SYMBOL)
        }
    }

    /// The symbol id of `c`, interning it on first sight.
    fn intern_symbol(&mut self, c: char) -> u16 {
        let next = self.masks.len() as u16;
        let id = if (c as u32) < 128 {
            let slot = &mut self.ascii_symbol[c as usize];
            if *slot == NO_SYMBOL {
                *slot = next;
            }
            *slot
        } else {
            *self.other_symbol.entry(c).or_insert(next)
        };
        if id == next {
            self.masks.push(ZERO);
            self.interned.push(c);
        }
        id
    }

    /// Set transition bit `bit` for every symbol `pred` accepts.
    fn set_position(&mut self, bit: u32, pred: &TokenClass) {
        match pred {
            TokenClass::Literal(_) => unreachable!("literals are laid out per character"),
            class => {
                if matches!(class, TokenClass::Digit | TokenClass::AlphaNumeric) {
                    set_bit(&mut self.masks[0], bit);
                }
                if matches!(
                    class,
                    TokenClass::Lower | TokenClass::Alpha | TokenClass::AlphaNumeric
                ) {
                    set_bit(&mut self.masks[1], bit);
                }
                if matches!(
                    class,
                    TokenClass::Upper | TokenClass::Alpha | TokenClass::AlphaNumeric
                ) {
                    set_bit(&mut self.masks[2], bit);
                }
                if matches!(class, TokenClass::AlphaNumeric) {
                    // <AN> also consumes the concrete '-' and '_' symbols
                    // (TokenClass::contains_char).
                    for c in ['-', '_'] {
                        let sym = self.intern_symbol(c);
                        set_bit(&mut self.masks[sym as usize], bit);
                    }
                }
            }
        }
    }
}

/// Marker for "the bounded state search overflowed".
struct SearchOverflow;

/// Is `L(sub) ⊆ L(covers[0]) ∪ … ∪ L(covers[n-1])`, as a one-shot
/// convenience over a freshly built automaton?
///
/// `None` means inconclusive (combined width beyond [`MAX_WIDTH`], or the
/// bounded state search overflowed) — callers must not conclude anything.
/// Used by `clx-synth` to prune candidate source patterns that earlier
/// branches already cover, and by `clx-analyze` tests.
pub fn patterns_subsumed(sub: &Pattern, covers: &[&Pattern]) -> Option<bool> {
    let mut slots: Vec<Option<&Pattern>> = Vec::with_capacity(covers.len() + 1);
    slots.push(Some(sub));
    slots.extend(covers.iter().map(|p| Some(*p)));
    let automaton = MultiPatternAutomaton::build(&slots).ok()?;
    let cover_indices: Vec<usize> = (1..slots.len()).collect();
    automaton
        .uncovered_witness(0, &cover_indices)
        .map(|witness| witness.is_none())
}

/// Lay out one pattern as the next contiguous run of bit positions.
fn layout_segment(
    automaton: &mut MultiPatternAutomaton,
    pattern: &Pattern,
    next_bit: &mut u32,
) -> Segment {
    let offset = *next_bit;
    for (ti, token) in pattern.iter().enumerate() {
        match token.literal_value() {
            Some(s) => {
                for c in s.chars() {
                    let sym = automaton.intern_symbol(c);
                    set_bit(&mut automaton.masks[sym as usize], *next_bit);
                    automaton.token_of.push(ti as u16);
                    *next_bit += 1;
                }
            }
            None => {
                let positions = match token.quantifier {
                    Quantifier::Exact(n) => n,
                    Quantifier::OneOrMore => {
                        set_bit(&mut automaton.plus, *next_bit);
                        1
                    }
                };
                for _ in 0..positions {
                    automaton.set_position(*next_bit, &token.class);
                    automaton.token_of.push(ti as u16);
                    *next_bit += 1;
                }
            }
        }
    }
    if *next_bit > offset {
        set_bit(&mut automaton.starts, offset);
        Segment::Span {
            first: offset,
            last: *next_bit - 1,
        }
    } else {
        Segment::Empty
    }
}

/// Automaton positions a pattern needs: one per literal character, n per
/// `Exact(n)` class token, one (self-looping) per `+` class token.
fn pattern_width(pattern: &Pattern) -> usize {
    pattern
        .iter()
        .map(|t| match t.literal_value() {
            Some(s) => s.chars().count(),
            None => match t.quantifier {
                Quantifier::Exact(n) => n,
                Quantifier::OneOrMore => 1,
            },
        })
        .sum()
}

/// The leaf-class index of a concrete character, mirroring
/// [`TokenClass::leaf_class_index`]'s `<D>`=0, `<L>`=1, `<U>`=2 order.
fn char_leaf_class(c: char) -> Option<usize> {
    if c.is_ascii_digit() {
        Some(0)
    } else if c.is_ascii_lowercase() {
        Some(1)
    } else if c.is_ascii_uppercase() {
        Some(2)
    } else {
        None
    }
}

/// Rebuild the witness string of BFS node `index` from the parent chain.
fn reconstruct(nodes: &[(BitRow, usize, char)], index: usize) -> String {
    let mut chars = Vec::new();
    let mut at = index;
    loop {
        let (_, parent, rep) = nodes[at];
        chars.push(rep);
        if parent == usize::MAX {
            break;
        }
        at = parent;
    }
    chars.into_iter().rev().collect()
}

#[inline]
fn bit_set(row: &BitRow, bit: u32) -> bool {
    (row[(bit / 64) as usize] >> (bit % 64)) & 1 == 1
}

#[inline]
fn set_bit(row: &mut BitRow, bit: u32) {
    row[(bit / 64) as usize] |= 1 << (bit % 64);
}

#[inline]
fn or_rows(into: &mut BitRow, from: &BitRow) {
    for w in 0..WORDS {
        into[w] |= from[w];
    }
}

#[inline]
fn and_rows(into: &mut BitRow, with: &BitRow) {
    for w in 0..WORDS {
        into[w] &= with[w];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_pattern, tokenize};

    fn auto(patterns: &[&str]) -> MultiPatternAutomaton {
        let parsed: Vec<Pattern> = patterns.iter().map(|p| parse_pattern(p).unwrap()).collect();
        let slots: Vec<Option<&Pattern>> = parsed.iter().map(Some).collect();
        MultiPatternAutomaton::build(&slots).unwrap()
    }

    fn subsumed(sub: &str, covers: &[&str]) -> Option<bool> {
        let sub = parse_pattern(sub).unwrap();
        let covers: Vec<Pattern> = covers.iter().map(|p| parse_pattern(p).unwrap()).collect();
        let refs: Vec<&Pattern> = covers.iter().collect();
        patterns_subsumed(&sub, &refs)
    }

    /// `Pattern::split`'s slices as half-open character ranges, the
    /// reference for split-boundary reconstruction.
    fn reference_ranges(pattern: &Pattern, value: &str) -> Vec<(usize, usize)> {
        let mut char_of_byte = HashMap::new();
        let mut count = 0usize;
        for (i, (byte, _)) in value.char_indices().enumerate() {
            char_of_byte.insert(byte, i);
            count = i + 1;
        }
        char_of_byte.insert(value.len(), count);
        pattern
            .split(value)
            .unwrap()
            .iter()
            .map(|s| (char_of_byte[&s.start], char_of_byte[&s.end]))
            .collect()
    }

    #[test]
    fn split_boundaries_match_pattern_split() {
        let patterns = [
            "<D>3'-'<D>4",
            "<U>+'-'<D>+",
            "<AN>+'-'<AN>+",
            "<D>+<D>+",
            "<D>2<D>3",
            "<D>5",
            "<AN>+",
            "'('<U>2')'",
            "<L><AN>+<D>2",
            "<D>+'.'<D>+'.'<D>+",
        ];
        let values = [
            "123-4567", "AB-99", "a-b-c", "12345", "123", "---", "a_b-c_d", "(AB)", "x-_-12",
            "1.2.3", "10.20.30", "Z-1", "_", "",
        ];
        let parsed: Vec<Pattern> = patterns.iter().map(|p| parse_pattern(p).unwrap()).collect();
        let slots: Vec<Option<&Pattern>> = parsed.iter().map(Some).collect();
        let automaton = MultiPatternAutomaton::build(&slots).unwrap();
        for value in values {
            let run = automaton.classify_recorded(&tokenize(value)).unwrap();
            for (i, pattern) in parsed.iter().enumerate() {
                if !automaton.matches(run.matches(), i) {
                    continue;
                }
                assert_eq!(
                    automaton.split_boundaries(&run, i),
                    Some(reference_ranges(pattern, value)),
                    "pattern {pattern} on {value:?}"
                );
            }
        }
    }

    #[test]
    fn split_boundaries_cross_word_carries() {
        // A 71-position segment: boundaries span the first two state words.
        let pattern = parse_pattern("<D>40'-'<D>30").unwrap();
        let automaton = MultiPatternAutomaton::build(&[Some(&pattern)]).unwrap();
        let value = format!("{}-{}", "4".repeat(40), "3".repeat(30));
        let run = automaton.classify_recorded(&tokenize(&value)).unwrap();
        assert!(automaton.matches(run.matches(), 0));
        assert_eq!(
            automaton.split_boundaries(&run, 0),
            Some(reference_ranges(&pattern, &value))
        );
    }

    #[test]
    fn split_boundaries_of_zero_width_patterns_and_absent_slots() {
        let empty = Pattern::empty();
        let digit = parse_pattern("<D>").unwrap();
        let automaton = MultiPatternAutomaton::build(&[Some(&empty), None, Some(&digit)]).unwrap();
        let run = automaton.classify_recorded(&tokenize("")).unwrap();
        assert_eq!(automaton.split_boundaries(&run, 0), Some(Vec::new()));
        assert_eq!(automaton.split_boundaries(&run, 1), None);
        assert_eq!(automaton.split_boundaries(&run, 2), None);
        let run = automaton.classify_recorded(&tokenize("7")).unwrap();
        assert_eq!(automaton.split_boundaries(&run, 0), None);
        assert_eq!(automaton.split_boundaries(&run, 2), Some(vec![(0, 1)]));
    }

    #[test]
    fn recorded_classification_agrees_with_plain() {
        let a = parse_pattern("<D>3'-'<D>4").unwrap();
        let b = parse_pattern("<U>+'-'<D>+").unwrap();
        let automaton = MultiPatternAutomaton::build(&[Some(&a), Some(&b)]).unwrap();
        for value in ["123-4567", "AB-99", "123-456", "-1", "", "abc"] {
            let leaf = tokenize(value);
            let plain = automaton.classify(&leaf).unwrap();
            let recorded = automaton.classify_recorded(&leaf).unwrap();
            assert_eq!(&plain, recorded.matches(), "on {value:?}");
        }
    }

    #[test]
    fn classification_agrees_with_the_backtracker() {
        let a = parse_pattern("<D>3'-'<D>4").unwrap();
        let b = parse_pattern("<U>+'-'<D>+").unwrap();
        let automaton = MultiPatternAutomaton::build(&[Some(&a), Some(&b)]).unwrap();
        for value in ["123-4567", "AB-99", "123-456", "-1", "", "abc"] {
            let m = automaton.classify(&tokenize(value)).unwrap();
            assert_eq!(automaton.matches(&m, 0), a.matches(value), "a on {value:?}");
            assert_eq!(automaton.matches(&m, 1), b.matches(value), "b on {value:?}");
        }
    }

    #[test]
    fn absent_segments_match_nothing_and_answer_nothing() {
        let p = parse_pattern("<D>2").unwrap();
        let automaton = MultiPatternAutomaton::build(&[None, Some(&p)]).unwrap();
        let m = automaton.classify(&tokenize("42")).unwrap();
        assert!(!automaton.matches(&m, 0));
        assert!(automaton.matches(&m, 1));
        assert_eq!(automaton.language_empty(0), None);
        assert_eq!(automaton.intersection_witness(0, 1), None);
        assert_eq!(automaton.uncovered_witness(0, &[1]), None);
        // An absent *cover* contributes the empty language.
        assert_eq!(
            automaton.uncovered_witness(1, &[0]),
            Some(Some("00".into()))
        );
    }

    #[test]
    fn languages_of_well_formed_patterns_are_never_empty() {
        let automaton = auto(&["<D>3'-'<D>4", "<AN>+", "'('<U>2')'", ""]);
        for i in 0..4 {
            assert_eq!(automaton.language_empty(i), Some(false), "segment {i}");
        }
    }

    #[test]
    fn quantifier_splits_are_language_equal() {
        // "12345" splits as 2+3: the languages of <D>2<D>3 and <D>5 are
        // equal even though Pattern::covers cannot see it.
        assert_eq!(subsumed("<D>2<D>3", &["<D>5"]), Some(true));
        assert_eq!(subsumed("<D>5", &["<D>2<D>3"]), Some(true));
        assert_eq!(subsumed("<D>5", &["<D>2<D>4"]), Some(false));
    }

    #[test]
    fn plus_quantifiers_subsume_exact_counts() {
        assert_eq!(subsumed("<D>3", &["<D>+"]), Some(true));
        assert_eq!(subsumed("<D>+", &["<D>3"]), Some(false));
        assert_eq!(subsumed("<D>2'-'<D>2", &["<D>+'-'<D>+"]), Some(true));
        assert_eq!(subsumed("<D>+'-'<D>+", &["<D>2'-'<D>2"]), Some(false));
    }

    #[test]
    fn alphanumeric_covers_classes_and_dash_underscore() {
        assert_eq!(subsumed("<D>3", &["<AN>+"]), Some(true));
        assert_eq!(subsumed("'-''_'", &["<AN>+"]), Some(true));
        assert_eq!(subsumed("<AN>+", &["<D>+"]), Some(false));
        // <AN> is exactly the union of the leaf classes plus '-' and '_':
        // covered by the union, but by no single member.
        assert_eq!(
            subsumed("<AN>", &["<D>", "<L>", "<U>", "'-'", "'_'"]),
            Some(true)
        );
        for single in ["<D>", "<L>", "<U>", "'-'", "'_'"] {
            assert_eq!(subsumed("<AN>", &[single]), Some(false), "vs {single}");
        }
    }

    #[test]
    fn opaque_literals_participate_in_language_analysis() {
        // 'abc' (an opaque literal) is one string of <L>3's language.
        assert_eq!(subsumed("'abc'", &["<L>3"]), Some(true));
        assert_eq!(subsumed("<L>3", &["'abc'"]), Some(false));
        // The counterexample must be a real <L>3 string other than "abc".
        let a = parse_pattern("<L>3").unwrap();
        let b = parse_pattern("'abc'").unwrap();
        let automaton = MultiPatternAutomaton::build(&[Some(&a), Some(&b)]).unwrap();
        let witness = automaton.uncovered_witness(0, &[1]).unwrap().unwrap();
        assert!(a.matches(&witness), "witness {witness:?}");
        assert!(!b.matches(&witness), "witness {witness:?}");
    }

    #[test]
    fn intersection_witnesses_match_both_patterns() {
        let a = parse_pattern("<D>+").unwrap();
        let b = parse_pattern("<D>2").unwrap();
        let automaton = MultiPatternAutomaton::build(&[Some(&a), Some(&b)]).unwrap();
        let witness = automaton.intersection_witness(0, 1).unwrap().unwrap();
        assert!(a.matches(&witness) && b.matches(&witness), "{witness:?}");

        let disjoint = auto(&["<D>", "<L>"]);
        assert_eq!(disjoint.intersection_witness(0, 1), Some(None));
    }

    #[test]
    fn partial_overlap_is_neither_subsumption() {
        let automaton = auto(&["<D><AN>", "<AN><D>"]);
        let witness = automaton.intersection_witness(0, 1).unwrap();
        assert!(witness.is_some());
        assert_eq!(
            automaton.uncovered_witness(0, &[1]),
            Some(Some("0-".into()))
        );
        assert_eq!(
            automaton.uncovered_witness(1, &[0]),
            Some(Some("-0".into()))
        );
    }

    #[test]
    fn zero_width_patterns_accept_exactly_the_empty_string() {
        let empty = tokenize("");
        let digit = parse_pattern("<D>").unwrap();
        let automaton =
            MultiPatternAutomaton::build(&[Some(&empty), Some(&digit), Some(&empty)]).unwrap();
        let m = automaton.classify(&tokenize("")).unwrap();
        assert!(automaton.matches(&m, 0));
        assert!(!automaton.matches(&m, 1));
        assert_eq!(
            automaton.intersection_witness(0, 2),
            Some(Some(String::new()))
        );
        assert_eq!(automaton.intersection_witness(0, 1), Some(None));
        assert_eq!(automaton.uncovered_witness(0, &[2]), Some(None));
        assert_eq!(
            automaton.uncovered_witness(0, &[1]),
            Some(Some(String::new()))
        );
        assert_eq!(automaton.uncovered_witness(1, &[0]), Some(Some("0".into())));
    }

    #[test]
    fn width_overflow_is_an_error_not_a_verdict() {
        let wide = parse_pattern("<D>300").unwrap();
        let err = MultiPatternAutomaton::build(&[Some(&wide)]).unwrap_err();
        assert_eq!(err, WidthOverflow { required: 300 });
        assert!(err.to_string().contains("300"));
        let sub = parse_pattern("<D>200").unwrap();
        assert_eq!(patterns_subsumed(&sub, &[&wide]), None);
    }

    #[test]
    fn multi_word_language_analysis_carries_across_words() {
        // Force the second segment past the first 64-bit word.
        assert_eq!(subsumed("<D>40'-'<D>30", &["<D>+'-'<D>+"]), Some(true));
        assert_eq!(subsumed("<D>+'-'<D>+", &["<D>40'-'<D>30"]), Some(false));
    }

    #[test]
    fn non_ascii_literals_are_their_own_atoms() {
        assert_eq!(subsumed("'€'<D>2", &["'€'<D>+"]), Some(true));
        assert_eq!(subsumed("'€'<D>+", &["'€'<D>2"]), Some(false));
        assert_eq!(subsumed("'€'", &["'$'"]), Some(false));
    }

    #[test]
    fn witnesses_always_match_their_own_segment() {
        // The uncovered witness is a concrete string: it must really match
        // sub and really not match any cover, per the backtracker.
        let cases = [
            ("<D>+'-'<D>+", vec!["<D>3'-'<D>4"]),
            ("<AN>+", vec!["<D>+", "<L>+"]),
            ("<U>2<D>2", vec!["<U>+<D>3"]),
        ];
        for (sub, covers) in cases {
            let sub = parse_pattern(sub).unwrap();
            let covers: Vec<Pattern> = covers.iter().map(|p| parse_pattern(p).unwrap()).collect();
            let mut slots = vec![Some(&sub)];
            slots.extend(covers.iter().map(Some));
            let automaton = MultiPatternAutomaton::build(&slots).unwrap();
            let indices: Vec<usize> = (1..slots.len()).collect();
            let witness = automaton.uncovered_witness(0, &indices).unwrap().unwrap();
            assert!(sub.matches(&witness), "{witness:?} vs {sub}");
            for cover in &covers {
                assert!(!cover.matches(&witness), "{witness:?} vs {cover}");
            }
        }
    }
}
