use std::fmt;

use crate::error::PatternError;
use crate::token::{Quantifier, Token, TokenClass};

/// A data pattern: a sequence of [`Token`]s describing the structure of a
/// string (Section 3.1 of the paper).
///
/// Patterns are the unit at which CLX users *verify* transformations: they
/// are shown to the user in the paper's notation (`<D>3'-'<D>3'-'<D>4`) and
/// as Wrangler-style regular expressions, and they are the objects the
/// clustering and synthesis layers operate on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    tokens: Vec<Token>,
}

/// The slice of a concrete string covered by one token of a pattern, as
/// produced by [`Pattern::split`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSlice {
    /// Zero-based index of the token within the pattern.
    pub token_index: usize,
    /// Byte offset (inclusive) where the slice starts.
    pub start: usize,
    /// Byte offset (exclusive) where the slice ends.
    pub end: usize,
    /// The matched text.
    pub text: String,
}

impl Pattern {
    /// Build a pattern from a vector of tokens.
    pub fn new(tokens: Vec<Token>) -> Self {
        Pattern { tokens }
    }

    /// The empty pattern (matches only the empty string).
    pub fn empty() -> Self {
        Pattern { tokens: Vec::new() }
    }

    /// The tokens of this pattern.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` if the pattern has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The token at zero-based index `i`.
    pub fn token(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// The token at **one-based** index `i`, the convention used by the
    /// paper's `Extract(i, j)` operator.
    pub fn token_one_based(&self, i: usize) -> Result<&Token, PatternError> {
        if i == 0 || i > self.tokens.len() {
            return Err(PatternError::TokenIndexOutOfBounds {
                index: i,
                len: self.tokens.len(),
            });
        }
        Ok(&self.tokens[i - 1])
    }

    /// Iterate over the tokens.
    pub fn iter(&self) -> std::slice::Iter<'_, Token> {
        self.tokens.iter()
    }

    /// Append a token.
    pub fn push(&mut self, t: Token) {
        self.tokens.push(t);
    }

    /// Token frequency `Q(<t>, p)` of a base token class (Eq. 1 of the
    /// paper): the sum of quantifiers of all tokens of class `class`, with
    /// `+` counted as 1. Literal tokens contribute 0.
    pub fn token_frequency(&self, class: TokenClass) -> usize {
        self.tokens
            .iter()
            .filter(|t| t.class == class)
            .map(Token::frequency_weight)
            .sum()
    }

    /// Does the whole string `s` match this pattern?
    pub fn matches(&self, s: &str) -> bool {
        self.split(s).is_ok()
    }

    /// Split `s` into the per-token slices described by this pattern, or
    /// fail if `s` does not match.
    ///
    /// Matching is anchored at both ends. Exact quantifiers consume exactly
    /// their count of characters; `+` quantifiers are matched with
    /// backtracking so that adjacent tokens with overlapping classes (e.g.
    /// `<AN>+'-'<AN>+`) are still handled correctly.
    pub fn split(&self, s: &str) -> Result<Vec<TokenSlice>, PatternError> {
        let chars: Vec<char> = s.chars().collect();
        let mut slices = Vec::with_capacity(self.tokens.len());
        if self.match_from(&chars, 0, 0, &mut slices) {
            // convert char indices to byte offsets and fill text
            let mut byte_offsets = Vec::with_capacity(chars.len() + 1);
            let mut off = 0usize;
            for c in &chars {
                byte_offsets.push(off);
                off += c.len_utf8();
            }
            byte_offsets.push(off);
            let out = slices
                .iter()
                .map(|&(token_index, cs, ce)| TokenSlice {
                    token_index,
                    start: byte_offsets[cs],
                    end: byte_offsets[ce],
                    text: chars[cs..ce].iter().collect(),
                })
                .collect();
            Ok(out)
        } else {
            Err(PatternError::NoMatch {
                pattern: self.to_string(),
                value: s.to_string(),
            })
        }
    }

    /// Recursive backtracking matcher over (token index, char position).
    /// `slices` records `(token_index, char_start, char_end)` for the match
    /// found so far and is left in a consistent state on success.
    fn match_from(
        &self,
        chars: &[char],
        ti: usize,
        pos: usize,
        slices: &mut Vec<(usize, usize, usize)>,
    ) -> bool {
        if ti == self.tokens.len() {
            return pos == chars.len();
        }
        let tok = &self.tokens[ti];
        match &tok.class {
            TokenClass::Literal(lit) => {
                let lit_chars: Vec<char> = lit.chars().collect();
                if pos + lit_chars.len() <= chars.len()
                    && chars[pos..pos + lit_chars.len()] == lit_chars[..]
                {
                    slices.push((ti, pos, pos + lit_chars.len()));
                    if self.match_from(chars, ti + 1, pos + lit_chars.len(), slices) {
                        return true;
                    }
                    slices.pop();
                }
                false
            }
            class => {
                // Maximum run of characters belonging to the class.
                let mut max_run = 0;
                while pos + max_run < chars.len() && class.contains_char(chars[pos + max_run]) {
                    max_run += 1;
                }
                match tok.quantifier {
                    Quantifier::Exact(n) => {
                        if max_run >= n {
                            slices.push((ti, pos, pos + n));
                            if self.match_from(chars, ti + 1, pos + n, slices) {
                                return true;
                            }
                            slices.pop();
                        }
                        false
                    }
                    Quantifier::OneOrMore => {
                        // Greedy with backtracking.
                        for take in (1..=max_run).rev() {
                            slices.push((ti, pos, pos + take));
                            if self.match_from(chars, ti + 1, pos + take, slices) {
                                return true;
                            }
                            slices.pop();
                        }
                        false
                    }
                }
            }
        }
    }

    /// Is `self` equal to or a generalization of `child`?
    ///
    /// Each token of `self` must *cover* one or more consecutive tokens of
    /// `child`:
    ///
    /// * a literal token covers exactly an identical literal token;
    /// * a base token with an exact quantifier covers a single child token
    ///   of a class it generalizes and with the same exact quantifier;
    /// * a base token with the `+` quantifier covers a non-empty run of
    ///   consecutive child tokens whose classes it generalizes (this is what
    ///   lets `<AN>+` cover `<A>2 <D>3 '-'` after the strategy-3 refinement
    ///   of §4.2).
    pub fn covers(&self, child: &Pattern) -> bool {
        self.covers_from(child, 0, 0)
    }

    fn covers_from(&self, child: &Pattern, pi: usize, ci: usize) -> bool {
        if pi == self.tokens.len() {
            return ci == child.tokens.len();
        }
        if ci == child.tokens.len() {
            return false;
        }
        let ptok = &self.tokens[pi];
        match &ptok.class {
            TokenClass::Literal(a) => match &child.tokens[ci].class {
                TokenClass::Literal(b) if a == b => self.covers_from(child, pi + 1, ci + 1),
                _ => false,
            },
            _ => match ptok.quantifier {
                Quantifier::Exact(_) => {
                    let ctok = &child.tokens[ci];
                    if ptok.generalizes(ctok) {
                        self.covers_from(child, pi + 1, ci + 1)
                    } else {
                        false
                    }
                }
                Quantifier::OneOrMore => {
                    // Consume as many consecutive generalizable child tokens
                    // as possible, trying the longest run first.
                    let mut max_take = 0;
                    while ci + max_take < child.tokens.len()
                        && ptok.class.generalizes(&child.tokens[ci + max_take].class)
                    {
                        max_take += 1;
                    }
                    for take in (1..=max_take).rev() {
                        if self.covers_from(child, pi + 1, ci + take) {
                            return true;
                        }
                    }
                    false
                }
            },
        }
    }

    /// Merge adjacent tokens of the same base class into a single token.
    ///
    /// Exact quantifiers are summed; if either side is `+` the result is
    /// `+`. This is used after applying a generalization strategy so that
    /// e.g. `<A>+<A>+` collapses to `<A>+` as in Figure 6 of the paper.
    pub fn merge_adjacent(&self) -> Pattern {
        let mut out: Vec<Token> = Vec::with_capacity(self.tokens.len());
        for tok in &self.tokens {
            if let Some(last) = out.last_mut() {
                if last.is_base() && tok.is_base() && last.class == tok.class {
                    last.quantifier = match (last.quantifier, tok.quantifier) {
                        (Quantifier::Exact(a), Quantifier::Exact(b)) => Quantifier::Exact(a + b),
                        _ => Quantifier::OneOrMore,
                    };
                    continue;
                }
            }
            out.push(tok.clone());
        }
        Pattern::new(out)
    }

    /// Render the pattern as an anchored `clx-regex` regular expression
    /// matching exactly the strings of this pattern.
    pub fn to_regex(&self) -> String {
        let mut out = String::from("^");
        for t in &self.tokens {
            out.push_str(&t.to_regex());
        }
        out.push('$');
        out
    }

    /// Render the pattern as an anchored `clx-regex` regular expression in
    /// which every token listed in `grouped` (zero-based indices, ascending)
    /// is wrapped in its own capture group.
    pub fn to_regex_grouped(&self, grouped: &[usize]) -> String {
        let mut out = String::from("^");
        for (i, t) in self.tokens.iter().enumerate() {
            if grouped.contains(&i) {
                out.push('(');
                out.push_str(&t.to_regex());
                out.push(')');
            } else {
                out.push_str(&t.to_regex());
            }
        }
        out.push('$');
        out
    }

    /// A compact notation string, e.g. `<U><L>2<D>3'@'<L>5'.'<L>3`.
    pub fn notation(&self) -> String {
        self.tokens.iter().map(Token::notation).collect()
    }

    /// The minimum length (in characters) of any string matching this
    /// pattern.
    pub fn min_string_len(&self) -> usize {
        self.tokens
            .iter()
            .map(|t| match &t.class {
                TokenClass::Literal(s) => s.chars().count(),
                _ => t.quantifier.min_count(),
            })
            .sum()
    }

    /// `true` if every token has an exact (natural-number) quantifier, i.e.
    /// this is a *leaf* pattern as produced by the tokenizer.
    pub fn is_leaf(&self) -> bool {
        self.tokens
            .iter()
            .all(|t| matches!(t.quantifier, Quantifier::Exact(_)))
    }

    /// Indices (zero-based) of the base tokens of this pattern.
    pub fn base_token_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_base())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of base (non-literal) tokens.
    pub fn base_token_count(&self) -> usize {
        self.tokens.iter().filter(|t| t.is_base()).count()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

impl FromIterator<Token> for Pattern {
    fn from_iter<I: IntoIterator<Item = Token>>(iter: I) -> Self {
        Pattern::new(iter.into_iter().collect())
    }
}

impl From<Vec<Token>> for Pattern {
    fn from(tokens: Vec<Token>) -> Self {
        Pattern::new(tokens)
    }
}

impl<'a> IntoIterator for &'a Pattern {
    type Item = &'a Token;
    type IntoIter = std::slice::Iter<'a, Token>;
    fn into_iter(self) -> Self::IntoIter {
        self.tokens.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    fn d(n: usize) -> Token {
        Token::base(TokenClass::Digit, n)
    }
    fn lit(s: &str) -> Token {
        Token::literal(s)
    }

    #[test]
    fn notation_roundtrip_phone() {
        let p = Pattern::new(vec![d(3), lit("-"), d(3), lit("-"), d(4)]);
        assert_eq!(p.to_string(), "<D>3'-'<D>3'-'<D>4");
    }

    #[test]
    fn token_frequency_eq1() {
        // Example 7 of the paper: pattern from "[CPT-00350".
        let p = Pattern::new(vec![
            lit("["),
            Token::base(TokenClass::Upper, 3),
            lit("-"),
            d(5),
        ]);
        assert_eq!(p.token_frequency(TokenClass::Digit), 5);
        assert_eq!(p.token_frequency(TokenClass::Upper), 3);
        assert_eq!(p.token_frequency(TokenClass::Lower), 0);

        // Target [ '[', <U>+, '-', <D>+, ']' ]: '+' counts as 1.
        let t = Pattern::new(vec![
            lit("["),
            Token::plus(TokenClass::Upper),
            lit("-"),
            Token::plus(TokenClass::Digit),
            lit("]"),
        ]);
        assert_eq!(t.token_frequency(TokenClass::Digit), 1);
        assert_eq!(t.token_frequency(TokenClass::Upper), 1);
    }

    #[test]
    fn matches_exact_quantifiers() {
        let p = Pattern::new(vec![d(3), lit("-"), d(3), lit("-"), d(4)]);
        assert!(p.matches("734-422-8073"));
        assert!(!p.matches("734-422-807"));
        assert!(!p.matches("734-422-80733"));
        assert!(!p.matches("abc-422-8073"));
        assert!(!p.matches(""));
    }

    #[test]
    fn matches_plus_quantifiers_with_backtracking() {
        // <AN>+'-'<AN>+ : '-' is also in <AN>, so greedy matching must
        // backtrack to leave a '-' for the literal.
        let p = Pattern::new(vec![
            Token::plus(TokenClass::AlphaNumeric),
            lit("-"),
            Token::plus(TokenClass::AlphaNumeric),
        ]);
        assert!(p.matches("abc-def"));
        assert!(p.matches("a-b-c"));
        assert!(!p.matches("abc"));
        assert!(!p.matches("-abc"));
    }

    #[test]
    fn split_produces_slices() {
        let p = Pattern::new(vec![d(3), lit("-"), d(4)]);
        let slices = p.split("555-1234").unwrap();
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[0].text, "555");
        assert_eq!(slices[1].text, "-");
        assert_eq!(slices[2].text, "1234");
        assert_eq!(slices[2].start, 4);
        assert_eq!(slices[2].end, 8);
    }

    #[test]
    fn split_fails_cleanly() {
        let p = Pattern::new(vec![d(3)]);
        let err = p.split("12a").unwrap_err();
        assert!(matches!(err, PatternError::NoMatch { .. }));
    }

    #[test]
    fn split_unicode_offsets_are_bytes() {
        let p = Pattern::new(vec![lit("é"), d(2)]);
        let slices = p.split("é42").unwrap();
        assert_eq!(slices[0].end, 2); // 'é' is two bytes
        assert_eq!(slices[1].start, 2);
        assert_eq!(slices[1].text, "42");
    }

    #[test]
    fn empty_pattern_matches_empty_string_only() {
        let p = Pattern::empty();
        assert!(p.matches(""));
        assert!(!p.matches("x"));
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn covers_identical() {
        let p = tokenize("734-422-8073");
        assert!(p.covers(&p));
    }

    #[test]
    fn covers_quantifier_generalization() {
        let leaf = tokenize("Bob123@gmail.com");
        // strategy 1: numbers -> '+'
        let parent = Pattern::new(vec![
            Token::plus(TokenClass::Upper),
            Token::plus(TokenClass::Lower),
            Token::plus(TokenClass::Digit),
            lit("@"),
            Token::plus(TokenClass::Lower),
            lit("."),
            Token::plus(TokenClass::Lower),
        ]);
        assert!(parent.covers(&leaf));
        assert!(!leaf.covers(&parent));
    }

    #[test]
    fn covers_merging_generalization() {
        let leaf = tokenize("Bob123@gmail.com");
        // Figure 6 level P3: <AN>+'@'<AN>+'.'<AN>+ — each <AN>+ covers a run
        // of child tokens.
        let p3 = Pattern::new(vec![
            Token::plus(TokenClass::AlphaNumeric),
            lit("@"),
            Token::plus(TokenClass::AlphaNumeric),
            lit("."),
            Token::plus(TokenClass::AlphaNumeric),
        ]);
        assert!(p3.covers(&leaf));
    }

    #[test]
    fn covers_rejects_structural_mismatch() {
        let a = tokenize("734-422-8073");
        let b = tokenize("(734) 422-8073");
        assert!(!a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    fn merge_adjacent_sums_exact() {
        let p = Pattern::new(vec![d(2), d(3), lit("-"), d(1)]);
        let merged = p.merge_adjacent();
        assert_eq!(merged.to_string(), "<D>5'-'<D>");
    }

    #[test]
    fn merge_adjacent_plus_dominates() {
        let p = Pattern::new(vec![Token::plus(TokenClass::Digit), d(3)]);
        assert_eq!(p.merge_adjacent().to_string(), "<D>+");
    }

    #[test]
    fn merge_adjacent_does_not_merge_literals() {
        let p = Pattern::new(vec![lit("-"), lit("-")]);
        assert_eq!(p.merge_adjacent().len(), 2);
    }

    #[test]
    fn regex_rendering() {
        let p = Pattern::new(vec![d(3), lit("-"), d(4)]);
        assert_eq!(p.to_regex(), "^[0-9]{3}-[0-9]{4}$");
        assert_eq!(p.to_regex_grouped(&[0, 2]), "^([0-9]{3})-([0-9]{4})$");
    }

    #[test]
    fn one_based_token_access() {
        let p = Pattern::new(vec![d(3), lit("-"), d(4)]);
        assert_eq!(p.token_one_based(1).unwrap(), &d(3));
        assert_eq!(p.token_one_based(3).unwrap(), &d(4));
        assert!(p.token_one_based(0).is_err());
        assert!(p.token_one_based(4).is_err());
    }

    #[test]
    fn min_string_len() {
        let p = Pattern::new(vec![d(3), lit("--"), Token::plus(TokenClass::Lower)]);
        assert_eq!(p.min_string_len(), 6);
    }

    #[test]
    fn leaf_detection() {
        assert!(tokenize("abc-123").is_leaf());
        let parent = Pattern::new(vec![Token::plus(TokenClass::Lower)]);
        assert!(!parent.is_leaf());
    }

    #[test]
    fn base_token_accounting() {
        let p = Pattern::new(vec![d(3), lit("-"), d(4)]);
        assert_eq!(p.base_token_count(), 2);
        assert_eq!(p.base_token_indices(), vec![0, 2]);
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let p: Pattern = vec![d(1), lit(":")].into_iter().collect();
        assert_eq!(p.len(), 2);
        let classes: Vec<_> = (&p).into_iter().map(|t| t.class.clone()).collect();
        assert_eq!(classes[0], TokenClass::Digit);
    }
}
