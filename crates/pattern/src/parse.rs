use crate::error::PatternError;
use crate::pattern::Pattern;
use crate::token::{Quantifier, Token, TokenClass};

/// Parse the textual pattern syntax used throughout the paper and by
/// [`Pattern::notation`](crate::Pattern::notation).
///
/// Grammar:
///
/// ```text
/// pattern  := token*
/// token    := base quant? | literal
/// base     := "<D>" | "<L>" | "<U>" | "<A>" | "<AN>"
/// quant    := NUMBER | "+"
/// literal  := "'" <any chars except '> "'"
/// ```
///
/// # Example
///
/// ```
/// use clx_pattern::{parse_pattern, tokenize};
/// let p = parse_pattern("<D>3'-'<D>3'-'<D>4").unwrap();
/// assert_eq!(p, tokenize("734-422-8073"));
/// assert!(parse_pattern("<D>+'x'").unwrap().matches("1234x"));
/// ```
pub fn parse_pattern(input: &str) -> Result<Pattern, PatternError> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '<' => {
                let start = i;
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == '>')
                    .map(|p| i + p)
                    .ok_or_else(|| PatternError::Parse {
                        position: byte_pos(input, start),
                        message: "unterminated token class (missing '>')".into(),
                    })?;
                let name: String = chars[start + 1..end].iter().collect();
                let class = match name.as_str() {
                    "D" => TokenClass::Digit,
                    "L" => TokenClass::Lower,
                    "U" => TokenClass::Upper,
                    "A" => TokenClass::Alpha,
                    "AN" => TokenClass::AlphaNumeric,
                    other => {
                        return Err(PatternError::Parse {
                            position: byte_pos(input, start),
                            message: format!("unknown token class <{other}>"),
                        })
                    }
                };
                i = end + 1;
                // Optional quantifier.
                let quantifier = if i < chars.len() && chars[i] == '+' {
                    i += 1;
                    Quantifier::OneOrMore
                } else {
                    let qstart = i;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i > qstart {
                        let n: usize = chars[qstart..i]
                            .iter()
                            .collect::<String>()
                            .parse()
                            .map_err(|_| PatternError::Parse {
                                position: byte_pos(input, qstart),
                                message: "invalid quantifier".into(),
                            })?;
                        if n == 0 {
                            return Err(PatternError::Parse {
                                position: byte_pos(input, qstart),
                                message: "quantifier must be at least 1".into(),
                            });
                        }
                        Quantifier::Exact(n)
                    } else {
                        Quantifier::Exact(1)
                    }
                };
                tokens.push(Token { class, quantifier });
            }
            '\'' => {
                let start = i + 1;
                let end = chars[start..]
                    .iter()
                    .position(|&c| c == '\'')
                    .map(|p| start + p)
                    .ok_or_else(|| PatternError::Parse {
                        position: byte_pos(input, i),
                        message: "unterminated literal (missing closing quote)".into(),
                    })?;
                let value: String = chars[start..end].iter().collect();
                if value.is_empty() {
                    return Err(PatternError::Parse {
                        position: byte_pos(input, i),
                        message: "empty literal".into(),
                    });
                }
                tokens.push(Token::literal(value));
                i = end + 1;
            }
            c if c.is_whitespace() => {
                // Whitespace between tokens is allowed for readability.
                i += 1;
            }
            other => {
                return Err(PatternError::Parse {
                    position: byte_pos(input, i),
                    message: format!(
                        "unexpected character {other:?} (tokens start with '<' or \"'\")"
                    ),
                })
            }
        }
    }
    Ok(Pattern::new(tokens))
}

/// Byte offset of the `char_idx`-th character of `s`.
fn byte_pos(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize;

    #[test]
    fn parse_simple() {
        let p = parse_pattern("<D>3'-'<D>4").unwrap();
        assert_eq!(p.to_string(), "<D>3'-'<D>4");
        assert!(p.matches("555-1234"));
    }

    #[test]
    fn parse_plus_and_implicit_one() {
        let p = parse_pattern("<U><L>+'@'<AN>+").unwrap();
        assert_eq!(p.to_string(), "<U><L>+'@'<AN>+");
        assert!(p.matches("Bob@gmail"));
    }

    #[test]
    fn roundtrip_with_tokenizer() {
        for s in [
            "Bob123@gmail.com",
            "(734) 645-8397",
            "734.236.3466",
            "[CPT-00350",
            "Dr. Eran Yahav",
        ] {
            let p = tokenize(s);
            let reparsed = parse_pattern(&p.notation()).unwrap();
            assert_eq!(p, reparsed, "roundtrip failed for {s:?}");
        }
    }

    #[test]
    fn whitespace_between_tokens_is_ignored() {
        let p = parse_pattern("<D>3 '-' <D>4").unwrap();
        assert_eq!(p.to_string(), "<D>3'-'<D>4");
    }

    #[test]
    fn multi_char_literal() {
        let p = parse_pattern("'Dr.'' '<U><L>+").unwrap();
        assert!(p.matches("Dr. Yahav"));
    }

    #[test]
    fn multi_digit_quantifier() {
        let p = parse_pattern("<D>12").unwrap();
        assert!(p.matches("123456789012"));
        assert!(!p.matches("123"));
    }

    #[test]
    fn error_unknown_class() {
        let err = parse_pattern("<X>3").unwrap_err();
        assert!(matches!(err, PatternError::Parse { .. }));
        assert!(err.to_string().contains("<X>"));
    }

    #[test]
    fn error_unterminated_class() {
        assert!(parse_pattern("<D").is_err());
    }

    #[test]
    fn error_unterminated_literal() {
        assert!(parse_pattern("'abc").is_err());
    }

    #[test]
    fn error_empty_literal() {
        assert!(parse_pattern("''").is_err());
    }

    #[test]
    fn error_zero_quantifier() {
        assert!(parse_pattern("<D>0").is_err());
    }

    #[test]
    fn error_stray_character() {
        let err = parse_pattern("<D>3x").unwrap_err();
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn empty_input_is_empty_pattern() {
        assert!(parse_pattern("").unwrap().is_empty());
    }
}
