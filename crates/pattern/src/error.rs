use std::fmt;

/// Errors produced while parsing or manipulating patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// The textual pattern syntax could not be parsed.
    Parse {
        /// Byte offset in the input at which parsing failed.
        position: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A token index was out of bounds for the pattern it was applied to.
    TokenIndexOutOfBounds {
        /// The (one-based) index that was requested.
        index: usize,
        /// The number of tokens in the pattern.
        len: usize,
    },
    /// A string did not match the pattern it was being split against.
    NoMatch {
        /// The pattern in textual form.
        pattern: String,
        /// The string that failed to match.
        value: String,
    },
    /// An empty pattern was supplied where a non-empty one is required.
    EmptyPattern,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Parse { position, message } => {
                write!(f, "pattern parse error at byte {position}: {message}")
            }
            PatternError::TokenIndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "token index {index} out of bounds for pattern of {len} tokens"
                )
            }
            PatternError::NoMatch { pattern, value } => {
                write!(f, "string {value:?} does not match pattern {pattern}")
            }
            PatternError::EmptyPattern => write!(f, "empty pattern"),
        }
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = PatternError::Parse {
            position: 3,
            message: "unexpected character".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        assert!(e.to_string().contains("unexpected character"));
    }

    #[test]
    fn display_index_error() {
        let e = PatternError::TokenIndexOutOfBounds { index: 9, len: 4 };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'));
    }

    #[test]
    fn display_no_match() {
        let e = PatternError::NoMatch {
            pattern: "<D>3".into(),
            value: "abc".into(),
        };
        assert!(e.to_string().contains("<D>3"));
        assert!(e.to_string().contains("abc"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(PatternError::EmptyPattern);
        assert_eq!(e.to_string(), "empty pattern");
    }
}
