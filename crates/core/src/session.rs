//! The CLX interaction session (Figure 5 of the paper), with the
//! Cluster–Label–Transform protocol encoded in the type system.
//!
//! A session is parameterized by its *phase*: [`ClxSession<Clustered>`]
//! exposes only the clustering surface (pattern list, hierarchy, data);
//! labelling **consumes** it and returns a [`ClxSession<Labelled>`], which
//! is the only type that has the transform-phase methods ([`apply`],
//! [`compile`], [`explanation`], [`repair`], …). Calling a transform method
//! before labelling is a *compile error*, not a runtime `Err` — the
//! protocol the paper's verifiability argument rests on is checked by
//! `rustc`, and the old `ClxError::NotLabelled` no longer exists.
//!
//! [`apply`]: ClxSession::apply
//! [`compile`]: ClxSession::compile
//! [`explanation`]: ClxSession::explanation
//! [`repair`]: ClxSession::repair
//!
//! Dynamic callers that cannot pin the phase at compile time (a REPL loop,
//! a service holding many sessions) use the type-erased [`AnySession`]
//! enum and match on the phase at their boundary.

use std::collections::HashMap;
use std::fmt;

use std::sync::Arc;

use clx_cluster::{PatternHierarchy, PatternProfiler, ProfilerOptions};
use clx_column::{Column, ColumnBuilder, StreamBudget};
use clx_engine::ProgramDelta;
use clx_engine::{ColumnStream, CompiledProgram};
use clx_pattern::{tokenize, tokenize_detailed, Pattern, SplitTokenizer, TokenizedString};
use clx_synth::{synthesize_column, RankedPlan, Synthesis, SynthesisOptions};
use clx_telemetry::{MetricSink, Span};
use clx_unifi::{explain_program, transform_lenient, Explanation, Program, TransformOutcome};

use crate::report::{RowOutcome, TransformReport};

/// Errors produced by the session API.
///
/// Note there is no "not labelled" variant: phase ordering is enforced by
/// the session types, so it cannot fail at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClxError {
    /// The label supplied by example does not correspond to any pattern in
    /// the profiled data and could not be tokenized into a usable pattern.
    EmptyTargetPattern,
    /// Explaining the program failed (see `clx-unifi` for details).
    Explain(String),
    /// Evaluating the program failed; this indicates a synthesizer bug, not
    /// bad input data.
    Eval(String),
    /// Compiling the program for batch execution failed; this indicates an
    /// ill-formed program (see `clx-engine`), not bad input data.
    Compile(String),
    /// Strict compilation rejected the program: the static analyzer
    /// ([`clx_analyze`]) proved an `Error`-severity defect (dead branch,
    /// shadowed branch, or unsafe `Extract`) before any row ran.
    Analysis(String),
    /// [`ClxSession::reverify`] was handed a report that records no
    /// originating program (one assembled outside the session's apply
    /// paths) — there is nothing to diff the current program against.
    MissingProvenance,
}

impl fmt::Display for ClxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClxError::EmptyTargetPattern => write!(f, "the target pattern is empty"),
            ClxError::Explain(e) => write!(f, "failed to explain program: {e}"),
            ClxError::Eval(e) => write!(f, "failed to evaluate program: {e}"),
            ClxError::Compile(e) => write!(f, "failed to compile program: {e}"),
            ClxError::Analysis(e) => write!(f, "program rejected by static analysis: {e}"),
            ClxError::MissingProvenance => {
                write!(f, "the report records no originating program to re-verify")
            }
        }
    }
}

impl std::error::Error for ClxError {}

/// A failed phase transition: labelling rejected the target pattern.
///
/// Labelling consumes the clustered session, so the error hands it back —
/// the (potentially expensive) profiling work is not lost. The session is
/// boxed to keep the `Err` variant a pointer wide on the happy path.
#[derive(Debug, Clone)]
pub struct LabelError {
    /// The clustered session, returned unchanged.
    pub session: Box<ClxSession<Clustered>>,
    /// Why labelling failed.
    pub error: ClxError,
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "labelling failed: {}", self.error)
    }
}

impl std::error::Error for LabelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Options for a CLX session: profiling options for the clustering phase and
/// synthesis options for the transform phase.
#[derive(Debug, Clone, Default)]
pub struct ClxOptions {
    /// Pattern-profiling (clustering) options.
    pub profiler: ProfilerOptions,
    /// Program-synthesis options.
    pub synthesis: SynthesisOptions,
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Clustered {}
    impl Sealed for super::Labelled {}
}

/// A session phase (sealed: exactly [`Clustered`] and [`Labelled`]).
///
/// Each phase type carries exactly the state that phase has earned:
/// [`Clustered`] is zero-sized, [`Labelled`] holds the target pattern and
/// the synthesis result. A `ClxSession<P>` therefore cannot even
/// *represent* "transform state without a label".
pub trait Phase: sealed::Sealed + fmt::Debug + Clone {}

/// The cluster phase: the column is profiled, no target is labelled yet.
/// Zero-sized — a `ClxSession<Clustered>` is just data + hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Clustered;

impl Phase for Clustered {}

/// The transform phase: a target pattern is labelled and a program has been
/// synthesized for it.
#[derive(Debug, Clone)]
pub struct Labelled {
    target: Pattern,
    synthesis: Synthesis,
}

impl Phase for Labelled {}

/// A CLX session over one column of data.
///
/// The session walks the user through the Cluster–Label–Transform loop and
/// owns all intermediate state: the shared [`Column`] (interned rows with
/// per-distinct-value cached token streams, which profiling, synthesis and
/// execution all read), the pattern hierarchy, and — once labelled — the
/// target pattern, the synthesized program and its repair alternatives.
///
/// The phase parameter makes illegal orderings unrepresentable: transform
/// methods exist only on `ClxSession<Labelled>`, which only
/// [`ClxSession::label`] / [`ClxSession::label_by_example`] can produce.
///
/// ```compile_fail
/// use clx_core::ClxSession;
///
/// let session = ClxSession::new(vec!["734-422-8073".to_string()]);
/// // ERROR: `apply` exists only on `ClxSession<Labelled>`; an unlabelled
/// // session cannot even name the transform phase.
/// let _ = session.apply();
/// ```
///
/// The same protocol, followed correctly:
///
/// ```
/// use clx_core::ClxSession;
///
/// let session = ClxSession::new(vec![
///     "(734) 645-8397".to_string(),
///     "734-422-8073".to_string(),
/// ]);
/// let session = session.label_by_example("734-422-8073").unwrap();
/// let report = session.apply().unwrap();
/// assert_eq!(report.values(), vec!["734-645-8397", "734-422-8073"]);
/// ```
#[derive(Debug, Clone)]
pub struct ClxSession<P: Phase = Clustered> {
    data: Column,
    options: ClxOptions,
    hierarchy: PatternHierarchy,
    phase: P,
    telemetry: Option<Arc<dyn MetricSink>>,
}

// ---------------------------------------------------------------------------
// Every phase: the clustering surface.
// ---------------------------------------------------------------------------

impl<P: Phase> ClxSession<P> {
    /// The session's column: the raw rows plus the interned distinct
    /// values and their cached token streams.
    pub fn data(&self) -> &Column {
        &self.data
    }

    /// The options the session was created with.
    pub fn options(&self) -> &ClxOptions {
        &self.options
    }

    /// The pattern-cluster hierarchy produced by the clustering phase.
    pub fn hierarchy(&self) -> &PatternHierarchy {
        &self.hierarchy
    }

    /// The pattern list shown to the user for labelling: distinct leaf
    /// patterns with cluster sizes, largest first (Figure 3 of the paper).
    pub fn patterns(&self) -> Vec<(Pattern, usize)> {
        self.hierarchy.pattern_summary()
    }

    /// The metric sink observing this session, if one is attached.
    pub fn telemetry(&self) -> Option<&Arc<dyn MetricSink>> {
        self.telemetry.as_ref()
    }

    /// Attach a metric sink to an existing session (builder style).
    ///
    /// Phases that ran before the sink was attached are not retroactively
    /// recorded; prefer [`ClxSession::with_telemetry`] to observe the
    /// cluster phase too. The sink survives every phase transition
    /// ([`label`](ClxSession::label), [`unlabel`](ClxSession::unlabel),
    /// [`relabel`](ClxSession::relabel)) and is propagated into streams
    /// opened by [`stream_columns`](ClxSession::stream_columns).
    pub fn attach_telemetry(mut self, sink: Arc<dyn MetricSink>) -> Self {
        self.telemetry = Some(sink);
        self
    }
}

// ---------------------------------------------------------------------------
// Cluster phase: construction and the Label transition.
// ---------------------------------------------------------------------------

impl ClxSession<Clustered> {
    /// Start a session: profiles (clusters) the data immediately.
    pub fn new(data: Vec<String>) -> Self {
        Self::with_options(data, ClxOptions::default())
    }

    /// Start a session with custom options.
    ///
    /// The column is built through the sharded [`ColumnBuilder`]
    /// (automatic shard selection): interning and per-distinct-value
    /// tokenization run across worker threads for very large inputs, with
    /// output row-for-row identical to the sequential path.
    pub fn with_options(data: Vec<String>, options: ClxOptions) -> Self {
        Self::from_column(ColumnBuilder::new().build(data), options)
    }

    /// Start an *observed* session: every phase of the CLX loop reports to
    /// `sink` as `core.phase.*` latency histograms (`cluster_ns`,
    /// `label_ns`, `synthesize_ns`, `compile_ns`, `apply_ns`), the column
    /// build reports its `column.builder.*` shard timings, and streams
    /// opened by [`ClxSession::stream_columns`] /
    /// [`ClxSession::stream_columns_with_budget`] inherit the sink for
    /// their per-chunk `engine.stream.*` / `column.interner.*` series.
    ///
    /// Sessions without a sink pay no telemetry cost at all — no clock
    /// reads, no atomic traffic, just one `Option` branch per phase.
    pub fn with_telemetry(
        data: Vec<String>,
        options: ClxOptions,
        sink: Arc<dyn MetricSink>,
    ) -> Self {
        let column = ColumnBuilder::new()
            .with_telemetry(Arc::clone(&sink))
            .build(data);
        Self::build(column, options, Some(sink))
    }

    /// Start a session over an already-built [`Column`] (reusing its
    /// interned values and cached token streams).
    pub fn from_column(data: Column, options: ClxOptions) -> Self {
        Self::build(data, options, None)
    }

    fn build(data: Column, options: ClxOptions, telemetry: Option<Arc<dyn MetricSink>>) -> Self {
        let hierarchy = {
            let _cluster = Span::start(telemetry.as_ref(), "core.phase.cluster_ns");
            PatternProfiler::with_options(options.profiler.clone()).profile_column(&data)
        };
        ClxSession {
            data,
            options,
            hierarchy,
            phase: Clustered,
            telemetry,
        }
    }

    /// **Label** phase transition: record the desired target pattern,
    /// synthesize the transformation program, and return the labelled
    /// session — the only type carrying the transform-phase methods.
    ///
    /// On failure the clustered session is handed back inside the
    /// [`LabelError`], so profiling work is never lost.
    pub fn label(self, target: Pattern) -> Result<ClxSession<Labelled>, LabelError> {
        if target.is_empty() {
            return Err(LabelError {
                session: Box::new(self),
                error: ClxError::EmptyTargetPattern,
            });
        }
        let _label = Span::start(self.telemetry.as_ref(), "core.phase.label_ns");
        let synthesis = {
            let _synth = Span::start(self.telemetry.as_ref(), "core.phase.synthesize_ns");
            synthesize_column(
                &self.hierarchy,
                &self.data,
                &target,
                &self.options.synthesis,
            )
        };
        Ok(ClxSession {
            data: self.data,
            options: self.options,
            hierarchy: self.hierarchy,
            phase: Labelled { target, synthesis },
            telemetry: self.telemetry,
        })
    }

    /// Label the target by giving one example value in the desired format
    /// (the "alternatively specify the target data form manually" path of
    /// §3.2). The example is tokenized into its leaf pattern.
    pub fn label_by_example(self, example: &str) -> Result<ClxSession<Labelled>, LabelError> {
        self.label(tokenize(example))
    }
}

// ---------------------------------------------------------------------------
// Transform phase: everything that needs a labelled target.
// ---------------------------------------------------------------------------

impl ClxSession<Labelled> {
    /// The labelled target pattern.
    pub fn target(&self) -> &Pattern {
        &self.phase.target
    }

    /// The synthesis result of the label transition, including the ranked
    /// alternatives used by [`ClxSession::repair`].
    pub fn synthesis(&self) -> &Synthesis {
        &self.phase.synthesis
    }

    /// Drop the label (and its synthesized program), returning to the
    /// cluster phase. Together with [`ClxSession::label`] this lets a
    /// caller re-label without re-profiling.
    pub fn unlabel(self) -> ClxSession<Clustered> {
        ClxSession {
            data: self.data,
            options: self.options,
            hierarchy: self.hierarchy,
            phase: Clustered,
            telemetry: self.telemetry,
        }
    }

    /// Re-label with a different target (an [`ClxSession::unlabel`]
    /// followed by [`ClxSession::label`]).
    pub fn relabel(self, target: Pattern) -> Result<ClxSession<Labelled>, LabelError> {
        self.unlabel().label(target)
    }

    /// The currently selected UniFi program.
    pub fn program(&self) -> Program {
        self.phase.synthesis.program()
    }

    /// The program explained as regexp `Replace` operations (Figure 4).
    pub fn explanation(&self) -> Result<Explanation, ClxError> {
        explain_program(&self.program()).map_err(|e| ClxError::Explain(e.to_string()))
    }

    /// The numbered operation list shown to the user, e.g.
    /// `1 Replace '/^.../' in column1 with '($1) $2-$3'`.
    pub fn suggested_operations(&self, column: &str) -> Result<String, ClxError> {
        Ok(self.explanation()?.render(column))
    }

    /// Repair alternatives for one source pattern (§6.4), or `None` when
    /// the pattern names no synthesized source.
    pub fn alternatives(&self, pattern: &Pattern) -> Option<&[RankedPlan]> {
        self.phase.synthesis.alternatives(pattern)
    }

    /// Repair: replace the selected plan of `pattern` with the `choice`-th
    /// ranked alternative. Returns `false` when the pattern or index is
    /// unknown.
    pub fn repair(&mut self, pattern: &Pattern, choice: usize) -> bool {
        self.phase.synthesis.repair(pattern, choice)
    }

    /// Re-verify a previously produced report against the session's
    /// *current* program, re-deciding **only the distinct values the
    /// program change can affect** — the interactive repair loop's
    /// O(affected-distincts) path (ROADMAP item 5).
    ///
    /// The report must carry provenance (be a product of
    /// [`ClxSession::apply`] or [`ClxSession::apply_parallel`]);
    /// otherwise [`ClxError::MissingProvenance`] is returned. Both the
    /// originating and the current program are compiled, a
    /// [`ProgramDelta`] is built between them, and a clone of the report
    /// is patched in place: distinct values the delta proves unaffected
    /// keep their stored outcome verbatim, everything else is re-decided
    /// through the new program. The result is row-for-row equal to a
    /// fresh [`ClxSession::apply`] — at a cost proportional to the number
    /// of *affected* distincts, not the number of rows.
    ///
    /// Under a session sink the step is timed as `core.phase.reverify_ns`
    /// and the delta publishes
    /// `engine.delta.{branches_changed,distincts_redecided,outcomes_patched}`.
    ///
    /// [`ClxError::Compile`] is returned when either program fails to
    /// compile. The *originating* side can hit this because `apply` is
    /// lenient: it will run an ill-formed program (skipping branches that
    /// error per value) that the compiler rejects outright. Such reports
    /// cannot be incrementally re-verified — re-run `apply` instead.
    pub fn reverify(&self, report: &TransformReport) -> Result<TransformReport, ClxError> {
        let _reverify = Span::start(self.telemetry.as_ref(), "core.phase.reverify_ns");
        let old_program = report.provenance().ok_or(ClxError::MissingProvenance)?;
        let old = CompiledProgram::compile_observed(
            old_program,
            report.target(),
            self.telemetry.as_ref(),
        )
        .map_err(|e| ClxError::Compile(e.to_string()))?;
        let new = self.compile()?;
        let delta = ProgramDelta::between_observed(&old, &new, self.telemetry.as_ref());
        let mut batch = report.batch().clone();
        batch.patch_columnar_observed(&delta, &new, &self.data, self.telemetry.as_ref());
        let mut patched = TransformReport::from_batch(batch);
        patched.set_provenance(self.program());
        Ok(patched)
    }

    /// [`ClxSession::repair`] immediately followed by
    /// [`ClxSession::reverify`] of `report`: the one-call interactive
    /// repair loop. A rejected repair (unknown pattern or out-of-range
    /// choice) leaves the program unchanged, so the re-verification then
    /// degenerates to an identity patch and the returned report equals
    /// `report` row for row.
    pub fn repair_and_reverify(
        &mut self,
        pattern: &Pattern,
        choice: usize,
        report: &TransformReport,
    ) -> Result<TransformReport, ClxError> {
        self.repair(pattern, choice);
        self.reverify(report)
    }

    /// **Transform** phase: apply the current program to the whole column.
    ///
    /// A program is a pure function of the row value, so each *distinct*
    /// value is evaluated once; the report is columnar (it shares the
    /// column's row map), making the whole step O(distinct) in time and
    /// memory.
    ///
    /// A branch whose expression fails to evaluate on some value (possible
    /// only for programs repaired by hand into an ill-formed state) is
    /// skipped for that value, exactly as the compiled engine's plan
    /// interpreter skips it — `apply`, [`ClxSession::apply_parallel`] and
    /// [`ClxSession::compile`] agree row for row; the worst case is a
    /// `Flagged` outcome, never an aborted column.
    pub fn apply(&self) -> Result<TransformReport, ClxError> {
        let _apply = Span::start(self.telemetry.as_ref(), "core.phase.apply_ns");
        let target = &self.phase.target;
        let program = self.program();
        let mut decided = Vec::with_capacity(self.data.distinct_count());
        for value in self.data.distinct_values() {
            let text = value.text();
            if target.matches(text) {
                decided.push(RowOutcome::Conforming {
                    value: text.to_string(),
                });
                continue;
            }
            match transform_lenient(&program, text) {
                TransformOutcome::Transformed(out) => decided.push(RowOutcome::Transformed {
                    from: text.to_string(),
                    to: out,
                }),
                TransformOutcome::Flagged(v) => decided.push(RowOutcome::Flagged { value: v }),
            }
        }
        let mut report = TransformReport::columnar(target.clone(), decided, &self.data);
        report.set_provenance(program);
        Ok(report)
    }

    /// Compile the current program for high-throughput batch execution.
    ///
    /// The returned [`CompiledProgram`] is immutable and `Send + Sync`: it
    /// can be cached (see [`clx_engine::ProgramCache`]), shared across
    /// threads, executed over other columns in parallel chunks
    /// ([`CompiledProgram::execute`]), or streamed over columns larger than
    /// memory ([`CompiledProgram::stream`]). Its semantics on any column are
    /// exactly those of [`ClxSession::apply`].
    pub fn compile(&self) -> Result<CompiledProgram, ClxError> {
        let _compile = Span::start(self.telemetry.as_ref(), "core.phase.compile_ns");
        // Under a session sink the fused-automaton construction also
        // reports `engine.fused.build_ns` / `engine.fused.fallbacks`.
        CompiledProgram::compile_observed(
            &self.program(),
            &self.phase.target,
            self.telemetry.as_ref(),
        )
        .map_err(|e| ClxError::Compile(e.to_string()))
    }

    /// Statically analyze the current program against the labelled target
    /// (see [`clx_analyze`]): six language-level passes proving per-branch
    /// properties — reachability, extract safety, output conformance —
    /// before any row runs. `Error`-severity findings are proofs of a
    /// defect; `Warning` findings are properties the analyzer could not
    /// prove. Purely observational: the session and program are unchanged.
    ///
    /// Under a session sink the pass timings and per-code finding counts
    /// are reported as `engine.analyze.*` metrics.
    pub fn analyze(&self) -> clx_analyze::ProgramDiagnostics {
        let _analyze = Span::start(self.telemetry.as_ref(), "core.phase.analyze_ns");
        clx_analyze::analyze_observed(&self.program(), &self.phase.target, self.telemetry.as_ref())
    }

    /// [`ClxSession::compile`] with the static analyzer in the loop:
    /// compilation fails with [`ClxError::Analysis`] when [`analyze`]
    /// (run as part of compilation) proves an `Error`-severity defect.
    /// The default [`compile`] only *records* diagnostics via telemetry;
    /// strict mode is the opt-in gate for callers that want provably
    /// defect-free programs before execution.
    ///
    /// [`analyze`]: ClxSession::analyze
    /// [`compile`]: ClxSession::compile
    pub fn compile_strict(&self) -> Result<CompiledProgram, ClxError> {
        let _compile = Span::start(self.telemetry.as_ref(), "core.phase.compile_ns");
        CompiledProgram::compile_strict(
            &self.program(),
            &self.phase.target,
            self.telemetry.as_ref(),
        )
        .map_err(|e| match e {
            clx_engine::CompileError::RejectedByAnalysis { .. } => {
                ClxError::Analysis(e.to_string())
            }
            other => ClxError::Compile(other.to_string()),
        })
    }

    /// [`ClxSession::apply`] through the compiled engine: same report,
    /// produced by deciding each distinct value once via its cached leaf
    /// signature ([`CompiledProgram::execute_column`], dispatching on the
    /// dense integer leaf-ids the column's interner assigned) — compile +
    /// execute of a session column never re-tokenizes a row and never
    /// hashes a pattern, and the report shares the column's row map. The
    /// column itself was built by the sharded [`ColumnBuilder`] (see
    /// [`ClxSession::with_options`]), so on a multi-core host the whole
    /// path from raw rows to report runs parallel. Sessions over large
    /// columns should prefer this.
    pub fn apply_parallel(&self) -> Result<TransformReport, ClxError> {
        let compiled = self.compile()?;
        let _apply = Span::start(self.telemetry.as_ref(), "core.phase.apply_ns");
        let mut report = TransformReport::from_batch(compiled.execute_column(&self.data));
        report.set_provenance(self.program());
        Ok(report)
    }

    /// Open a columnar ingest stream executing this session's program:
    /// chunks pushed through the returned [`ColumnStream`] are interned
    /// into a persistent, cross-chunk id space, so streaming inherits the
    /// O(distinct) execute path — a distinct value is tokenized and decided
    /// once per stream, no matter how many chunks repeat it — and each
    /// pushed chunk comes back as a columnar
    /// [`ChunkReport`](clx_engine::ChunkReport).
    ///
    /// The stream owns its compiled program, so it is independent of the
    /// session's lifetime and can ingest columns the session never saw
    /// (the semantics on any rows are exactly [`ClxSession::apply`]'s).
    ///
    /// The returned stream retains O(distinct) state (interner + decision
    /// cache) and is meant for *trusted* input; for untrusted,
    /// possibly-adversarial streams use
    /// [`ClxSession::stream_columns_with_budget`].
    pub fn stream_columns(&self) -> Result<ColumnStream, ClxError> {
        let mut stream = ColumnStream::new(Arc::new(self.compile()?));
        if let Some(sink) = &self.telemetry {
            stream = stream.with_telemetry(Arc::clone(sink));
        }
        Ok(stream)
    }

    /// [`ClxSession::stream_columns`] with a memory budget, for untrusted
    /// high-cardinality streams whose distinct values would otherwise grow
    /// the stream's interned state without bound.
    ///
    /// Under the default [`BudgetPolicy::Evict`](clx_column::BudgetPolicy)
    /// the stream evicts its coldest interned values at each chunk
    /// boundary (re-interning them if they reappear); under
    /// [`BudgetPolicy::Fallback`](clx_column::BudgetPolicy) it degrades to
    /// the per-row path once over budget. Either way every pushed row's
    /// outcome is row-for-row identical to the unbounded stream — only the
    /// retained memory changes, observable via
    /// [`ColumnStream::memory_used`], [`ColumnStream::evictions`] and the
    /// final [`StreamSummary`](clx_engine::StreamSummary)'s
    /// memory/eviction fields.
    ///
    /// ```
    /// use clx_column::StreamBudget;
    /// # use clx_core::ClxSession;
    /// # let session = ClxSession::new(vec!["734-422-8073".to_string()])
    /// #     .label_by_example("734-422-8073").unwrap();
    /// let mut stream = session
    ///     .stream_columns_with_budget(StreamBudget::max_distinct(10_000))
    ///     .unwrap();
    /// stream.push_rows(&["734.236.3466"]);
    /// assert!(stream.memory_used() > 0);
    /// let summary = stream.finish();
    /// assert_eq!(summary.evictions, 0); // budget never bound
    /// ```
    pub fn stream_columns_with_budget(
        &self,
        budget: StreamBudget,
    ) -> Result<ColumnStream, ClxError> {
        let mut stream = ColumnStream::with_budget(Arc::new(self.compile()?), budget);
        if let Some(sink) = &self.telemetry {
            stream = stream.with_telemetry(Arc::clone(sink));
        }
        Ok(stream)
    }

    /// The post-transformation pattern summary (Figure 2 of the paper): the
    /// distinct patterns of the output column with their row counts, which
    /// is what the user verifies after the transformation.
    ///
    /// The output column is assembled without re-tokenizing: conforming and
    /// flagged outputs *are* their input values (cached token streams), and
    /// transformed outputs match the labelled target, so their token
    /// streams are derived from the target's split
    /// ([`clx_pattern::SplitTokenizer`]).
    pub fn result_patterns(&self) -> Result<Vec<(Pattern, usize)>, ClxError> {
        let report = self.apply()?;
        // The positional indexing below relies on `apply` returning a
        // columnar report aligned with this session's column: stored
        // outcome `k` is the decision for `self.data.distinct(k)`.
        debug_assert_eq!(
            report.distinct_outcomes().len(),
            self.data.distinct_count(),
            "apply() must return a report columnar over the session column"
        );
        let tokenizer = SplitTokenizer::new(&self.phase.target);

        // One output tokenization per *distinct input*; distinct inputs may
        // collide on their output, so dedup by output text as we go.
        let mut dedup: HashMap<String, u32> = HashMap::new();
        let mut out_values: Vec<TokenizedString> = Vec::new();
        let mut input_to_output: Vec<u32> = Vec::with_capacity(report.distinct_outcomes().len());
        for (input_index, outcome) in report.distinct_outcomes().iter().enumerate() {
            let text = outcome.value();
            let output_index = match dedup.get(text) {
                Some(&k) => k,
                None => {
                    let tokenized = match outcome {
                        // Unchanged rows keep their cached tokenization.
                        RowOutcome::Conforming { .. } | RowOutcome::Flagged { .. } => {
                            self.data.distinct(input_index).tokenized().clone()
                        }
                        // Transformed rows match the target; derive. (The
                        // fallback covers an output a repaired program sent
                        // outside the target — rare, but must stay correct.)
                        RowOutcome::Transformed { to, .. } => tokenizer
                            .tokenize(to)
                            .unwrap_or_else(|| tokenize_detailed(to)),
                    };
                    let k = out_values.len() as u32;
                    out_values.push(tokenized);
                    dedup.insert(text.to_string(), k);
                    k
                }
            };
            input_to_output.push(output_index);
        }

        // Compose the row map: row -> input distinct -> output distinct.
        let row_map: Vec<u32> = self
            .data
            .row_map()
            .iter()
            .map(|&d| input_to_output[d as usize])
            .collect();
        let output = Column::from_distinct(out_values, row_map);
        let hierarchy =
            PatternProfiler::with_options(self.options.profiler.clone()).profile_column(&output);
        Ok(hierarchy.pattern_summary())
    }

    /// Cross-check that the explained `Replace` operations behave exactly
    /// like the UniFi program on this session's data. Returns the number of
    /// rows checked. This is the "what you read is what runs" guarantee the
    /// paper's verifiability argument rests on.
    pub fn verify_explanation(&self) -> Result<usize, ClxError> {
        let target = &self.phase.target;
        let program = self.program();
        let explanation = self.explanation()?;
        let mut checked = 0;
        // Both sides are pure functions of the value: checking each distinct
        // value once covers all of its duplicate rows.
        for value in self.data.distinct_values() {
            let text = value.text();
            if target.matches(text) {
                continue;
            }
            // Lenient, like `apply`: what runs is what is checked.
            let via_dsl = transform_lenient(&program, text).value().to_string();
            let via_replace = explanation.apply(text);
            if via_dsl != via_replace {
                return Err(ClxError::Eval(format!(
                    "explanation mismatch on {text:?}: DSL produced {via_dsl:?}, Replace produced {via_replace:?}"
                )));
            }
            checked += value.multiplicity();
        }
        Ok(checked)
    }
}

// ---------------------------------------------------------------------------
// Type-erased sessions for dynamic callers.
// ---------------------------------------------------------------------------

/// A type-erased session for callers that cannot pin the phase at compile
/// time — a REPL loop, a service holding a map of live sessions.
///
/// The phase discipline does not disappear: it is concentrated into the one
/// `match` (or [`AnySession::as_labelled`]) at the dynamic boundary,
/// instead of being re-checked inside every method.
///
/// ```
/// use clx_core::{AnySession, ClxSession};
///
/// let mut session = AnySession::from(ClxSession::new(vec![
///     "(734) 645-8397".to_string(),
///     "734-422-8073".to_string(),
/// ]));
/// assert!(!session.is_labelled());
/// session.label_by_example("734-422-8073").unwrap();
/// let labelled = session.as_labelled().expect("just labelled");
/// assert!(labelled.apply().unwrap().is_perfect());
/// ```
#[derive(Debug, Clone)]
pub enum AnySession {
    /// A session in the cluster phase.
    Clustered(ClxSession<Clustered>),
    /// A session in the transform phase.
    Labelled(ClxSession<Labelled>),
}

impl From<ClxSession<Clustered>> for AnySession {
    fn from(session: ClxSession<Clustered>) -> Self {
        AnySession::Clustered(session)
    }
}

impl From<ClxSession<Labelled>> for AnySession {
    fn from(session: ClxSession<Labelled>) -> Self {
        AnySession::Labelled(session)
    }
}

impl AnySession {
    /// Start a clustered session (see [`ClxSession::new`]).
    pub fn new(data: Vec<String>) -> Self {
        AnySession::Clustered(ClxSession::new(data))
    }

    /// The session's column, in any phase.
    pub fn data(&self) -> &Column {
        match self {
            AnySession::Clustered(s) => s.data(),
            AnySession::Labelled(s) => s.data(),
        }
    }

    /// The pattern-cluster hierarchy, in any phase.
    pub fn hierarchy(&self) -> &PatternHierarchy {
        match self {
            AnySession::Clustered(s) => s.hierarchy(),
            AnySession::Labelled(s) => s.hierarchy(),
        }
    }

    /// The pattern list shown to the user, in any phase.
    pub fn patterns(&self) -> Vec<(Pattern, usize)> {
        match self {
            AnySession::Clustered(s) => s.patterns(),
            AnySession::Labelled(s) => s.patterns(),
        }
    }

    /// `true` when the session is in the transform phase.
    pub fn is_labelled(&self) -> bool {
        matches!(self, AnySession::Labelled(_))
    }

    /// The clustered session, if the label transition has not happened.
    pub fn as_clustered(&self) -> Option<&ClxSession<Clustered>> {
        match self {
            AnySession::Clustered(s) => Some(s),
            AnySession::Labelled(_) => None,
        }
    }

    /// The labelled session — the gateway to every transform-phase method.
    pub fn as_labelled(&self) -> Option<&ClxSession<Labelled>> {
        match self {
            AnySession::Clustered(_) => None,
            AnySession::Labelled(s) => Some(s),
        }
    }

    /// Mutable access to the labelled session (for [`ClxSession::repair`]).
    pub fn as_labelled_mut(&mut self) -> Option<&mut ClxSession<Labelled>> {
        match self {
            AnySession::Clustered(_) => None,
            AnySession::Labelled(s) => Some(s),
        }
    }

    /// A throwaway empty session used to take ownership of `self` during
    /// in-place phase transitions (profiling zero rows is trivial).
    fn placeholder() -> AnySession {
        AnySession::Clustered(ClxSession::from_column(
            Column::default(),
            ClxOptions::default(),
        ))
    }

    /// Label (or re-label) in place: transitions the session to the
    /// transform phase and returns the synthesis result.
    pub fn label(&mut self, target: Pattern) -> Result<&Synthesis, ClxError> {
        if target.is_empty() {
            return Err(ClxError::EmptyTargetPattern);
        }
        let clustered = match std::mem::replace(self, Self::placeholder()) {
            AnySession::Clustered(s) => s,
            AnySession::Labelled(s) => s.unlabel(),
        };
        match clustered.label(target) {
            Ok(labelled) => {
                *self = AnySession::Labelled(labelled);
                match self {
                    AnySession::Labelled(s) => Ok(s.synthesis()),
                    AnySession::Clustered(_) => unreachable!("just set"),
                }
            }
            Err(LabelError { session, error }) => {
                *self = AnySession::Clustered(*session);
                Err(error)
            }
        }
    }

    /// [`AnySession::label`] from one example value in the desired format.
    pub fn label_by_example(&mut self, example: &str) -> Result<&Synthesis, ClxError> {
        self.label(tokenize(example))
    }

    /// Drop the label (if any) in place, returning to the cluster phase.
    pub fn unlabel(&mut self) {
        if let AnySession::Labelled(_) = self {
            if let AnySession::Labelled(s) = std::mem::replace(self, Self::placeholder()) {
                *self = AnySession::Clustered(s.unlabel());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::parse_pattern;

    fn phone_data() -> Vec<String> {
        vec![
            "(734) 645-8397".into(),
            "(734) 763-1147".into(),
            "(734)586-7252".into(),
            "734-422-8073".into(),
            "734-936-2447".into(),
            "734.236.3466".into(),
            "N/A".into(),
        ]
    }

    fn labelled(data: Vec<String>, target: Pattern) -> ClxSession<Labelled> {
        ClxSession::new(data).label(target).expect("valid target")
    }

    #[test]
    fn full_cluster_label_transform_loop() {
        let session = ClxSession::new(phone_data());
        // Cluster: the pattern list is available immediately.
        let patterns = session.patterns();
        assert_eq!(patterns.len(), 5);

        // Label by picking the target pattern from the list; the clustered
        // session is consumed and a labelled one comes back.
        let target = tokenize("734-422-8073");
        let session = session.label(target.clone()).unwrap();
        assert_eq!(session.target(), &target);

        // Transform.
        let report = session.apply().unwrap();
        assert!(report.is_perfect() || report.flagged_count() > 0);
        assert_eq!(report.conforming_count(), 2);
        assert_eq!(report.transformed_count(), 4);
        assert_eq!(report.flagged_count(), 1);
        assert_eq!(report.flagged_values(), vec!["N/A"]);
        // Every non-flagged output matches the target.
        for row in report.iter_rows() {
            if !row.is_flagged() {
                assert!(target.matches(row.value()), "{row:?}");
            }
        }
    }

    #[test]
    fn label_by_example() {
        let session = ClxSession::new(phone_data())
            .label_by_example("555-123-4567")
            .unwrap();
        let report = session.apply().unwrap();
        assert_eq!(report.transformed_count(), 4);
    }

    #[test]
    fn analyze_reports_a_clean_synthesized_program() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let report = session.analyze();
        assert!(
            !report.has_errors(),
            "synthesized program has error findings: {report}"
        );
        // Every branch of the synthesized program is reachable and its
        // extracts are in bounds — the analyzer proves what synthesis
        // guaranteed by construction.
        for (index, _) in session.program().branches.iter().enumerate() {
            let facts = report.branch_facts(index);
            assert!(facts.reachable, "branch {index} unreachable");
            assert!(facts.extract_safe, "branch {index} extract-unsafe");
        }
        // And a clean program passes the strict compile gate.
        let compiled = session.compile_strict().expect("strict compile");
        let batch = compiled.execute_column(session.data());
        assert_eq!(
            TransformReport::from_batch(batch).values(),
            session.apply().unwrap().values()
        );
    }

    #[test]
    fn analyze_is_observed_under_a_session_sink() {
        let sink = Arc::new(clx_telemetry::InMemorySink::new());
        let session = ClxSession::with_telemetry(
            phone_data(),
            ClxOptions::default(),
            Arc::clone(&sink) as Arc<dyn MetricSink>,
        )
        .label_by_example("734-422-8073")
        .unwrap();
        session.analyze();
        let snapshot = clx_telemetry::MetricSink::snapshot(sink.as_ref());
        assert!(snapshot.histogram("core.phase.analyze_ns").is_some());
        assert!(snapshot.histogram("engine.analyze.total_ns").is_some());
        assert_eq!(snapshot.counter("engine.analyze.runs"), Some(1));
    }

    #[test]
    fn empty_target_rejected_and_session_returned() {
        let session = ClxSession::new(phone_data());
        let err = session.label(Pattern::empty()).unwrap_err();
        assert_eq!(err.error, ClxError::EmptyTargetPattern);
        // The clustered session comes back intact and can be re-labelled.
        let recovered = err.session;
        assert_eq!(recovered.patterns().len(), 5);
        assert!(recovered.label(tokenize("734-422-8073")).is_ok());
    }

    #[test]
    fn unlabel_and_relabel_reuse_profiling() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let report_dash = session.apply().unwrap();
        let session = session.relabel(tokenize("(734) 645-8397")).unwrap();
        assert_eq!(session.target(), &tokenize("(734) 645-8397"));
        let report_paren = session.apply().unwrap();
        assert_ne!(report_dash.values(), report_paren.values());
        // And back to the cluster phase explicitly.
        let clustered = session.unlabel();
        assert_eq!(clustered.patterns().len(), 5);
    }

    #[test]
    fn report_is_columnar_over_session_column() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let report = session.apply().unwrap();
        assert_eq!(
            report.distinct_outcomes().len(),
            session.data().distinct_count()
        );
        assert_eq!(report.len(), session.data().len());
    }

    #[test]
    fn explanation_lists_one_replace_per_branch() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let explanation = session.explanation().unwrap();
        let program = session.program();
        assert_eq!(explanation.operations.len(), program.len());
        let listing = session.suggested_operations("column1").unwrap();
        assert!(listing.contains("Replace '/^"));
        assert!(listing.contains("column1"));
    }

    #[test]
    fn explained_operations_match_dsl_on_all_rows() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let checked = session.verify_explanation().unwrap();
        assert_eq!(checked, 5); // 7 rows minus 2 already conforming
    }

    #[test]
    fn result_patterns_collapse_after_transformation() {
        let session = ClxSession::new(phone_data());
        let before = session.patterns().len();
        let session = session.label(tokenize("734-422-8073")).unwrap();
        let after = session.result_patterns().unwrap();
        assert!(after.len() < before);
        // The dominant output pattern is the target.
        assert_eq!(after[0].0, tokenize("734-422-8073"));
        assert_eq!(after[0].1, 6);
    }

    #[test]
    fn result_patterns_match_a_freshly_profiled_output_column() {
        // The derived-tokenization path must agree with profiling the raw
        // output strings (which re-tokenizes everything).
        for target in [tokenize("734-422-8073"), tokenize("(734) 645-8397")] {
            let session = labelled(phone_data(), target);
            let derived = session.result_patterns().unwrap();
            let report = session.apply().unwrap();
            let fresh = PatternProfiler::with_options(session.options().profiler.clone())
                .profile_column(&Column::from_rows(report.values()));
            assert_eq!(derived, fresh.pattern_summary());
        }
    }

    #[test]
    fn repair_changes_the_applied_program() {
        let data = vec![
            "12/11/2017".to_string(),
            "03/04/2018".to_string(),
            "11-12-2017".to_string(),
        ];
        let mut session = labelled(data, tokenize("11-12-2017"));
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let alternatives = session.alternatives(&source).unwrap().to_vec();
        assert!(alternatives.len() >= 2);
        let before = session.apply().unwrap().values();
        // Find an alternative that changes the output and select it.
        let mut changed = false;
        for i in 1..alternatives.len() {
            assert!(session.repair(&source, i));
            let after = session.apply().unwrap().values();
            if after != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "at least one alternative changes the output");
    }

    #[test]
    fn repair_of_unknown_pattern_returns_false() {
        let mut session = labelled(phone_data(), tokenize("734-422-8073"));
        assert!(!session.repair(&tokenize("zzz"), 0));
    }

    /// A session whose program was hand-repaired into an ill-formed state:
    /// one branch's plan (`Extract(99)`) errors on every value it matches,
    /// one branch is fine.
    fn ill_formed_session() -> (ClxSession<Labelled>, Pattern) {
        use clx_synth::{RankedPlan, SourceSynthesis};
        use clx_unifi::{Expr, StringExpr};

        let data = vec![
            "12/11/2017".to_string(),
            "12.11.2017".to_string(),
            "11-12-2017".to_string(),
            "N/A".to_string(),
        ];
        let target = tokenize("11-12-2017");
        let bad_source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let good_source = parse_pattern("<D>2'.'<D>2'.'<D>4").unwrap();
        let good_expr = Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::const_str("-"),
            StringExpr::extract(3),
            StringExpr::const_str("-"),
            StringExpr::extract(5),
        ]);
        let plan = |expr: Expr| {
            vec![RankedPlan {
                expr,
                description_length: 0.0,
            }]
        };
        let synthesis = Synthesis {
            target: target.clone(),
            sources: vec![
                SourceSynthesis {
                    pattern: bad_source,
                    plans: plan(Expr::concat(vec![StringExpr::extract(99)])),
                    chosen: 0,
                    rows: 1,
                },
                SourceSynthesis {
                    pattern: good_source,
                    plans: plan(good_expr),
                    chosen: 0,
                    rows: 1,
                },
            ],
            already_correct: Vec::new(),
            rejected: Vec::new(),
            pruned: Vec::new(),
        };
        let clustered = ClxSession::new(data);
        let session = ClxSession {
            data: clustered.data,
            options: clustered.options,
            hierarchy: clustered.hierarchy,
            phase: Labelled {
                target: target.clone(),
                synthesis,
            },
            telemetry: None,
        };
        (session, target)
    }

    /// Regression: `apply` used to abort the whole column with
    /// `ClxError::Eval` when any one distinct value hit an evaluation
    /// error, while the compiled engine skipped the erroring branch for
    /// that value and flagged the row. The two paths must agree: flag,
    /// don't abort.
    #[test]
    fn apply_flags_instead_of_aborting_on_an_erroring_branch() {
        use clx_unifi::{Expr, StringExpr};

        let (session, target) = ill_formed_session();
        let report = session.apply().expect("lenient apply never aborts");
        assert_eq!(
            report.values(),
            vec!["12/11/2017", "12-11-2017", "11-12-2017", "N/A"]
        );
        assert_eq!(report.flagged_values(), vec!["12/11/2017", "N/A"]);

        // Differential check: skipping an always-erroring branch per value
        // is semantically removing it. The equivalent well-formed program
        // (bad branch dropped) compiles, and its engine run matches the
        // lenient apply row for row.
        let equivalent = Program::new(vec![clx_unifi::Branch::new(
            parse_pattern("<D>2'.'<D>2'.'<D>4").unwrap(),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )]);
        let compiled = CompiledProgram::compile(&equivalent, &target).unwrap();
        let engine_report = TransformReport::from_batch(compiled.execute_column(session.data()));
        assert_eq!(report, engine_report);
    }

    #[test]
    fn reverify_equals_a_fresh_apply_for_every_repair_alternative() {
        let data = vec![
            "12/11/2017".to_string(),
            "03/04/2018".to_string(),
            "11-12-2017".to_string(),
        ];
        let mut session = labelled(data, tokenize("11-12-2017"));
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let baseline = session.apply().unwrap();
        assert!(baseline.provenance().is_some(), "apply records provenance");
        let alternatives = session.alternatives(&source).unwrap().len();
        assert!(alternatives >= 2);
        // `baseline` carries the original program, so each iteration diffs
        // original → current alternative — including back to choice 0.
        for choice in (0..alternatives).rev() {
            assert!(session.repair(&source, choice));
            let patched = session.reverify(&baseline).unwrap();
            let fresh = session.apply().unwrap();
            assert_eq!(patched, fresh, "choice {choice}");
            // The patched report can itself seed the next reverify.
            assert!(patched.provenance().is_some());
        }
    }

    #[test]
    fn reverify_redecides_only_affected_distincts() {
        let sink = clx_telemetry::InMemorySink::shared();
        let data = vec![
            "12/11/2017".to_string(),
            "03/04/2018".to_string(),
            "11-12-2017".to_string(),
        ];
        let mut session = ClxSession::with_telemetry(
            data,
            ClxOptions::default(),
            Arc::clone(&sink) as Arc<dyn MetricSink>,
        )
        .label(tokenize("11-12-2017"))
        .unwrap();
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let baseline = session.apply().unwrap();
        assert!(session.repair(&source, 1));
        let patched = session.reverify(&baseline).unwrap();
        assert_eq!(patched, session.apply().unwrap());

        let snap = sink.snapshot();
        assert!(snap.histogram("core.phase.reverify_ns").is_some());
        let redecided = snap
            .counter("engine.delta.distincts_redecided")
            .expect("delta published");
        // Only the two slash-date distincts sit behind the repaired
        // branch; the conforming distinct is proven unaffected.
        assert_eq!(redecided, 2);
        assert!(snap.counter("engine.delta.branches_changed").is_some());
    }

    #[test]
    fn reverify_without_provenance_is_rejected() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let hand_built = TransformReport::from_row_outcomes(tokenize("734-422-8073"), Vec::new());
        assert_eq!(
            session.reverify(&hand_built).unwrap_err(),
            ClxError::MissingProvenance
        );
    }

    #[test]
    fn repair_and_reverify_is_the_one_call_loop() {
        let data = vec![
            "12/11/2017".to_string(),
            "03/04/2018".to_string(),
            "11-12-2017".to_string(),
        ];
        let mut session = labelled(data, tokenize("11-12-2017"));
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let baseline = session.apply().unwrap();
        let patched = session.repair_and_reverify(&source, 1, &baseline).unwrap();
        assert_eq!(patched, session.apply().unwrap());
        // A rejected repair degenerates to an identity patch.
        let unchanged = session
            .repair_and_reverify(&tokenize("zzz"), 0, &patched)
            .unwrap();
        assert_eq!(unchanged, patched);
    }

    #[test]
    fn medical_codes_example_5() {
        let data = vec![
            "CPT-00350".to_string(),
            "[CPT-00340".to_string(),
            "[CPT-11536]".to_string(),
            "CPT115".to_string(),
        ];
        let session = labelled(data, parse_pattern("'['<U>+'-'<D>+']'").unwrap());
        let report = session.apply().unwrap();
        assert_eq!(
            report.values(),
            vec!["[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]"]
        );
        assert!(report.is_perfect());
    }

    #[test]
    fn apply_parallel_equals_apply() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let sequential = session.apply().unwrap();
        let parallel = session.apply_parallel().unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.flagged_values(), vec!["N/A"]);
    }

    #[test]
    fn stream_columns_matches_apply_chunk_by_chunk() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let report = session.apply().unwrap();

        let mut stream = session.stream_columns().unwrap();
        let data = session.data().to_vec();
        let mut streamed: Vec<String> = Vec::new();
        for chunk in data.chunks(3) {
            let chunk_report = stream.push_rows(chunk);
            assert!(chunk_report.is_columnar());
            streamed.extend(chunk_report.iter_values().map(str::to_string));
        }
        assert_eq!(streamed, report.values());
        let summary = stream.finish();
        assert_eq!(summary.rows(), report.len());
        assert_eq!(summary.stats.flagged, report.flagged_count());
        assert_eq!(summary.stats.transformed, report.transformed_count());
    }

    #[test]
    fn budgeted_stream_matches_apply_and_bounds_state() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let report = session.apply().unwrap();

        let mut stream = session
            .stream_columns_with_budget(StreamBudget::max_distinct(1))
            .unwrap();
        let data = session.data().to_vec();
        let mut streamed: Vec<String> = Vec::new();
        for chunk in data.chunks(2) {
            streamed.extend(stream.push_rows(chunk).iter_values().map(str::to_string));
        }
        // Row-for-row identical to the in-memory apply, at bounded state.
        assert_eq!(streamed, report.values());
        assert!(stream.evictions() > 0);
        assert!(stream.interner().live_distinct_count() <= 1 + 2);
        let summary = stream.finish();
        assert!(summary.evictions > 0);
        assert!(summary.peak_memory_bytes > 0);
        assert_eq!(summary.stats.flagged, report.flagged_count());
    }

    #[test]
    fn iter_values_borrows_the_report() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let report = session.apply().unwrap();
        let borrowed: Vec<&str> = report.iter_values().collect();
        assert_eq!(report.iter_values().len(), report.len());
        assert_eq!(
            borrowed,
            report
                .values()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn compiled_program_reuses_across_columns() {
        let session = labelled(phone_data(), tokenize("734-422-8073"));
        let compiled = session.compile().unwrap();
        assert_eq!(compiled.target(), &tokenize("734-422-8073"));
        // The compiled program serves a column the session never saw.
        let other = vec!["555.867.5309".to_string(), "not a phone".to_string()];
        let report = TransformReport::from_batch(compiled.execute(&other));
        assert_eq!(report.values(), vec!["555-867-5309", "not a phone"]);
        assert_eq!(report.flagged_count(), 1);
    }

    #[test]
    fn data_accessor_and_hierarchy() {
        let session = ClxSession::new(phone_data());
        assert_eq!(session.data().len(), 7);
        assert_eq!(session.hierarchy().total_rows(), 7);
    }

    #[test]
    fn empty_data_session() {
        let session = ClxSession::new(Vec::new());
        assert!(session.patterns().is_empty());
        let session = session.label(tokenize("123")).unwrap();
        let report = session.apply().unwrap();
        assert!(report.is_empty());
        assert!(report.is_perfect());
    }

    #[test]
    fn options_are_respected() {
        let mut options = ClxOptions::default();
        options.profiler.discover_constants = false;
        options.synthesis.top_k = 1;
        let session = ClxSession::with_options(phone_data(), options)
            .label(tokenize("734-422-8073"))
            .unwrap();
        for source in &session.synthesis().sources {
            assert_eq!(source.plans.len(), 1);
        }
    }

    #[test]
    fn any_session_walks_the_phases_dynamically() {
        let mut session = AnySession::new(phone_data());
        assert!(!session.is_labelled());
        assert!(session.as_clustered().is_some());
        assert!(session.as_labelled().is_none());
        assert_eq!(session.patterns().len(), 5);
        assert_eq!(session.data().len(), 7);

        // Labelling an empty target fails and leaves the phase unchanged.
        assert_eq!(
            session.label(Pattern::empty()).unwrap_err(),
            ClxError::EmptyTargetPattern
        );
        assert!(!session.is_labelled());

        session.label(tokenize("734-422-8073")).unwrap();
        assert!(session.is_labelled());
        let report = session.as_labelled().unwrap().apply().unwrap();
        assert_eq!(report.flagged_count(), 1);

        // Re-labelling in place re-synthesizes against the new target.
        session.label_by_example("(734) 645-8397").unwrap();
        assert_eq!(
            session.as_labelled().unwrap().target(),
            &tokenize("(734) 645-8397")
        );

        // Repair goes through the mutable accessor.
        assert!(!session
            .as_labelled_mut()
            .unwrap()
            .repair(&tokenize("zzz"), 0));

        session.unlabel();
        assert!(!session.is_labelled());
        assert_eq!(session.hierarchy().total_rows(), 7);
    }

    #[test]
    fn observed_session_records_every_phase() {
        let sink = clx_telemetry::InMemorySink::shared();
        let session = ClxSession::with_telemetry(
            phone_data(),
            ClxOptions::default(),
            Arc::clone(&sink) as Arc<dyn MetricSink>,
        );
        assert!(session.telemetry().is_some());
        let session = session.label(tokenize("734-422-8073")).unwrap();
        session.apply().unwrap();
        session.apply_parallel().unwrap();
        let mut stream = session.stream_columns().unwrap();
        stream.push_rows(&["(111) 222-3333", "(111) 222-3333"]);
        stream.finish();

        let snap = sink.snapshot();
        for phase in [
            "core.phase.cluster_ns",
            "core.phase.label_ns",
            "core.phase.synthesize_ns",
            "core.phase.compile_ns",
            "core.phase.apply_ns",
        ] {
            let h = snap
                .histogram(phase)
                .unwrap_or_else(|| panic!("missing phase histogram {phase}; snapshot: {snap:?}"));
            assert!(h.count >= 1, "{phase} recorded no samples");
        }
        // apply + apply_parallel both time the apply phase.
        assert_eq!(snap.histogram("core.phase.apply_ns").unwrap().count, 2);
        // The column build and the stream reported through the same sink.
        assert!(snap.histogram("column.builder.build_ns").is_some());
        assert_eq!(snap.counter("engine.stream.rows"), Some(2));
    }

    #[test]
    fn telemetry_survives_phase_transitions() {
        let sink = clx_telemetry::InMemorySink::shared();
        let session = ClxSession::new(phone_data())
            .attach_telemetry(Arc::clone(&sink) as Arc<dyn MetricSink>);
        // No cluster span: the sink was attached after profiling.
        assert!(sink.snapshot().histogram("core.phase.cluster_ns").is_none());
        let session = session.label(tokenize("734-422-8073")).unwrap();
        let session = session.relabel(tokenize("(734) 645-8397")).unwrap();
        let session = session.unlabel();
        assert!(session.telemetry().is_some());
        // label ran twice (label + relabel), each with a nested synthesis.
        let snap = sink.snapshot();
        assert_eq!(snap.histogram("core.phase.label_ns").unwrap().count, 2);
        assert_eq!(snap.histogram("core.phase.synthesize_ns").unwrap().count, 2);
    }
}
