//! The CLX interaction session (Figure 5 of the paper).

use std::fmt;

use clx_cluster::{PatternHierarchy, PatternProfiler, ProfilerOptions};
use clx_column::Column;
use clx_engine::CompiledProgram;
use clx_pattern::{tokenize, Pattern};
use clx_synth::{synthesize_column, RankedPlan, Synthesis, SynthesisOptions};
use clx_unifi::{explain_program, transform, Explanation, Program, TransformOutcome};

use crate::report::{RowOutcome, TransformReport};

/// Errors produced by the session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClxError {
    /// A transform-phase method was called before a target was labelled.
    NotLabelled,
    /// The label supplied by example does not correspond to any pattern in
    /// the profiled data and could not be tokenized into a usable pattern.
    EmptyTargetPattern,
    /// Explaining the program failed (see `clx-unifi` for details).
    Explain(String),
    /// Evaluating the program failed; this indicates a synthesizer bug, not
    /// bad input data.
    Eval(String),
    /// Compiling the program for batch execution failed; this indicates an
    /// ill-formed program (see `clx-engine`), not bad input data.
    Compile(String),
}

impl fmt::Display for ClxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClxError::NotLabelled => {
                write!(f, "no target pattern labelled yet (call label() first)")
            }
            ClxError::EmptyTargetPattern => write!(f, "the target pattern is empty"),
            ClxError::Explain(e) => write!(f, "failed to explain program: {e}"),
            ClxError::Eval(e) => write!(f, "failed to evaluate program: {e}"),
            ClxError::Compile(e) => write!(f, "failed to compile program: {e}"),
        }
    }
}

impl std::error::Error for ClxError {}

/// Options for a CLX session: profiling options for the clustering phase and
/// synthesis options for the transform phase.
#[derive(Debug, Clone, Default)]
pub struct ClxOptions {
    /// Pattern-profiling (clustering) options.
    pub profiler: ProfilerOptions,
    /// Program-synthesis options.
    pub synthesis: SynthesisOptions,
}

/// A CLX session over one column of data.
///
/// The session walks the user through the Cluster–Label–Transform loop and
/// owns all intermediate state: the shared [`Column`] (interned rows with
/// per-distinct-value cached token streams, which profiling, synthesis and
/// execution all read), the pattern hierarchy, the labelled target, the
/// synthesized program and its repair alternatives.
#[derive(Debug, Clone)]
pub struct ClxSession {
    data: Column,
    options: ClxOptions,
    hierarchy: PatternHierarchy,
    target: Option<Pattern>,
    synthesis: Option<Synthesis>,
}

impl ClxSession {
    /// Start a session: profiles (clusters) the data immediately.
    pub fn new(data: Vec<String>) -> Self {
        Self::with_options(data, ClxOptions::default())
    }

    /// Start a session with custom options.
    pub fn with_options(data: Vec<String>, options: ClxOptions) -> Self {
        Self::from_column(Column::from_rows(data), options)
    }

    /// Start a session over an already-built [`Column`] (reusing its
    /// interned values and cached token streams).
    pub fn from_column(data: Column, options: ClxOptions) -> Self {
        let hierarchy =
            PatternProfiler::with_options(options.profiler.clone()).profile_column(&data);
        ClxSession {
            data,
            options,
            hierarchy,
            target: None,
            synthesis: None,
        }
    }

    /// The session's column: the raw rows plus the interned distinct
    /// values and their cached token streams.
    pub fn data(&self) -> &Column {
        &self.data
    }

    /// The pattern-cluster hierarchy produced by the clustering phase.
    pub fn hierarchy(&self) -> &PatternHierarchy {
        &self.hierarchy
    }

    /// The pattern list shown to the user for labelling: distinct leaf
    /// patterns with cluster sizes, largest first (Figure 3 of the paper).
    pub fn patterns(&self) -> Vec<(Pattern, usize)> {
        self.hierarchy.pattern_summary()
    }

    /// The labelled target pattern, if any.
    pub fn target(&self) -> Option<&Pattern> {
        self.target.as_ref()
    }

    /// **Label** phase: record the desired target pattern and synthesize the
    /// transformation program. Returns the synthesis result, which includes
    /// the ranked alternatives used by [`ClxSession::repair`].
    pub fn label(&mut self, target: Pattern) -> Result<&Synthesis, ClxError> {
        if target.is_empty() {
            return Err(ClxError::EmptyTargetPattern);
        }
        let synthesis = synthesize_column(
            &self.hierarchy,
            &self.data,
            &target,
            &self.options.synthesis,
        );
        self.target = Some(target);
        self.synthesis = Some(synthesis);
        Ok(self.synthesis.as_ref().expect("just set"))
    }

    /// Label the target by giving one example value in the desired format
    /// (the "alternatively specify the target data form manually" path of
    /// §3.2). The example is tokenized into its leaf pattern.
    pub fn label_by_example(&mut self, example: &str) -> Result<&Synthesis, ClxError> {
        let pattern = tokenize(example);
        self.label(pattern)
    }

    /// The synthesis result of the transform phase.
    pub fn synthesis(&self) -> Result<&Synthesis, ClxError> {
        self.synthesis.as_ref().ok_or(ClxError::NotLabelled)
    }

    /// The currently selected UniFi program.
    pub fn program(&self) -> Result<Program, ClxError> {
        Ok(self.synthesis()?.program())
    }

    /// The program explained as regexp `Replace` operations (Figure 4).
    pub fn explanation(&self) -> Result<Explanation, ClxError> {
        let program = self.program()?;
        explain_program(&program).map_err(|e| ClxError::Explain(e.to_string()))
    }

    /// The numbered operation list shown to the user, e.g.
    /// `1 Replace '/^.../' in column1 with '($1) $2-$3'`.
    pub fn suggested_operations(&self, column: &str) -> Result<String, ClxError> {
        Ok(self.explanation()?.render(column))
    }

    /// Repair alternatives for one source pattern (§6.4).
    pub fn alternatives(&self, pattern: &Pattern) -> Result<&[RankedPlan], ClxError> {
        self.synthesis()?
            .alternatives(pattern)
            .ok_or(ClxError::NotLabelled)
    }

    /// Repair: replace the selected plan of `pattern` with the `choice`-th
    /// ranked alternative. Returns `false` when the pattern or index is
    /// unknown.
    pub fn repair(&mut self, pattern: &Pattern, choice: usize) -> Result<bool, ClxError> {
        match self.synthesis.as_mut() {
            Some(s) => Ok(s.repair(pattern, choice)),
            None => Err(ClxError::NotLabelled),
        }
    }

    /// **Transform** phase: apply the current program to the whole column.
    ///
    /// A program is a pure function of the row value, so each *distinct*
    /// value is evaluated once and the outcome is fanned out to its
    /// duplicate rows through the column's multiplicity mapping.
    pub fn apply(&self) -> Result<TransformReport, ClxError> {
        let target = self.target.as_ref().ok_or(ClxError::NotLabelled)?;
        let program = self.program()?;
        let mut decided = Vec::with_capacity(self.data.distinct_count());
        for value in self.data.distinct_values() {
            let text = value.text();
            if target.matches(text) {
                decided.push(RowOutcome::AlreadyConforming {
                    value: text.to_string(),
                });
                continue;
            }
            match transform(&program, text).map_err(|e| ClxError::Eval(e.to_string()))? {
                TransformOutcome::Transformed(out) => decided.push(RowOutcome::Transformed {
                    from: text.to_string(),
                    to: out,
                }),
                TransformOutcome::Flagged(v) => decided.push(RowOutcome::Flagged { value: v }),
            }
        }
        let rows = (0..self.data.len())
            .map(|row| decided[self.data.distinct_index_of(row)].clone())
            .collect();
        Ok(TransformReport {
            target: target.clone(),
            rows,
        })
    }

    /// Compile the current program for high-throughput batch execution.
    ///
    /// The returned [`CompiledProgram`] is immutable and `Send + Sync`: it
    /// can be cached (see [`clx_engine::ProgramCache`]), shared across
    /// threads, executed over other columns in parallel chunks
    /// ([`CompiledProgram::execute`]), or streamed over columns larger than
    /// memory ([`CompiledProgram::stream`]). Its semantics on any column are
    /// exactly those of [`ClxSession::apply`].
    pub fn compile(&self) -> Result<CompiledProgram, ClxError> {
        let target = self.target.as_ref().ok_or(ClxError::NotLabelled)?;
        let program = self.program()?;
        CompiledProgram::compile(&program, target).map_err(|e| ClxError::Compile(e.to_string()))
    }

    /// [`ClxSession::apply`] through the compiled engine: same report,
    /// produced by deciding each distinct value once via its cached leaf
    /// signature ([`CompiledProgram::execute_column`]) — compile + execute
    /// of a session column never re-tokenizes a row. Sessions over large
    /// columns should prefer this.
    pub fn apply_parallel(&self) -> Result<TransformReport, ClxError> {
        let compiled = self.compile()?;
        Ok(TransformReport::from_batch(
            compiled.execute_column(&self.data),
        ))
    }

    /// The post-transformation pattern summary (Figure 2 of the paper): the
    /// distinct patterns of the output column with their row counts, which
    /// is what the user verifies after the transformation.
    pub fn result_patterns(&self) -> Result<Vec<(Pattern, usize)>, ClxError> {
        let report = self.apply()?;
        let output = Column::from_rows(report.values());
        let hierarchy =
            PatternProfiler::with_options(self.options.profiler.clone()).profile_column(&output);
        Ok(hierarchy.pattern_summary())
    }

    /// Cross-check that the explained `Replace` operations behave exactly
    /// like the UniFi program on this session's data. Returns the number of
    /// rows checked. This is the "what you read is what runs" guarantee the
    /// paper's verifiability argument rests on.
    pub fn verify_explanation(&self) -> Result<usize, ClxError> {
        let target = self.target.as_ref().ok_or(ClxError::NotLabelled)?;
        let program = self.program()?;
        let explanation = self.explanation()?;
        let mut checked = 0;
        // Both sides are pure functions of the value: checking each distinct
        // value once covers all of its duplicate rows.
        for value in self.data.distinct_values() {
            let text = value.text();
            if target.matches(text) {
                continue;
            }
            let via_dsl = transform(&program, text)
                .map_err(|e| ClxError::Eval(e.to_string()))?
                .value()
                .to_string();
            let via_replace = explanation.apply(text);
            if via_dsl != via_replace {
                return Err(ClxError::Eval(format!(
                    "explanation mismatch on {text:?}: DSL produced {via_dsl:?}, Replace produced {via_replace:?}"
                )));
            }
            checked += value.multiplicity();
        }
        Ok(checked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::parse_pattern;

    fn phone_data() -> Vec<String> {
        vec![
            "(734) 645-8397".into(),
            "(734) 763-1147".into(),
            "(734)586-7252".into(),
            "734-422-8073".into(),
            "734-936-2447".into(),
            "734.236.3466".into(),
            "N/A".into(),
        ]
    }

    #[test]
    fn full_cluster_label_transform_loop() {
        let mut session = ClxSession::new(phone_data());
        // Cluster: the pattern list is available immediately.
        let patterns = session.patterns();
        assert_eq!(patterns.len(), 5);

        // Label by picking the target pattern from the list.
        let target = tokenize("734-422-8073");
        session.label(target.clone()).unwrap();
        assert_eq!(session.target(), Some(&target));

        // Transform.
        let report = session.apply().unwrap();
        assert!(report.is_perfect() || report.flagged_count() > 0);
        assert_eq!(report.conforming_count(), 2);
        assert_eq!(report.transformed_count(), 4);
        assert_eq!(report.flagged_count(), 1);
        assert_eq!(report.flagged_values(), vec!["N/A"]);
        // Every non-flagged output matches the target.
        for row in &report.rows {
            if !row.is_flagged() {
                assert!(target.matches(row.value()), "{row:?}");
            }
        }
    }

    #[test]
    fn label_by_example() {
        let mut session = ClxSession::new(phone_data());
        session.label_by_example("555-123-4567").unwrap();
        let report = session.apply().unwrap();
        assert_eq!(report.transformed_count(), 4);
    }

    #[test]
    fn transform_phase_requires_label() {
        let session = ClxSession::new(phone_data());
        assert_eq!(session.program().unwrap_err(), ClxError::NotLabelled);
        assert_eq!(session.apply().unwrap_err(), ClxError::NotLabelled);
        assert_eq!(session.explanation().unwrap_err(), ClxError::NotLabelled);
        assert!(session.synthesis().is_err());
        assert!(session.verify_explanation().is_err());
    }

    #[test]
    fn empty_target_rejected() {
        let mut session = ClxSession::new(phone_data());
        assert_eq!(
            session.label(Pattern::empty()).unwrap_err(),
            ClxError::EmptyTargetPattern
        );
    }

    #[test]
    fn explanation_lists_one_replace_per_branch() {
        let mut session = ClxSession::new(phone_data());
        session.label(tokenize("734-422-8073")).unwrap();
        let explanation = session.explanation().unwrap();
        let program = session.program().unwrap();
        assert_eq!(explanation.operations.len(), program.len());
        let listing = session.suggested_operations("column1").unwrap();
        assert!(listing.contains("Replace '/^"));
        assert!(listing.contains("column1"));
    }

    #[test]
    fn explained_operations_match_dsl_on_all_rows() {
        let mut session = ClxSession::new(phone_data());
        session.label(tokenize("734-422-8073")).unwrap();
        let checked = session.verify_explanation().unwrap();
        assert_eq!(checked, 5); // 7 rows minus 2 already conforming
    }

    #[test]
    fn result_patterns_collapse_after_transformation() {
        let mut session = ClxSession::new(phone_data());
        session.label(tokenize("734-422-8073")).unwrap();
        let before = session.patterns().len();
        let after = session.result_patterns().unwrap();
        assert!(after.len() < before);
        // The dominant output pattern is the target.
        assert_eq!(after[0].0, tokenize("734-422-8073"));
        assert_eq!(after[0].1, 6);
    }

    #[test]
    fn repair_changes_the_applied_program() {
        let data = vec![
            "12/11/2017".to_string(),
            "03/04/2018".to_string(),
            "11-12-2017".to_string(),
        ];
        let mut session = ClxSession::new(data);
        session.label(tokenize("11-12-2017")).unwrap();
        let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
        let alternatives = session.alternatives(&source).unwrap().to_vec();
        assert!(alternatives.len() >= 2);
        let before = session.apply().unwrap().values();
        // Find an alternative that changes the output and select it.
        let mut changed = false;
        for i in 1..alternatives.len() {
            assert!(session.repair(&source, i).unwrap());
            let after = session.apply().unwrap().values();
            if after != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "at least one alternative changes the output");
    }

    #[test]
    fn repair_of_unknown_pattern_returns_false() {
        let mut session = ClxSession::new(phone_data());
        session.label(tokenize("734-422-8073")).unwrap();
        assert!(!session.repair(&tokenize("zzz"), 0).unwrap());
    }

    #[test]
    fn medical_codes_example_5() {
        let data = vec![
            "CPT-00350".to_string(),
            "[CPT-00340".to_string(),
            "[CPT-11536]".to_string(),
            "CPT115".to_string(),
        ];
        let mut session = ClxSession::new(data);
        session
            .label(parse_pattern("'['<U>+'-'<D>+']'").unwrap())
            .unwrap();
        let report = session.apply().unwrap();
        assert_eq!(
            report.values(),
            vec!["[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]"]
        );
        assert!(report.is_perfect());
    }

    #[test]
    fn compile_requires_label() {
        let session = ClxSession::new(phone_data());
        assert_eq!(session.compile().unwrap_err(), ClxError::NotLabelled);
        assert_eq!(session.apply_parallel().unwrap_err(), ClxError::NotLabelled);
    }

    #[test]
    fn apply_parallel_equals_apply() {
        let mut session = ClxSession::new(phone_data());
        session.label(tokenize("734-422-8073")).unwrap();
        let sequential = session.apply().unwrap();
        let parallel = session.apply_parallel().unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.flagged_values(), vec!["N/A"]);
    }

    #[test]
    fn compiled_program_reuses_across_columns() {
        let mut session = ClxSession::new(phone_data());
        session.label(tokenize("734-422-8073")).unwrap();
        let compiled = session.compile().unwrap();
        assert_eq!(compiled.target(), &tokenize("734-422-8073"));
        // The compiled program serves a column the session never saw.
        let other = vec!["555.867.5309".to_string(), "not a phone".to_string()];
        let report = TransformReport::from_batch(compiled.execute(&other));
        assert_eq!(report.values(), vec!["555-867-5309", "not a phone"]);
        assert_eq!(report.flagged_count(), 1);
    }

    #[test]
    fn data_accessor_and_hierarchy() {
        let session = ClxSession::new(phone_data());
        assert_eq!(session.data().len(), 7);
        assert_eq!(session.hierarchy().total_rows(), 7);
    }

    #[test]
    fn empty_data_session() {
        let mut session = ClxSession::new(Vec::new());
        assert!(session.patterns().is_empty());
        session.label(tokenize("123")).unwrap();
        let report = session.apply().unwrap();
        assert!(report.rows.is_empty());
        assert!(report.is_perfect());
    }

    #[test]
    fn options_are_respected() {
        let mut options = ClxOptions::default();
        options.profiler.discover_constants = false;
        options.synthesis.top_k = 1;
        let mut session = ClxSession::with_options(phone_data(), options);
        session.label(tokenize("734-422-8073")).unwrap();
        for source in &session.synthesis().unwrap().sources {
            assert_eq!(source.plans.len(), 1);
        }
    }
}
