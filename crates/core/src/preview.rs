//! The Preview Table of Figure 8: a side-by-side rendering of input and
//! output for a sample of the data, used to visualize the effect of each
//! suggested `Replace` operation before the user commits to it.

use crate::report::TransformReport;
use crate::session::{ClxError, ClxSession, Labelled};

/// One row of a preview table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreviewRow {
    /// The raw input value.
    pub input: String,
    /// The value after applying the current program.
    pub output: String,
    /// `true` when the value was changed.
    pub changed: bool,
}

/// A preview of the transformation over a sample of the column (Figure 8).
#[derive(Debug, Clone, Default)]
pub struct PreviewTable {
    /// The sampled rows.
    pub rows: Vec<PreviewRow>,
}

impl PreviewTable {
    /// Render the two-column table as text.
    pub fn render(&self) -> String {
        let left_width = self
            .rows
            .iter()
            .map(|r| r.input.chars().count())
            .max()
            .unwrap_or(10)
            .max("Input Data".len());
        let mut out = format!("{:<left_width$}  | Output Data\n", "Input Data");
        out.push_str(&format!("{:-<left_width$}--+------------\n", ""));
        for row in &self.rows {
            out.push_str(&format!("{:<left_width$}  | {}\n", row.input, row.output));
        }
        out
    }

    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the preview has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl ClxSession<Labelled> {
    /// Build a Preview Table over the first `sample` rows of the column.
    /// Rows from every leaf cluster are included so the preview shows the
    /// effect of each suggested operation, as in Figure 8 of the paper.
    /// (Like every transform-phase method, `preview` exists only on a
    /// labelled session.)
    pub fn preview(&self, sample: usize) -> Result<PreviewTable, ClxError> {
        let report: TransformReport = self.apply()?;
        let mut rows = Vec::new();
        let mut per_pattern_seen: Vec<(String, usize)> = Vec::new();
        for (row, outcome) in report.iter_rows().enumerate() {
            let value = self.data().distinct(self.data().distinct_index_of(row));
            // The row's leaf pattern is already cached by the column.
            let key = value.leaf().notation();
            let seen = match per_pattern_seen.iter_mut().find(|(k, _)| *k == key) {
                Some((_, count)) => {
                    *count += 1;
                    *count
                }
                None => {
                    per_pattern_seen.push((key, 1));
                    1
                }
            };
            // Keep at most `sample` examples per distinct pattern.
            if seen <= sample {
                rows.push(PreviewRow {
                    input: value.text().to_string(),
                    output: outcome.value().to_string(),
                    changed: outcome.is_transformed(),
                });
            }
        }
        Ok(PreviewTable { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn session() -> ClxSession<Labelled> {
        let data: Vec<String> = vec![
            "(734) 645-8397".into(),
            "(734) 763-1147".into(),
            "(734)586-7252".into(),
            "734-422-8073".into(),
            "734.236.3466".into(),
            "N/A".into(),
        ];
        ClxSession::new(data)
            .label(tokenize("734-422-8073"))
            .unwrap()
    }

    #[test]
    fn preview_covers_every_pattern() {
        let s = session();
        let preview = s.preview(1).unwrap();
        // One row per distinct leaf pattern (5 patterns in the data).
        assert_eq!(preview.len(), 5);
        assert!(!preview.is_empty());
        // Transformed rows are marked as changed; flagged/conforming are not.
        let changed: Vec<bool> = preview.rows.iter().map(|r| r.changed).collect();
        assert!(changed.iter().any(|&c| c));
        assert!(changed.iter().any(|&c| !c));
    }

    #[test]
    fn preview_sample_limits_rows_per_pattern() {
        let s = session();
        let one = s.preview(1).unwrap().len();
        let two = s.preview(2).unwrap().len();
        assert!(two > one);
        assert_eq!(two, 6); // 2 rows for the paren-space cluster, 1 each for the rest
    }

    #[test]
    fn render_is_a_two_column_table() {
        let s = session();
        let text = s.preview(1).unwrap().render();
        assert!(text.starts_with("Input Data"));
        assert!(text.contains("| Output Data"));
        assert!(text.contains("(734) 645-8397"));
        assert!(text.contains("734-645-8397"));
        // every data row appears on its own line with the separator
        assert!(text.lines().skip(2).all(|l| l.contains(" | ")));
    }

    #[test]
    fn empty_preview_renders_header_only() {
        let s = ClxSession::new(Vec::new()).label(tokenize("123")).unwrap();
        let preview = s.preview(3).unwrap();
        assert!(preview.is_empty());
        assert_eq!(preview.render().lines().count(), 2);
    }
}
