//! The result of applying a synthesized program to a whole column.

use clx_pattern::Pattern;

/// The outcome for one input row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row already matched the target pattern and was left untouched.
    AlreadyConforming {
        /// The (unchanged) value.
        value: String,
    },
    /// A branch of the synthesized program transformed the row.
    Transformed {
        /// The original value.
        from: String,
        /// The transformed value.
        to: String,
    },
    /// No branch matched; the row is left unchanged and flagged for review
    /// (§6.1 of the paper).
    Flagged {
        /// The (unchanged) value.
        value: String,
    },
}

impl RowOutcome {
    /// The output value of the row after the transformation pass.
    pub fn value(&self) -> &str {
        match self {
            RowOutcome::AlreadyConforming { value } | RowOutcome::Flagged { value } => value,
            RowOutcome::Transformed { to, .. } => to,
        }
    }

    /// `true` if the row was changed.
    pub fn is_transformed(&self) -> bool {
        matches!(self, RowOutcome::Transformed { .. })
    }

    /// `true` if the row was flagged for manual review.
    pub fn is_flagged(&self) -> bool {
        matches!(self, RowOutcome::Flagged { .. })
    }

    /// `true` if the row already matched the target pattern.
    pub fn is_conforming(&self) -> bool {
        matches!(self, RowOutcome::AlreadyConforming { .. })
    }
}

/// A column-level transformation report: one [`RowOutcome`] per input row,
/// plus the target pattern the run was labelled with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformReport {
    /// The labelled target pattern.
    pub target: Pattern,
    /// One outcome per input row, in input order.
    pub rows: Vec<RowOutcome>,
}

impl TransformReport {
    /// Convert a `clx-engine` batch report into a session report. The row
    /// outcomes map one-to-one, so a parallel run and a sequential
    /// [`crate::ClxSession::apply`] over the same data compare equal.
    pub fn from_batch(batch: clx_engine::BatchReport) -> Self {
        let rows = batch
            .rows
            .into_iter()
            .map(|row| match row {
                clx_engine::RowOutcome::Conforming { value } => {
                    RowOutcome::AlreadyConforming { value }
                }
                clx_engine::RowOutcome::Transformed { from, to } => {
                    RowOutcome::Transformed { from, to }
                }
                clx_engine::RowOutcome::Flagged { value } => RowOutcome::Flagged { value },
            })
            .collect();
        TransformReport {
            target: batch.target,
            rows,
        }
    }

    /// The output column (one value per row, in input order).
    pub fn values(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.value().to_string()).collect()
    }

    /// Number of rows actively transformed.
    pub fn transformed_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_transformed()).count()
    }

    /// Number of rows that already matched the target.
    pub fn conforming_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_conforming()).count()
    }

    /// Number of rows flagged for review.
    pub fn flagged_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_flagged()).count()
    }

    /// The flagged values (for the review step the paper describes).
    pub fn flagged_values(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.is_flagged())
            .map(|r| r.value())
            .collect()
    }

    /// `true` when every row now matches the target pattern (the paper's
    /// definition of a "perfect" program, §7.4).
    pub fn is_perfect(&self) -> bool {
        self.rows.iter().all(|r| self.target.matches(r.value()))
    }

    /// Fraction of rows whose output matches the target pattern.
    pub fn conformance_ratio(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let ok = self
            .rows
            .iter()
            .filter(|r| self.target.matches(r.value()))
            .count();
        ok as f64 / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn report() -> TransformReport {
        TransformReport {
            target: tokenize("734-422-8073"),
            rows: vec![
                RowOutcome::AlreadyConforming {
                    value: "734-422-8073".into(),
                },
                RowOutcome::Transformed {
                    from: "(734) 645-8397".into(),
                    to: "734-645-8397".into(),
                },
                RowOutcome::Flagged {
                    value: "N/A".into(),
                },
            ],
        }
    }

    #[test]
    fn counts() {
        let r = report();
        assert_eq!(r.transformed_count(), 1);
        assert_eq!(r.conforming_count(), 1);
        assert_eq!(r.flagged_count(), 1);
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn values_preserve_order() {
        assert_eq!(
            report().values(),
            vec!["734-422-8073", "734-645-8397", "N/A"]
        );
    }

    #[test]
    fn flagged_values() {
        assert_eq!(report().flagged_values(), vec!["N/A"]);
    }

    #[test]
    fn perfection_and_conformance() {
        let r = report();
        assert!(!r.is_perfect());
        assert!((r.conformance_ratio() - 2.0 / 3.0).abs() < 1e-9);

        let perfect = TransformReport {
            target: tokenize("734-422-8073"),
            rows: vec![RowOutcome::Transformed {
                from: "x".into(),
                to: "555-111-2222".into(),
            }],
        };
        assert!(perfect.is_perfect());
        assert_eq!(perfect.conformance_ratio(), 1.0);
    }

    #[test]
    fn empty_report_is_perfect() {
        let r = TransformReport {
            target: tokenize("1"),
            rows: vec![],
        };
        assert!(r.is_perfect());
        assert_eq!(r.conformance_ratio(), 1.0);
    }

    #[test]
    fn from_batch_maps_rows_one_to_one() {
        let batch = clx_engine::BatchReport::from_chunks(
            tokenize("734-422-8073"),
            vec![clx_engine::ChunkReport::new(
                0,
                vec![
                    clx_engine::RowOutcome::Conforming {
                        value: "734-422-8073".into(),
                    },
                    clx_engine::RowOutcome::Transformed {
                        from: "(734) 645-8397".into(),
                        to: "734-645-8397".into(),
                    },
                    clx_engine::RowOutcome::Flagged {
                        value: "N/A".into(),
                    },
                ],
            )],
        );
        let report = TransformReport::from_batch(batch);
        assert_eq!(report, self::report());
    }

    #[test]
    fn row_outcome_accessors() {
        let t = RowOutcome::Transformed {
            from: "a".into(),
            to: "b".into(),
        };
        assert_eq!(t.value(), "b");
        assert!(t.is_transformed() && !t.is_flagged() && !t.is_conforming());
        let c = RowOutcome::AlreadyConforming { value: "x".into() };
        assert!(c.is_conforming());
        assert_eq!(c.value(), "x");
        let f = RowOutcome::Flagged { value: "y".into() };
        assert!(f.is_flagged());
        assert_eq!(f.value(), "y");
    }
}
