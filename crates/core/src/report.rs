//! The result of applying a synthesized program to a whole column.
//!
//! A [`TransformReport`] is *columnar*: it wraps the engine's
//! [`BatchReport`], which stores one [`RowOutcome`] per **distinct** value
//! plus a reference-counted clone of the column's row→distinct map. On a
//! duplicate-heavy column the report therefore costs O(distinct) to build
//! and hold — no outcome is ever cloned per duplicate row — while the
//! row-oriented accessors ([`TransformReport::iter_rows`],
//! [`TransformReport::row`], [`TransformReport::values`]) remain
//! row-for-row identical to the old one-outcome-per-row report.

use clx_column::Column;
use clx_engine::{BatchReport, ChunkReport, RowOutcomes};
use clx_pattern::Pattern;
use clx_unifi::Program;

pub use clx_engine::RowOutcome;

/// A column-level transformation report: every row's outcome (stored once
/// per distinct value), plus the target pattern the run was labelled with.
#[derive(Debug, Clone)]
pub struct TransformReport {
    batch: BatchReport,
    /// The UniFi program that produced the outcomes, recorded by the
    /// session's apply paths so [`ClxSession::reverify`] can later diff it
    /// against the session's current (possibly repaired) program. `None`
    /// for reports assembled outside a session.
    ///
    /// [`ClxSession::reverify`]: crate::ClxSession::reverify
    provenance: Option<Program>,
}

impl TransformReport {
    /// Wrap a `clx-engine` batch report. This is **zero-copy**: the engine
    /// and the session share one outcome representation, so the stored
    /// outcomes and the row map move in unchanged — whether the batch came
    /// from the chunked per-row path or the columnar path.
    pub fn from_batch(batch: BatchReport) -> Self {
        TransformReport {
            batch,
            provenance: None,
        }
    }

    /// Build a columnar report: `outcomes[k]` is the decision for the
    /// `k`-th distinct value of `column`. O(distinct): the row map is
    /// shared with the column, not copied.
    pub fn columnar(target: Pattern, outcomes: Vec<RowOutcome>, column: &Column) -> Self {
        TransformReport {
            batch: BatchReport::columnar(target, outcomes, column),
            provenance: None,
        }
    }

    /// Build a report from one outcome per row (no dedup). Mostly useful
    /// in tests and for callers that already hold per-row outcomes.
    pub fn from_row_outcomes(target: Pattern, rows: Vec<RowOutcome>) -> Self {
        let chunks = if rows.is_empty() {
            Vec::new()
        } else {
            vec![ChunkReport::new(0, rows)]
        };
        TransformReport {
            batch: BatchReport::from_chunks(target, chunks),
            provenance: None,
        }
    }

    /// The program that produced this report, when it was produced by a
    /// session apply path; `None` for hand-assembled reports. This is what
    /// [`ClxSession::reverify`](crate::ClxSession::reverify) diffs the
    /// current program against.
    pub fn provenance(&self) -> Option<&Program> {
        self.provenance.as_ref()
    }

    /// Record the program that produced this report.
    pub(crate) fn set_provenance(&mut self, program: Program) {
        self.provenance = Some(program);
    }

    /// The wrapped engine report (for the in-crate patch path).
    pub(crate) fn batch(&self) -> &BatchReport {
        &self.batch
    }

    /// The labelled target pattern.
    pub fn target(&self) -> &Pattern {
        &self.batch.target
    }

    /// Number of rows covered by this report.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// `true` when the report covers no rows.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// The stored outcomes: one per *distinct* value for columnar reports
    /// (the usual session path), one per row for reports built from per-row
    /// outcomes. `distinct_outcomes()[k]` is the decision for the `k`-th
    /// distinct value of the session's column, in first-occurrence order.
    pub fn distinct_outcomes(&self) -> &[RowOutcome] {
        self.batch.outcomes()
    }

    /// The outcome of row `index`.
    pub fn row(&self, index: usize) -> &RowOutcome {
        self.batch.row(index)
    }

    /// Every row's outcome, in input order (duplicate rows yield the same
    /// `&RowOutcome`).
    pub fn iter_rows(&self) -> RowOutcomes<'_> {
        self.batch.iter_rows()
    }

    /// The output column (one value per row, in input order).
    pub fn values(&self) -> Vec<String> {
        self.batch.values()
    }

    /// Borrowing iterator over every row's *output value*, in input order.
    ///
    /// Unlike [`TransformReport::values`] this materializes no `String`s:
    /// duplicate rows yield the same `&str` out of the stored outcome, so a
    /// serving path can write the whole output column through without one
    /// allocation per row.
    pub fn iter_values(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        self.batch.iter_values()
    }

    /// Number of rows actively transformed.
    pub fn transformed_count(&self) -> usize {
        self.batch.transformed_count()
    }

    /// Number of rows that already matched the target.
    pub fn conforming_count(&self) -> usize {
        self.batch.conforming_count()
    }

    /// Number of rows flagged for review.
    pub fn flagged_count(&self) -> usize {
        self.batch.flagged_count()
    }

    /// The flagged values, in input order (one entry per flagged row — the
    /// review step the paper describes).
    pub fn flagged_values(&self) -> Vec<&str> {
        self.batch.flagged_values()
    }

    /// `true` when every row now matches the target pattern (the paper's
    /// definition of a "perfect" program, §7.4). Checked once per stored
    /// outcome, so O(distinct) on a columnar report.
    pub fn is_perfect(&self) -> bool {
        self.batch.is_perfect()
    }

    /// Fraction of rows whose output matches the target pattern.
    pub fn conformance_ratio(&self) -> f64 {
        self.batch.conformance_ratio()
    }
}

/// Reports compare by what they say about every row: same target, same
/// per-row outcomes in order — regardless of whether the outcomes are
/// stored per row or per distinct value. Provenance does not participate:
/// a patched report and a fresh full recompute compare equal even though
/// they record different originating programs.
impl PartialEq for TransformReport {
    fn eq(&self, other: &Self) -> bool {
        self.target() == other.target()
            && self.len() == other.len()
            && self.iter_rows().eq(other.iter_rows())
    }
}

impl Eq for TransformReport {}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn report() -> TransformReport {
        TransformReport::from_row_outcomes(
            tokenize("734-422-8073"),
            vec![
                RowOutcome::Conforming {
                    value: "734-422-8073".into(),
                },
                RowOutcome::Transformed {
                    from: "(734) 645-8397".into(),
                    to: "734-645-8397".into(),
                },
                RowOutcome::Flagged {
                    value: "N/A".into(),
                },
            ],
        )
    }

    #[test]
    fn counts() {
        let r = report();
        assert_eq!(r.transformed_count(), 1);
        assert_eq!(r.conforming_count(), 1);
        assert_eq!(r.flagged_count(), 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn values_preserve_order() {
        assert_eq!(
            report().values(),
            vec!["734-422-8073", "734-645-8397", "N/A"]
        );
    }

    #[test]
    fn flagged_values() {
        assert_eq!(report().flagged_values(), vec!["N/A"]);
    }

    #[test]
    fn perfection_and_conformance() {
        let r = report();
        assert!(!r.is_perfect());
        assert!((r.conformance_ratio() - 2.0 / 3.0).abs() < 1e-9);

        let perfect = TransformReport::from_row_outcomes(
            tokenize("734-422-8073"),
            vec![RowOutcome::Transformed {
                from: "x".into(),
                to: "555-111-2222".into(),
            }],
        );
        assert!(perfect.is_perfect());
        assert_eq!(perfect.conformance_ratio(), 1.0);
    }

    #[test]
    fn empty_report_is_perfect() {
        let r = TransformReport::from_row_outcomes(tokenize("1"), vec![]);
        assert!(r.is_perfect());
        assert!(r.is_empty());
        assert_eq!(r.conformance_ratio(), 1.0);
    }

    #[test]
    fn from_batch_is_row_identical() {
        let batch = clx_engine::BatchReport::from_chunks(
            tokenize("734-422-8073"),
            vec![clx_engine::ChunkReport::new(
                0,
                vec![
                    RowOutcome::Conforming {
                        value: "734-422-8073".into(),
                    },
                    RowOutcome::Transformed {
                        from: "(734) 645-8397".into(),
                        to: "734-645-8397".into(),
                    },
                    RowOutcome::Flagged {
                        value: "N/A".into(),
                    },
                ],
            )],
        );
        let report = TransformReport::from_batch(batch);
        assert_eq!(report, self::report());
    }

    #[test]
    fn columnar_and_row_reports_compare_equal() {
        // Same logical rows, different storage: equality is by row.
        let column = Column::from_values(&["a-1", "N/A", "a-1"]);
        let columnar = TransformReport::columnar(
            tokenize("a-1"),
            vec![
                RowOutcome::Conforming {
                    value: "a-1".into(),
                },
                RowOutcome::Flagged {
                    value: "N/A".into(),
                },
            ],
            &column,
        );
        let per_row = TransformReport::from_row_outcomes(
            tokenize("a-1"),
            vec![
                RowOutcome::Conforming {
                    value: "a-1".into(),
                },
                RowOutcome::Flagged {
                    value: "N/A".into(),
                },
                RowOutcome::Conforming {
                    value: "a-1".into(),
                },
            ],
        );
        assert_eq!(columnar, per_row);
        assert_eq!(columnar.distinct_outcomes().len(), 2);
        assert_eq!(per_row.distinct_outcomes().len(), 3);
        assert_eq!(columnar.row(2), per_row.row(2));
        assert_eq!(columnar.conforming_count(), 2);
        assert_eq!(columnar.flagged_count(), 1);
    }

    #[test]
    fn row_outcome_accessors() {
        let t = RowOutcome::Transformed {
            from: "a".into(),
            to: "b".into(),
        };
        assert_eq!(t.value(), "b");
        assert!(t.is_transformed() && !t.is_flagged() && !t.is_conforming());
        let c = RowOutcome::Conforming { value: "x".into() };
        assert!(c.is_conforming());
        assert_eq!(c.value(), "x");
        let f = RowOutcome::Flagged { value: "y".into() };
        assert!(f.is_flagged());
        assert_eq!(f.value(), "y");
    }
}
