//! # clx-core
//!
//! The CLX engine: the *Cluster–Label–Transform* interaction paradigm of
//! *CLX: Towards verifiable PBE data transformation* (Jin et al.),
//! assembled from the lower-level crates — with the protocol itself encoded
//! in the session types:
//!
//! * **Cluster** — [`ClxSession::new`] profiles the raw column into a
//!   pattern-cluster hierarchy (`clx-cluster`), which is what the user
//!   reviews instead of raw rows (Figure 3 of the paper). The session is a
//!   [`ClxSession<Clustered>`]: only the clustering surface exists on it.
//! * **Label** — [`ClxSession::label`] (or
//!   [`ClxSession::label_by_example`]) *consumes* the clustered session and
//!   returns a [`ClxSession<Labelled>`] carrying the target pattern and the
//!   synthesized UniFi program (`clx-synth`).
//! * **Transform** — every transform-phase method ([`ClxSession::apply`],
//!   [`ClxSession::explanation`], [`ClxSession::repair`],
//!   [`ClxSession::compile`], …) exists **only** on the labelled session.
//!   Calling one before labelling is a compile error, not a runtime `Err` —
//!   the strongest form of the paper's verifiability protocol.
//!
//! Dynamic callers (REPLs, services) hold an [`AnySession`] and match on
//! the phase at their boundary.
//!
//! Applying a program produces a **columnar** [`TransformReport`]: one
//! [`RowOutcome`] per *distinct* value plus the column's shared row map, so
//! reporting is O(distinct) end to end on duplicate-heavy columns. For bulk
//! execution beyond the interactive loop, [`ClxSession::compile`] hands the
//! program to the `clx-engine` batch subsystem (parallel chunked execution,
//! streaming, program caching); [`ClxSession::apply_parallel`] is the
//! drop-in engine-backed counterpart of [`ClxSession::apply`].
//!
//! ```
//! use clx_core::ClxSession;
//!
//! let data = vec![
//!     "(734) 645-8397".to_string(),
//!     "(734)586-7252".to_string(),
//!     "734-422-8073".to_string(),
//!     "734.236.3466".to_string(),
//!     "N/A".to_string(),
//! ];
//! let session = ClxSession::new(data);
//!
//! // The user reviews the pattern list and labels the desired pattern;
//! // labelling moves the session into the transform phase.
//! let session = session.label_by_example("734-422-8073").unwrap();
//!
//! // The inferred program is shown as Replace operations...
//! let ops = session.explanation().unwrap();
//! assert!(!ops.operations.is_empty());
//!
//! // ...and applied to the whole column.
//! let report = session.apply().unwrap();
//! assert_eq!(report.transformed_count(), 3);
//! assert_eq!(report.flagged_count(), 1); // "N/A"
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod preview;
mod report;
mod session;

pub use preview::{PreviewRow, PreviewTable};
pub use report::{RowOutcome, TransformReport};
pub use session::{
    AnySession, Clustered, ClxError, ClxOptions, ClxSession, LabelError, Labelled, Phase,
};

// Re-export the key types a downstream user needs so that `clx-core` (or the
// `clx` facade) is a one-stop dependency.
pub use clx_cluster::{ClusterNode, PatternHierarchy, PatternProfiler, ProfilerOptions};
pub use clx_column::{Column, ColumnBuilder, ColumnChunk, ColumnInterner, DistinctValue};
pub use clx_engine::{
    BatchReport, ChunkReport, ColumnStream, CompiledProgram, ExecOptions, ProgramCache,
    RowOutcomes, StreamSession,
};
pub use clx_pattern::{parse_pattern, tokenize, Pattern, Token, TokenClass};
pub use clx_synth::{RankedPlan, Synthesis, SynthesisOptions};
pub use clx_unifi::{Explanation, Program, ReplaceOp, TransformOutcome};
