//! Compilation of a UniFi [`Program`] into an immutable, thread-safe
//! executable form.

use std::hash::{Hash as _, Hasher as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clx_pattern::{tokenize, Pattern};
use clx_regex::Regex;
use clx_telemetry::{MetricSink, Span};
use clx_unifi::{eval_expr, Expr, Program, StringExpr};

use crate::dispatch::{DispatchCache, LeafPlan, SplitPlan, Step};
use crate::error::CompileError;
use crate::fused::{FusedFallback, FusedMatcher};
use crate::report::RowOutcome;

/// One compiled branch: the source pattern, its plan, and the pre-built
/// Pike-VM regex program used to test opaque patterns in guaranteed linear
/// time (the interpretive `Pattern::matches` backtracks and can go
/// super-linear on adversarial rows).
#[derive(Debug)]
pub struct CompiledBranch {
    pattern: Pattern,
    expr: Expr,
    regex: Regex,
    transparent: bool,
}

impl CompiledBranch {
    /// The branch's source pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The branch's atomic transformation plan.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The pre-built anchored Pike-VM regex equivalent to the pattern.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// `true` when matching this branch is decidable from a row's leaf
    /// pattern alone (see the `dispatch` module docs).
    pub fn is_transparent(&self) -> bool {
        self.transparent
    }
}

/// A labelled UniFi program compiled for high-throughput batch execution.
///
/// Compilation performs, once:
///
/// * static validation of every branch's `Extract` bounds (an ill-formed
///   program is rejected before any data is touched, instead of erroring
///   midway through row N of the sequential path);
/// * Pike-VM regex compilation of the target and every branch pattern;
/// * the transparency analysis enabling leaf-signature dispatch.
///
/// The result is immutable and `Send + Sync`: one `CompiledProgram` serves
/// any number of executor threads (and callers) concurrently. Execution
/// semantics are exactly those of the sequential session path: rows already
/// matching the target are conforming, otherwise the first matching branch
/// rewrites the row, otherwise the row is flagged unchanged (§6.1).
#[derive(Debug)]
pub struct CompiledProgram {
    pub(crate) target: Pattern,
    target_regex: Regex,
    target_transparent: bool,
    branches: Vec<CompiledBranch>,
    fingerprint: u64,
    /// Process-unique id of this compilation; [`crate::DispatchCache`]s
    /// bind to it, so a cached plan can never be replayed against another
    /// program — not even under a fingerprint collision.
    instance: u64,
    /// The fused multi-pattern decision automaton (see the `fused` module
    /// docs): one pass over a new leaf signature decides every transparent
    /// pattern at once, instead of up to k+1 per-branch matcher runs.
    /// `None` when construction fell back ([`CompiledProgram::fused_fallback`]).
    fused: Option<FusedMatcher>,
    /// Why `fused` is `None`, when it is.
    fused_fallback: Option<FusedFallback>,
    /// Build the winning branch's split boundaries from the automaton's
    /// accepting path instead of re-running `Pattern::split` (the default;
    /// [`CompiledProgram::without_derived_splits`] turns it off for
    /// differential testing and benchmarking).
    derive_splits: bool,
    /// Cold-path decision tallies (relaxed atomics: the program is shared
    /// across executor threads; plan builds are per distinct leaf, so the
    /// increment never sits on the per-row path).
    tallies: FusedTallies,
}

/// The decision class of one value under a [`CompiledProgram`] — the §6.1
/// outcome without the rewritten string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The value already matches the target pattern.
    Conforming,
    /// The branch at this index rewrites the value (first match wins).
    Branch(usize),
    /// No branch applies: the value is left unchanged and flagged.
    Flagged,
}

/// Lifetime tallies of cold-path (plan-building) decisions, split by which
/// machinery answered. Read via [`CompiledProgram::fused_stats`];
/// [`crate::ColumnStream`] publishes the deltas as `engine.fused.*`
/// counters at chunk boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedStats {
    /// Cold decisions answered by the fused automaton in one leaf pass.
    pub fused_decisions: u64,
    /// Cold decisions that ran the per-branch matching loop — every
    /// decision of a fallback program, or a non-leaf signature handed to a
    /// fused one.
    pub pike_vm_decisions: u64,
    /// Fused branch decisions whose split boundaries were derived from the
    /// automaton's accepting path — first sight stayed single-pass, no
    /// `Pattern::split` ran.
    pub split_derived: u64,
    /// Fused branch decisions that fell back to `Pattern::split` for the
    /// boundaries ([`FusedFallback::SplitUnderived`]): derived splits
    /// turned off, or the defensive reconstruction walk declined.
    pub split_fallbacks: u64,
}

#[derive(Debug, Default)]
struct FusedTallies {
    fused: AtomicU64,
    pike_vm: AtomicU64,
    split_derived: AtomicU64,
    split_fallbacks: AtomicU64,
}

/// Source of [`CompiledProgram::instance`] ids.
static NEXT_INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

// One compiled program is shared by every worker thread of the executor;
// keep that guarantee compiler-checked.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledProgram>();
};

impl CompiledProgram {
    /// Compile `program` for execution against `target`.
    pub fn compile(program: &Program, target: &Pattern) -> Result<Self, CompileError> {
        Self::compile_observed(program, target, None)
    }

    /// [`CompiledProgram::compile`] under an optional telemetry sink: the
    /// fused-automaton construction is timed as `engine.fused.build_ns`
    /// and a per-program fallback is counted as `engine.fused.fallbacks`.
    /// With `None` this never reads a clock.
    pub fn compile_observed(
        program: &Program,
        target: &Pattern,
        telemetry: Option<&Arc<dyn MetricSink>>,
    ) -> Result<Self, CompileError> {
        let target_regex = Regex::new(&target.to_regex()).map_err(|e| CompileError::Regex {
            branch: None,
            message: e.to_string(),
        })?;
        let mut branches = Vec::with_capacity(program.len());
        for (index, branch) in program.branches.iter().enumerate() {
            branch
                .validate()
                .map_err(|source| CompileError::InvalidBranch { index, source })?;
            let regex =
                Regex::new(&branch.pattern.to_regex()).map_err(|e| CompileError::Regex {
                    branch: Some(index),
                    message: e.to_string(),
                })?;
            branches.push(CompiledBranch {
                pattern: branch.pattern.clone(),
                expr: branch.expr.clone(),
                regex,
                transparent: is_transparent(&branch.pattern),
            });
        }
        let target_transparent = is_transparent(target);
        let (fused, fused_fallback) = {
            let _span = Span::start(telemetry, "engine.fused.build_ns");
            let branch_patterns: Vec<Option<&Pattern>> = branches
                .iter()
                .map(|b| b.transparent.then_some(&b.pattern))
                .collect();
            match FusedMatcher::build(target_transparent.then_some(target), &branch_patterns) {
                Ok(matcher) => (Some(matcher), None),
                Err(fallback) => (None, Some(fallback)),
            }
        };
        if fused_fallback.is_some() {
            if let Some(sink) = telemetry {
                sink.counter("engine.fused.fallbacks", 1);
            }
        }
        Ok(CompiledProgram {
            target: target.clone(),
            target_regex,
            target_transparent,
            branches,
            fingerprint: fingerprint(program, target),
            instance: NEXT_INSTANCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            fused,
            fused_fallback,
            derive_splits: true,
            tallies: FusedTallies::default(),
        })
    }

    /// [`CompiledProgram::compile_observed`] plus a strict static-analysis
    /// gate: the program is analyzed (`clx-analyze`) and rejected with
    /// [`CompileError::RejectedByAnalysis`] when any `Error`-severity
    /// diagnostic is found (a proven-dead or shadowed branch, or an
    /// `Extract` that errors on every matching row). Warnings never
    /// reject. The default entry points only *record* diagnostics — this
    /// is the opt-in described in the README's "Static program
    /// diagnostics" section.
    pub fn compile_strict(
        program: &Program,
        target: &Pattern,
        telemetry: Option<&Arc<dyn MetricSink>>,
    ) -> Result<Self, CompileError> {
        let report = clx_analyze::analyze_observed(program, target, telemetry);
        if report.has_errors() {
            return Err(CompileError::RejectedByAnalysis {
                findings: report.errors().map(|d| d.to_string()).collect(),
            });
        }
        Self::compile_observed(program, target, telemetry)
    }

    /// This compilation with fused dispatch turned off: every cold-path
    /// decision runs the per-branch matching loop, with behavior
    /// guaranteed identical (the property suite locks this). For
    /// benchmarking and differential testing of the two cold paths.
    pub fn without_fused(mut self) -> Self {
        if self.fused.take().is_some() {
            self.fused_fallback = Some(FusedFallback::Disabled);
        }
        self
    }

    /// This compilation with derived split boundaries turned off: the
    /// fused automaton still classifies every cold decision, but the
    /// winning branch re-runs `Pattern::split` for its token boundaries
    /// (the pre-single-pass cold path, each counted as a
    /// [`FusedFallback::SplitUnderived`] split fallback). Behavior is
    /// guaranteed identical — the derived ranges equal `split`'s, locked
    /// by the property suite. For benchmarking and differential testing.
    pub fn without_derived_splits(mut self) -> Self {
        self.derive_splits = false;
        self
    }

    /// `true` when cold-path decisions go through the fused automaton.
    pub fn fused_active(&self) -> bool {
        self.fused.is_some()
    }

    /// Why this program has no fused automaton (`None` when it has one).
    pub fn fused_fallback(&self) -> Option<FusedFallback> {
        self.fused_fallback
    }

    /// Why fused branch decisions (if any) re-ran `Pattern::split` for
    /// their boundaries: `Some(SplitUnderived)` when derived splits are
    /// turned off or any decision's reconstruction declined, `None` while
    /// every fused branch decision stayed single-pass.
    pub fn split_fallback(&self) -> Option<FusedFallback> {
        if !self.derive_splits || self.tallies.split_fallbacks.load(Ordering::Relaxed) > 0 {
            Some(FusedFallback::SplitUnderived)
        } else {
            None
        }
    }

    /// One consistent read of the cold-path decision tallies.
    pub fn fused_stats(&self) -> FusedStats {
        FusedStats {
            fused_decisions: self.tallies.fused.load(Ordering::Relaxed),
            pike_vm_decisions: self.tallies.pike_vm.load(Ordering::Relaxed),
            split_derived: self.tallies.split_derived.load(Ordering::Relaxed),
            split_fallbacks: self.tallies.split_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// The decision class of `value` — conforming, which branch rewrites
    /// it, or flagged — without building the rewritten string.
    ///
    /// Consults the fused automaton first: one pass over the value's leaf
    /// signature decides every transparent pattern at once. Opaque
    /// patterns are checked per value exactly as in execution, and a
    /// fallback program ([`CompiledProgram::fused_fallback`]) walks the
    /// per-branch loop — the decision is identical either way, and
    /// consistent with [`CompiledProgram::transform_one`]'s outcome.
    pub fn decide(&self, value: &str) -> Decision {
        self.decide_cached(&tokenize(value), value)
    }

    /// [`CompiledProgram::decide`] for a value whose leaf pattern is
    /// already known; `leaf` must be exactly `tokenize(value)`.
    pub fn decide_cached(&self, leaf: &Pattern, value: &str) -> Decision {
        debug_assert_eq!(leaf, &tokenize(value), "leaf must be the value's own");
        let plan = self.build_plan(leaf, value);
        for step in &plan.steps {
            match step {
                Step::Conforming => return Decision::Conforming,
                Step::Apply { branch, .. } => return Decision::Branch(*branch),
                Step::CheckTarget => {
                    if self.target_regex.is_full_match(value) {
                        return Decision::Conforming;
                    }
                }
                Step::CheckBranch { branch } => {
                    let b = &self.branches[*branch];
                    if b.regex.is_full_match(value) && eval_expr(&b.expr, &b.pattern, value).is_ok()
                    {
                        return Decision::Branch(*branch);
                    }
                }
            }
        }
        Decision::Flagged
    }

    /// The target pattern this program was compiled against.
    pub fn target(&self) -> &Pattern {
        &self.target
    }

    /// The compiled branches, in dispatch order.
    pub fn branches(&self) -> &[CompiledBranch] {
        &self.branches
    }

    /// The process-unique instance id of this compilation (distinct even
    /// for equal programs recompiled — it keys per-instance caches).
    pub(crate) fn instance(&self) -> u64 {
        self.instance
    }

    /// The structural hash of `(program, target)`, the key under which
    /// [`crate::ProgramCache`] stores this compilation.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// `true` when the target and every branch admit leaf-signature
    /// dispatch, i.e. steady-state execution never runs a full pattern
    /// match.
    pub fn is_fully_transparent(&self) -> bool {
        self.target_transparent && self.branches.iter().all(|b| b.transparent)
    }

    /// Transform a single row, consulting (and populating) `cache`.
    pub fn transform_one(&self, cache: &mut DispatchCache, value: &str) -> RowOutcome {
        let leaf = tokenize(value);
        self.transform_one_cached(cache, value, &leaf)
    }

    /// [`CompiledProgram::transform_one`] for a value whose leaf pattern is
    /// already known — e.g. the cached signature a `clx-column` `Column`
    /// carries per distinct value — so the row is never re-tokenized. The
    /// leaf is only cloned when a plan for it is decided for the first time.
    ///
    /// `leaf` must be exactly `tokenize(value)`; the leaf-signature
    /// dispatch (see the `dispatch` module docs) is only sound for leaves
    /// produced by the same tokenizer rules.
    pub fn transform_one_cached(
        &self,
        cache: &mut DispatchCache,
        value: &str,
        leaf: &Pattern,
    ) -> RowOutcome {
        debug_assert_eq!(leaf, &tokenize(value), "leaf must be the value's own");
        let plan = cache.plan_for(self.instance, leaf, |l| self.build_plan(l, value));
        self.run_plan(&plan, value)
    }

    /// [`CompiledProgram::transform_one_cached`] dispatching by the dense
    /// integer `leaf_id` a [`clx_column::ColumnInterner`] assigned to
    /// `leaf` — the cache lookup is an array index; no `Pattern` is hashed
    /// or compared on the hit path.
    ///
    /// `source` names the id space `leaf_id` belongs to (the interner's
    /// instance id — [`clx_column::Column::interner_id`] for columns) and
    /// `source_generation` that interner's eviction generation
    /// ([`clx_column::ColumnInterner::generation`];
    /// [`clx_column::Column::interner_generation`] for columns). The cache
    /// resets its dense tier when handed ids from a different space *or* a
    /// different generation — a bounded interner recycles leaf-ids when it
    /// evicts — so a stale plan can never be replayed under an aliased id.
    /// As with `transform_one_cached`, `leaf` must be exactly
    /// `tokenize(value)`.
    pub fn transform_one_by_leaf_id(
        &self,
        cache: &mut DispatchCache,
        source: u64,
        source_generation: u64,
        leaf_id: u32,
        value: &str,
        leaf: &Pattern,
    ) -> RowOutcome {
        self.transform_one_by_leaf_id_observed(
            cache,
            source,
            source_generation,
            leaf_id,
            value,
            leaf,
            None,
        )
    }

    /// [`CompiledProgram::transform_one_by_leaf_id`] under an optional
    /// telemetry sink: a first-sight decision times its fused classify as
    /// `engine.fused.decide_ns`. With `None` (and on every plan replay)
    /// no clock is read.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transform_one_by_leaf_id_observed(
        &self,
        cache: &mut DispatchCache,
        source: u64,
        source_generation: u64,
        leaf_id: u32,
        value: &str,
        leaf: &Pattern,
        telemetry: Option<&Arc<dyn MetricSink>>,
    ) -> RowOutcome {
        debug_assert_eq!(leaf, &tokenize(value), "leaf must be the value's own");
        let plan =
            cache.plan_for_leaf_id(self.instance, source, source_generation, leaf_id, || {
                self.build_plan_observed(leaf, value, telemetry)
            });
        self.run_plan(&plan, value)
    }

    /// Replay one leaf's decision sequence against a concrete row.
    fn run_plan(&self, plan: &LeafPlan, value: &str) -> RowOutcome {
        for step in &plan.steps {
            match step {
                Step::Conforming => {
                    return RowOutcome::Conforming {
                        value: value.to_string(),
                    }
                }
                Step::Apply { branch, split } => {
                    return RowOutcome::Transformed {
                        from: value.to_string(),
                        to: apply_split(&self.branches[*branch].expr, split, value),
                    }
                }
                Step::CheckTarget => {
                    if self.target_regex.is_full_match(value) {
                        return RowOutcome::Conforming {
                            value: value.to_string(),
                        };
                    }
                }
                Step::CheckBranch { branch } => {
                    let b = &self.branches[*branch];
                    // The Pike-VM regex is a linear-time prefilter; the
                    // rewrite itself goes through the sequential path's own
                    // evaluator so the two implementations cannot drift.
                    if b.regex.is_full_match(value) {
                        if let Ok(out) = eval_expr(&b.expr, &b.pattern, value) {
                            return RowOutcome::Transformed {
                                from: value.to_string(),
                                to: out,
                            };
                        }
                    }
                }
            }
        }
        RowOutcome::Flagged {
            value: value.to_string(),
        }
    }

    /// Build the decision plan for one leaf; `value` is a representative
    /// row with that leaf (used to precompute split boundaries).
    fn build_plan(&self, leaf: &Pattern, value: &str) -> LeafPlan {
        self.build_plan_observed(leaf, value, None)
    }

    /// [`CompiledProgram::build_plan`], routing through the fused
    /// automaton when the program has one: a single pass over the leaf's
    /// tokens decides every transparent pattern *and* records the frontier
    /// journal from which the winning branch's split boundaries are
    /// reconstructed — first sight never re-runs `Pattern::split` on the
    /// fused path. Falls back to the per-branch loop for fallback programs
    /// and for non-leaf signatures.
    fn build_plan_observed(
        &self,
        leaf: &Pattern,
        value: &str,
        telemetry: Option<&Arc<dyn MetricSink>>,
    ) -> LeafPlan {
        if let Some(fused) = &self.fused {
            let run = {
                let _span = Span::start(telemetry, "engine.fused.decide_ns");
                fused.classify(leaf)
            };
            if let Some(run) = run {
                self.tallies.fused.fetch_add(1, Ordering::Relaxed);
                return self.build_plan_fused(fused, &run, value, telemetry);
            }
        }
        self.tallies.pike_vm.fetch_add(1, Ordering::Relaxed);
        self.build_plan_per_branch(leaf, value)
    }

    /// Turn one fused classification into a plan, preserving the §6.1
    /// step order exactly: transparent target match → `Conforming`; opaque
    /// patterns keep per-row `Check*` steps in dispatch order; the first
    /// matching transparent branch becomes the `Apply` step.
    fn build_plan_fused(
        &self,
        fused: &FusedMatcher,
        run: &clx_pattern::automaton::ClassifyRun,
        value: &str,
        telemetry: Option<&Arc<dyn MetricSink>>,
    ) -> LeafPlan {
        let mut steps = Vec::new();
        if self.target_transparent {
            if fused.target_matches(run) {
                steps.push(Step::Conforming);
                return LeafPlan { steps };
            }
        } else {
            steps.push(Step::CheckTarget);
        }
        for (index, branch) in self.branches.iter().enumerate() {
            if !branch.transparent {
                steps.push(Step::CheckBranch { branch: index });
                continue;
            }
            if !fused.branch_matches(run, index) {
                continue;
            }
            // The winning branch's token boundaries come straight from the
            // accepting path — the classification pass the automaton just
            // ran — so first sight is one pass over the tokens, no second
            // `Pattern::split` match.
            let derived = if self.derive_splits {
                let _span = Span::start(telemetry, "engine.fused.split_ns");
                fused.split_ranges(run, index)
            } else {
                None
            };
            let ranges = match derived {
                Some(ranges) => {
                    self.tallies.split_derived.fetch_add(1, Ordering::Relaxed);
                    #[cfg(debug_assertions)]
                    {
                        let slices = branch
                            .pattern
                            .split(value)
                            .expect("fused automaton proved the branch matches");
                        debug_assert_eq!(
                            ranges,
                            char_ranges(value, &slices),
                            "derived boundaries diverge from Pattern::split on {value:?}"
                        );
                    }
                    ranges
                }
                None => {
                    // Never silent, never wrong: an underived boundary
                    // ([`FusedFallback::SplitUnderived`]) re-runs the
                    // backtracking split and is tallied. The automaton
                    // proved the branch matches, so the split cannot fail;
                    // treated as a non-match if it ever did, which is what
                    // the per-branch loop would conclude.
                    self.tallies.split_fallbacks.fetch_add(1, Ordering::Relaxed);
                    let Ok(slices) = branch.pattern.split(value) else {
                        debug_assert!(
                            false,
                            "fused automaton and Pattern::split disagree on {value:?}"
                        );
                        continue;
                    };
                    char_ranges(value, &slices)
                }
            };
            steps.push(Step::Apply {
                branch: index,
                split: Arc::new(SplitPlan { ranges }),
            });
            return LeafPlan { steps };
        }
        LeafPlan { steps }
    }

    /// The pre-fused cold path: walk the branches, one full backtracking
    /// match each until one fires. Kept as the recorded per-program
    /// fallback ([`CompiledProgram::fused_fallback`]) and as the per-value
    /// fallback for non-leaf signatures.
    fn build_plan_per_branch(&self, leaf: &Pattern, value: &str) -> LeafPlan {
        let mut steps = Vec::new();
        if self.target_transparent {
            if self.target.matches(value) {
                steps.push(Step::Conforming);
                return LeafPlan { steps };
            }
        } else {
            steps.push(Step::CheckTarget);
        }
        for (index, branch) in self.branches.iter().enumerate() {
            if !branch.transparent {
                steps.push(Step::CheckBranch { branch: index });
                continue;
            }
            // Cheap structural pre-filter before the backtracking split.
            if leaf.min_string_len() < branch.pattern.min_string_len() {
                continue;
            }
            if let Ok(slices) = branch.pattern.split(value) {
                steps.push(Step::Apply {
                    branch: index,
                    split: Arc::new(SplitPlan {
                        ranges: char_ranges(value, &slices),
                    }),
                });
                return LeafPlan { steps };
            }
        }
        LeafPlan { steps }
    }
}

/// A pattern is transparent when its literal tokens contain no ASCII
/// alphanumerics, making its match relation a function of the leaf pattern
/// (see the `dispatch` module docs for the argument).
fn is_transparent(pattern: &Pattern) -> bool {
    pattern.iter().all(|t| match t.literal_value() {
        Some(s) => s.chars().all(|c| !c.is_ascii_alphanumeric()),
        None => true,
    })
}

/// The cache key of a `(program, target)` compilation: the program's own
/// structural fingerprint combined with the target pattern.
pub(crate) fn fingerprint(program: &Program, target: &Pattern) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    program.fingerprint().hash(&mut hasher);
    target.hash(&mut hasher);
    hasher.finish()
}

/// Convert the byte-offset slices of `Pattern::split` into character ranges
/// reusable across every value with the same leaf.
fn char_ranges(value: &str, slices: &[clx_pattern::TokenSlice]) -> Vec<(usize, usize)> {
    // byte offset -> char index, built in one pass.
    let mut char_of_byte = vec![0usize; value.len() + 1];
    for (chars, (byte, _)) in value.char_indices().enumerate() {
        char_of_byte[byte] = chars;
    }
    char_of_byte[value.len()] = value.chars().count();
    slices
        .iter()
        .map(|s| (char_of_byte[s.start], char_of_byte[s.end]))
        .collect()
}

/// Rewrite `value` through `expr` using precomputed token boundaries.
fn apply_split(expr: &Expr, split: &SplitPlan, value: &str) -> String {
    if value.is_ascii() {
        // Char ranges are byte ranges: pure slice copies.
        let mut out = String::new();
        for part in &expr.parts {
            match part {
                StringExpr::ConstStr(s) => out.push_str(s),
                StringExpr::Extract { from, to } => {
                    let start = split.ranges[from - 1].0;
                    let end = split.ranges[to - 1].1;
                    out.push_str(&value[start..end]);
                }
            }
        }
        return out;
    }
    let byte_offsets: Vec<usize> = value
        .char_indices()
        .map(|(b, _)| b)
        .chain(std::iter::once(value.len()))
        .collect();
    let mut out = String::new();
    for part in &expr.parts {
        match part {
            StringExpr::ConstStr(s) => out.push_str(s),
            StringExpr::Extract { from, to } => {
                let start = byte_offsets[split.ranges[from - 1].0];
                let end = byte_offsets[split.ranges[to - 1].1];
                out.push_str(&value[start..end]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::FUSED_MAX_WIDTH;
    use clx_pattern::{parse_pattern, Token};
    use clx_unifi::{transform, Branch};

    /// The Figure 4 phone program: three source formats normalized to
    /// `(ddd) ddd-dddd`.
    fn phone_program() -> Program {
        Program::new(vec![
            Branch::new(
                tokenize("734-422-8073"),
                Expr::concat(vec![
                    StringExpr::const_str("("),
                    StringExpr::extract(1),
                    StringExpr::const_str(") "),
                    StringExpr::extract(3),
                    StringExpr::const_str("-"),
                    StringExpr::extract(5),
                ]),
            ),
            Branch::new(
                tokenize("(734)586-7252"),
                Expr::concat(vec![
                    StringExpr::const_str("("),
                    StringExpr::extract(2),
                    StringExpr::const_str(") "),
                    StringExpr::extract(4),
                    StringExpr::const_str("-"),
                    StringExpr::extract(6),
                ]),
            ),
        ])
    }

    fn phone_target() -> Pattern {
        tokenize("(734) 645-8397")
    }

    #[test]
    fn compiled_matches_sequential_transform() {
        let program = phone_program();
        let compiled = CompiledProgram::compile(&program, &phone_target()).unwrap();
        let mut cache = DispatchCache::new();
        let inputs = [
            "734-422-8073",
            "(734)586-7252",
            "555-111-2222",
            "(734) 645-8397",
            "N/A",
            "",
        ];
        for input in inputs {
            let got = compiled.transform_one(&mut cache, input);
            if phone_target().matches(input) {
                assert!(got.is_conforming(), "{input:?} -> {got:?}");
            } else {
                let want = transform(&program, input).unwrap();
                assert_eq!(got.value(), want.value(), "on {input:?}");
                assert_eq!(got.is_flagged(), want.is_flagged(), "on {input:?}");
            }
        }
    }

    #[test]
    fn dispatch_cache_replays_decisions() {
        let compiled = CompiledProgram::compile(&phone_program(), &phone_target()).unwrap();
        let mut cache = DispatchCache::new();
        for n in 0..50 {
            let row = format!("{:03}-{:03}-{:04}", 100 + n, 200 + n, 3000 + n);
            let out = compiled.transform_one(&mut cache, &row);
            assert!(out.is_transformed(), "{row} -> {out:?}");
        }
        // 50 rows, one leaf: one plan.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn dispatch_cache_rebinds_across_programs() {
        // Program A has two branches, program B one; a cache populated by A
        // must not replay A's plans (branch indices!) when handed to B.
        let a = CompiledProgram::compile(&phone_program(), &phone_target()).unwrap();
        let b_program = Program::new(vec![Branch::new(
            tokenize("734-422-8073"),
            Expr::concat(vec![StringExpr::extract(5)]),
        )]);
        let b = CompiledProgram::compile(&b_program, &tokenize("9999")).unwrap();

        let mut cache = DispatchCache::new();
        assert!(cache.is_empty());
        let via_a = a.transform_one(&mut cache, "555-111-2222");
        assert_eq!(via_a.value(), "(555) 111-2222");
        // Same leaf, different program: the cache resets and re-decides.
        let via_b = b.transform_one(&mut cache, "555-111-2222");
        assert_eq!(via_b.value(), "2222");
        // And back again.
        let via_a = a.transform_one(&mut cache, "555-111-2222");
        assert_eq!(via_a.value(), "(555) 111-2222");
    }

    #[test]
    fn strict_compile_rejects_error_diagnostics_default_records_only() {
        // Branch 1 (<D>2) is shadowed by branch 0 (<D>+): an
        // Error-severity CLX002 finding.
        let program = Program::new(vec![
            Branch::new(
                clx_pattern::parse_pattern("<D>+").unwrap(),
                Expr::concat(vec![StringExpr::const_str("000")]),
            ),
            Branch::new(
                clx_pattern::parse_pattern("<D>2").unwrap(),
                Expr::concat(vec![StringExpr::const_str("000")]),
            ),
        ]);
        let target = tokenize("123");

        // Default compilation only records diagnostics; it still accepts.
        assert!(CompiledProgram::compile(&program, &target).is_ok());

        // Strict compilation rejects, naming the finding.
        let err = CompiledProgram::compile_strict(&program, &target, None).unwrap_err();
        let CompileError::RejectedByAnalysis { findings } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("CLX002"), "{findings:?}");
        assert!(err.to_string().contains("static analysis rejected"));

        // A warnings-only program passes strict compilation.
        let warn_only = Program::new(vec![Branch::new(
            clx_pattern::parse_pattern("<D>3").unwrap(),
            Expr::concat(vec![StringExpr::extract(1)]),
        )]);
        let strict = CompiledProgram::compile_strict(
            &warn_only,
            &clx_pattern::parse_pattern("<D>+").unwrap(),
            None,
        );
        assert!(strict.is_ok());
    }

    #[test]
    fn transparency_analysis() {
        let compiled = CompiledProgram::compile(&phone_program(), &phone_target()).unwrap();
        assert!(compiled.is_fully_transparent());
        assert!(compiled.branches().iter().all(|b| b.is_transparent()));

        // 'CPT' carries alphanumerics: matching it cannot be decided from
        // the leaf.
        let opaque_pattern = Pattern::new(vec![
            Token::literal("CPT"),
            Token::base(clx_pattern::TokenClass::Digit, 3),
        ]);
        let program = Program::new(vec![Branch::new(
            opaque_pattern,
            Expr::concat(vec![StringExpr::extract(2)]),
        )]);
        let compiled = CompiledProgram::compile(&program, &tokenize("123")).unwrap();
        assert!(!compiled.is_fully_transparent());
    }

    #[test]
    fn opaque_branches_distinguish_identical_leaves() {
        // "CPT123" and "XYZ123" share the leaf <U>3<D>3; only the former
        // matches the literal-'CPT' branch. The dispatch cache must not
        // conflate them.
        let opaque_pattern = Pattern::new(vec![
            Token::literal("CPT"),
            Token::base(clx_pattern::TokenClass::Digit, 3),
        ]);
        let program = Program::new(vec![Branch::new(
            opaque_pattern,
            Expr::concat(vec![
                StringExpr::const_str("["),
                StringExpr::extract(2),
                StringExpr::const_str("]"),
            ]),
        )]);
        let compiled = CompiledProgram::compile(&program, &tokenize("[111]")).unwrap();
        let mut cache = DispatchCache::new();
        let cpt = compiled.transform_one(&mut cache, "CPT123");
        assert_eq!(
            cpt,
            RowOutcome::Transformed {
                from: "CPT123".into(),
                to: "[123]".into(),
            }
        );
        let xyz = compiled.transform_one(&mut cache, "XYZ123");
        assert_eq!(
            xyz,
            RowOutcome::Flagged {
                value: "XYZ123".into(),
            }
        );
        assert_eq!(cache.len(), 1, "one shared leaf, decided per row");
    }

    #[test]
    fn opaque_target_checked_per_row() {
        // A literal-'N/A' target is opaque; conforming detection must not
        // leak to other values with the same leaf (<U>'/'<U>).
        let target = Pattern::new(vec![Token::literal("N/A")]);
        let compiled = CompiledProgram::compile(&Program::empty(), &target).unwrap();
        assert!(!compiled.is_fully_transparent());
        let mut cache = DispatchCache::new();
        assert!(compiled.transform_one(&mut cache, "N/A").is_conforming());
        assert!(compiled.transform_one(&mut cache, "X/Y").is_flagged());
    }

    #[test]
    fn non_ascii_rows_transform_correctly() {
        // 'é' lives in a literal token; extraction must respect UTF-8
        // boundaries.
        let source = tokenize("é42");
        let program = Program::new(vec![Branch::new(
            source,
            Expr::concat(vec![StringExpr::extract(2), StringExpr::const_str("!")]),
        )]);
        let compiled = CompiledProgram::compile(&program, &tokenize("9!")).unwrap();
        let mut cache = DispatchCache::new();
        let out = compiled.transform_one(&mut cache, "é42");
        assert_eq!(out.value(), "42!");
        let again = compiled.transform_one(&mut cache, "é77");
        assert_eq!(again.value(), "77!");
    }

    #[test]
    fn invalid_extract_rejected_at_compile_time() {
        let program = Program::new(vec![Branch::new(
            tokenize("abc"),
            Expr::concat(vec![StringExpr::extract(9)]),
        )]);
        let err = CompiledProgram::compile(&program, &tokenize("x")).unwrap_err();
        assert!(matches!(err, CompileError::InvalidBranch { index: 0, .. }));
        assert!(err.to_string().contains("branch 0"));
    }

    #[test]
    fn plus_quantified_sources_use_fast_path() {
        let source = parse_pattern("<U>+'-'<D>+").unwrap();
        let program = Program::new(vec![Branch::new(
            source,
            Expr::concat(vec![
                StringExpr::const_str("["),
                StringExpr::extract_range(1, 3),
                StringExpr::const_str("]"),
            ]),
        )]);
        let compiled =
            CompiledProgram::compile(&program, &parse_pattern("'['<U>+'-'<D>+']'").unwrap())
                .unwrap();
        assert!(compiled.is_fully_transparent());
        let mut cache = DispatchCache::new();
        assert_eq!(
            compiled.transform_one(&mut cache, "CPT-00350").value(),
            "[CPT-00350]"
        );
        assert_eq!(compiled.transform_one(&mut cache, "AB-1").value(), "[AB-1]");
        assert!(compiled
            .transform_one(&mut cache, "[CPT-00350]")
            .is_conforming());
    }

    #[test]
    fn fingerprints_distinguish_programs_and_targets() {
        let p1 = phone_program();
        let mut p2 = phone_program();
        p2.branches.pop();
        let t = phone_target();
        let c1 = CompiledProgram::compile(&p1, &t).unwrap();
        let c1b = CompiledProgram::compile(&p1, &t).unwrap();
        let c2 = CompiledProgram::compile(&p2, &t).unwrap();
        let c3 = CompiledProgram::compile(&p1, &tokenize("999")).unwrap();
        assert_eq!(c1.fingerprint(), c1b.fingerprint());
        assert_ne!(c1.fingerprint(), c2.fingerprint());
        assert_ne!(c1.fingerprint(), c3.fingerprint());
    }

    #[test]
    fn decide_agrees_with_and_without_fused() {
        let fused = CompiledProgram::compile(&phone_program(), &phone_target()).unwrap();
        assert!(fused.fused_active());
        assert!(fused.fused_fallback().is_none());
        let plain = CompiledProgram::compile(&phone_program(), &phone_target())
            .unwrap()
            .without_fused();
        assert!(!plain.fused_active());
        assert_eq!(plain.fused_fallback(), Some(FusedFallback::Disabled));

        let cases = [
            ("734-422-8073", Decision::Branch(0)),
            ("(734)586-7252", Decision::Branch(1)),
            ("(734) 645-8397", Decision::Conforming),
            ("N/A", Decision::Flagged),
            ("", Decision::Flagged),
        ];
        for (value, want) in cases {
            assert_eq!(fused.decide(value), want, "fused on {value:?}");
            assert_eq!(plain.decide(value), want, "per-branch on {value:?}");
        }
    }

    #[test]
    fn wide_program_falls_back_with_recorded_reason() {
        // A 300-position pattern cannot be encoded in the automaton's bit
        // budget; the per-branch path must take over with the reason kept.
        let wide = parse_pattern("<D>300").unwrap();
        let program = Program::new(vec![Branch::new(
            wide,
            Expr::concat(vec![StringExpr::extract(1)]),
        )]);
        let compiled = CompiledProgram::compile(&program, &tokenize("123")).unwrap();
        assert!(!compiled.fused_active());
        assert!(matches!(
            compiled.fused_fallback(),
            Some(FusedFallback::WidthExceeded { required }) if required > FUSED_MAX_WIDTH
        ));
        // The fallback path still transforms correctly.
        let row = "7".repeat(300);
        let mut cache = DispatchCache::new();
        assert_eq!(compiled.transform_one(&mut cache, &row).value(), row);
        assert_eq!(compiled.decide(&row), Decision::Branch(0));
        let stats = compiled.fused_stats();
        assert_eq!(stats.fused_decisions, 0);
        assert!(stats.pike_vm_decisions > 0);
    }

    #[test]
    fn opaque_only_program_falls_back_with_recorded_reason() {
        // Opaque target, no branches: nothing for the automaton to encode.
        let target = Pattern::new(vec![Token::literal("N/A")]);
        let compiled = CompiledProgram::compile(&Program::empty(), &target).unwrap();
        assert!(!compiled.fused_active());
        assert_eq!(
            compiled.fused_fallback(),
            Some(FusedFallback::NothingTransparent)
        );
        assert_eq!(compiled.decide("N/A"), Decision::Conforming);
        assert_eq!(compiled.decide("X/Y"), Decision::Flagged);
    }

    #[test]
    fn fused_stats_tally_cold_decisions() {
        let compiled = CompiledProgram::compile(&phone_program(), &phone_target()).unwrap();
        let mut cache = DispatchCache::new();
        // Two distinct leaves, three rows: only first sight of each leaf
        // builds a plan, and the phone program's leaves are all fusable.
        for row in ["734-422-8073", "555-111-2222", "(734)586-7252"] {
            compiled.transform_one(&mut cache, row);
        }
        let stats = compiled.fused_stats();
        assert_eq!(stats.fused_decisions, 2);
        assert_eq!(stats.pike_vm_decisions, 0);

        let plain = CompiledProgram::compile(&phone_program(), &phone_target())
            .unwrap()
            .without_fused();
        let mut cache = DispatchCache::new();
        plain.transform_one(&mut cache, "734-422-8073");
        let stats = plain.fused_stats();
        assert_eq!(stats.fused_decisions, 0);
        assert_eq!(stats.pike_vm_decisions, 1);
    }

    #[test]
    fn branch_decisions_derive_splits_from_the_accepting_path() {
        let derived = CompiledProgram::compile(&phone_program(), &phone_target()).unwrap();
        let split = CompiledProgram::compile(&phone_program(), &phone_target())
            .unwrap()
            .without_derived_splits();
        let mut derived_cache = DispatchCache::new();
        let mut split_cache = DispatchCache::new();
        let rows = [
            "734-422-8073",
            "555-111-2222",
            "(734)586-7252",
            "(734) 645-8397",
            "N/A",
        ];
        for row in rows {
            assert_eq!(
                derived.transform_one(&mut derived_cache, row),
                split.transform_one(&mut split_cache, row),
                "derived and split boundaries must agree on {row:?}"
            );
        }
        // Three distinct branch-winning leaves were decided once each
        // ("734-..." and "555-..." share one); the conforming and flagged
        // leaves derive nothing.
        let stats = derived.fused_stats();
        assert_eq!(stats.split_derived, 2);
        assert_eq!(stats.split_fallbacks, 0);
        assert_eq!(derived.split_fallback(), None);

        // With derived splits off, the same branch decisions are recorded
        // as split fallbacks instead.
        let stats = split.fused_stats();
        assert_eq!(stats.split_derived, 0);
        assert_eq!(stats.split_fallbacks, 2);
        assert_eq!(split.split_fallback(), Some(FusedFallback::SplitUnderived));
    }
}
