//! A bounded LRU cache of compiled programs.
//!
//! Serving layers re-apply the same synthesized programs to many columns
//! (or many requests); compiling on every call would redo validation,
//! regex construction and transparency analysis. [`ProgramCache`] keys
//! compilations by the structural fingerprint of `(program, target)` and
//! hands out shared `Arc`s, evicting the least-recently-used entry once
//! `capacity` distinct programs are resident.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use clx_pattern::Pattern;
use clx_telemetry::{MetricSink, Span};
use clx_unifi::Program;

use crate::compiled::{fingerprint, CompiledProgram};
use crate::error::CompileError;

struct CacheEntry {
    // Key material kept to disambiguate fingerprint collisions.
    program: Program,
    target: Pattern,
    compiled: Arc<CompiledProgram>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, CacheEntry>,
    tick: u64,
    stats: ProgramCacheStats,
}

/// Lifetime counters of a [`ProgramCache`], readable via
/// [`ProgramCache::stats`] with or without a telemetry sink attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Entries dropped to enforce the capacity bound.
    pub evictions: u64,
}

impl ProgramCacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`; 0 before any
    /// lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, bounded LRU cache of [`CompiledProgram`]s.
pub struct ProgramCache {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Optional metrics destination; `None` keeps every lookup sink-free.
    telemetry: Option<Arc<dyn MetricSink>>,
}

// A single cache instance is meant to be shared by every request handler.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProgramCache>();
};

impl ProgramCache {
    /// A cache holding at most `capacity` compiled programs (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        ProgramCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            telemetry: None,
        }
    }

    /// A cache that additionally publishes `engine.program_cache.*`
    /// hit/miss/eviction counters and a compile-latency histogram to
    /// `sink`. [`ProgramCache::stats`] works either way.
    pub fn with_telemetry(capacity: usize, sink: Arc<dyn MetricSink>) -> Self {
        ProgramCache {
            telemetry: Some(sink),
            ..ProgramCache::new(capacity)
        }
    }

    /// The compiled form of `(program, target)`: cached if resident,
    /// compiled (and cached) otherwise.
    ///
    /// Compilation happens *outside* the cache lock, so concurrent lookups
    /// of resident programs never wait behind a miss; two threads missing on
    /// the same program may both compile it, and the first insertion wins.
    pub fn get_or_compile(
        &self,
        program: &Program,
        target: &Pattern,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        let key = fingerprint(program, target);
        if let Some(compiled) = self.lookup(key, program, target) {
            return Ok(compiled);
        }
        let compiled = {
            // Times the compilation (including failed ones) when a sink is
            // attached; inert — no clock read — otherwise. The nested
            // `engine.fused.build_ns` span and `engine.fused.fallbacks`
            // counter flow to the same sink.
            let _span = Span::start(self.telemetry.as_ref(), "engine.program_cache.compile_ns");
            Arc::new(CompiledProgram::compile_observed(
                program,
                target,
                self.telemetry.as_ref(),
            )?)
        };

        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        // A racing thread may have inserted the same compilation meanwhile;
        // serve the resident one so every caller shares a single Arc.
        if let Some(entry) = inner.entries.get_mut(&key) {
            if entry.program == *program && entry.target == *target {
                entry.last_used = tick;
                return Ok(Arc::clone(&entry.compiled));
            }
            // A mismatching entry is a fingerprint collision: replace it.
        }
        inner.entries.insert(
            key,
            CacheEntry {
                program: program.clone(),
                target: target.clone(),
                compiled: Arc::clone(&compiled),
                last_used: tick,
            },
        );
        let mut evicted = 0u64;
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            inner.entries.remove(&oldest);
            evicted += 1;
        }
        inner.stats.evictions += evicted;
        drop(inner);
        if evicted > 0 {
            if let Some(sink) = &self.telemetry {
                sink.counter("engine.program_cache.evictions", evicted);
            }
        }
        Ok(compiled)
    }

    /// Hit path: touch and return the resident compilation, counting the
    /// lookup as a hit or miss.
    fn lookup(
        &self,
        key: u64,
        program: &Program,
        target: &Pattern,
    ) -> Option<Arc<CompiledProgram>> {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let hit = match inner.entries.get_mut(&key) {
            Some(entry) if entry.program == *program && entry.target == *target => {
                entry.last_used = tick;
                Some(Arc::clone(&entry.compiled))
            }
            _ => None,
        };
        if hit.is_some() {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        drop(inner);
        if let Some(sink) = &self.telemetry {
            if hit.is_some() {
                sink.counter("engine.program_cache.hits", 1);
            } else {
                sink.counter("engine.program_cache.misses", 1);
            }
        }
        hit
    }

    /// Maximum number of resident programs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident programs.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("program cache poisoned")
            .entries
            .len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.stats().hits
    }

    /// Lookups that required compilation.
    pub fn misses(&self) -> u64 {
        self.stats().misses
    }

    /// Entries dropped to enforce the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.stats().evictions
    }

    /// One consistent read of the lifetime hit/miss/eviction counters —
    /// available with or without a telemetry sink attached.
    pub fn stats(&self) -> ProgramCacheStats {
        self.inner.lock().expect("program cache poisoned").stats
    }

    /// Drop every cached program (counters are kept).
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("program cache poisoned")
            .entries
            .clear();
    }
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &stats)
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;
    use clx_unifi::{Branch, Expr, StringExpr};

    fn program(constant: &str) -> Program {
        Program::new(vec![Branch::new(
            tokenize("123"),
            Expr::concat(vec![
                StringExpr::const_str(constant.to_string()),
                StringExpr::extract(1),
            ]),
        )])
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new(4);
        let target = tokenize("#1");
        let a = cache.get_or_compile(&program("#"), &target).unwrap();
        let b = cache.get_or_compile(&program("#"), &target).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same compilation object served");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ProgramCache::new(2);
        let target = tokenize("#1");
        cache.get_or_compile(&program("a"), &target).unwrap();
        cache.get_or_compile(&program("b"), &target).unwrap();
        // Touch "a" so "b" becomes the LRU entry.
        cache.get_or_compile(&program("a"), &target).unwrap();
        cache.get_or_compile(&program("c"), &target).unwrap();
        assert_eq!(cache.len(), 2);
        // "a" survives (hit); "b" was evicted (miss).
        let hits_before = cache.hits();
        cache.get_or_compile(&program("a"), &target).unwrap();
        assert_eq!(cache.hits(), hits_before + 1);
        let misses_before = cache.misses();
        cache.get_or_compile(&program("b"), &target).unwrap();
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn different_targets_are_different_entries() {
        let cache = ProgramCache::new(4);
        let p = program("x");
        cache.get_or_compile(&p, &tokenize("#1")).unwrap();
        cache.get_or_compile(&p, &tokenize("#22")).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn compile_errors_propagate_and_are_not_cached() {
        let cache = ProgramCache::new(4);
        let bad = Program::new(vec![Branch::new(
            tokenize("abc"),
            Expr::concat(vec![StringExpr::extract(5)]),
        )]);
        assert!(cache.get_or_compile(&bad, &tokenize("x")).is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn clear_and_introspection() {
        let cache = ProgramCache::new(3);
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 3);
        cache
            .get_or_compile(&program("x"), &tokenize("#1"))
            .unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(format!("{cache:?}").contains("capacity"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let cache = ProgramCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache
            .get_or_compile(&program("x"), &tokenize("#1"))
            .unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_count_hits_misses_and_evictions() {
        let cache = ProgramCache::new(1);
        let target = tokenize("#1");
        assert_eq!(cache.stats(), ProgramCacheStats::default());
        assert_eq!(cache.stats().hit_rate(), 0.0);

        cache.get_or_compile(&program("a"), &target).unwrap(); // miss
        cache.get_or_compile(&program("a"), &target).unwrap(); // hit
        cache.get_or_compile(&program("b"), &target).unwrap(); // miss, evicts "a"
        cache.get_or_compile(&program("c"), &target).unwrap(); // miss, evicts "b"

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(stats.hit_rate(), 0.25);
    }

    #[test]
    fn telemetry_sink_sees_cache_traffic() {
        let sink = clx_telemetry::InMemorySink::shared();
        let cache = ProgramCache::with_telemetry(1, sink.clone());
        let target = tokenize("#1");
        cache.get_or_compile(&program("a"), &target).unwrap();
        cache.get_or_compile(&program("a"), &target).unwrap();
        cache.get_or_compile(&program("b"), &target).unwrap();

        let snap = clx_telemetry::MetricSink::snapshot(&*sink);
        assert_eq!(snap.counter("engine.program_cache.hits"), Some(1));
        assert_eq!(snap.counter("engine.program_cache.misses"), Some(2));
        assert_eq!(snap.counter("engine.program_cache.evictions"), Some(1));
        let compile = snap
            .histogram("engine.program_cache.compile_ns")
            .expect("compile latency recorded");
        assert_eq!(compile.count, 2);
    }

    /// The repair-round-trip staleness scenario: a repair that lands back
    /// on a previously-compiled program is served the *same* `Arc` from
    /// the cache (same fingerprint, cache hit) — but any dispatch state
    /// decided under that instance before the column's interner stepped
    /// generations must still be invalidated. The program-instance check
    /// alone cannot catch this (the instance never changed); the dense
    /// tier's `(source, generation)` binding must.
    #[test]
    fn repair_round_trip_cache_hit_does_not_resurrect_stale_plans() {
        use crate::dispatch::{DispatchCache, LeafPlan, Step};

        let cache = ProgramCache::new(4);
        let target = tokenize("#1");
        let mut p = program("#");
        let original_expr = Expr::concat(vec![
            StringExpr::const_str("#".to_string()),
            StringExpr::extract(1),
        ]);
        let compiled = cache.get_or_compile(&p, &target).unwrap();

        // A stream decided leaf-id 0 under this instance at generation 0;
        // the sentinel plan stands in for that decision.
        let poisoned = || LeafPlan {
            steps: vec![Step::CheckTarget, Step::CheckTarget, Step::CheckTarget],
        };
        let mut dispatch = DispatchCache::new();
        let plan = dispatch.plan_for_leaf_id(compiled.instance(), 7, 0, 0, poisoned);
        assert_eq!(plan.steps.len(), 3);

        // Repair away and back: the final program is structurally identical
        // to the first compilation, so the cache serves the resident Arc.
        assert!(p.repair(
            &tokenize("123"),
            Expr::concat(vec![StringExpr::const_str("!".to_string())]),
        ));
        cache.get_or_compile(&p, &target).unwrap();
        assert!(p.repair(&tokenize("123"), original_expr));
        let hits_before = cache.hits();
        let again = cache.get_or_compile(&p, &target).unwrap();
        assert_eq!(cache.hits(), hits_before + 1, "identical repair is a hit");
        assert!(Arc::ptr_eq(&compiled, &again), "same compilation object");

        // Meanwhile the interner evicted (generation 0 → 1), so leaf-id 0
        // may now name a different leaf. Same program instance — but the
        // poisoned plan must not be served for the recycled id.
        let plan = dispatch.plan_for_leaf_id(again.instance(), 7, 1, 0, || LeafPlan {
            steps: vec![Step::Conforming],
        });
        assert_eq!(plan.steps.len(), 1, "stale plan not served after eviction");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ProgramCache::new(2));
        let target = tokenize("#1");
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let target = target.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let p = program(if (t + i) % 2 == 0 { "x" } else { "y" });
                        cache.get_or_compile(&p, &target).unwrap();
                    }
                });
            }
        });
        assert!(cache.len() <= 2);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }
}
