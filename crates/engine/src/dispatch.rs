//! Leaf-signature dispatch: the per-worker cache that lets most rows skip
//! full pattern matching.
//!
//! # Why this is sound
//!
//! [`clx_pattern::tokenize`] maps every value to its *leaf pattern*: maximal
//! runs of digit/lower/upper characters become class tokens recording the
//! run length, and every other character is kept verbatim in a literal
//! token. Matching a value against a *transparent* pattern — one whose
//! literal tokens contain no ASCII-alphanumeric characters — only ever asks
//! two kinds of questions about the value:
//!
//! 1. *is the character at position `i` in base class `C`?* — determined by
//!    the leaf: class-run characters carry their most-specific class (`<D>`,
//!    `<L>`, `<U>`), which decides membership in every base class of the
//!    lattice, and literal-run characters are stored verbatim, which decides
//!    their (only) possible base membership, `<AN>` ∋ `-`/`_`;
//! 2. *is the character at position `i` exactly `c`?* (literal tokens) —
//!    `c` is non-alphanumeric, so position `i` can only hold a literal-run
//!    character, which the leaf stores verbatim.
//!
//! Two values with the same leaf therefore give the same answer to every
//! question, so they match the same transparent patterns *and* split at the
//! same character boundaries. The executor exploits this by deciding each
//! distinct leaf once — which branch fires (or that the row conforms or is
//! flagged), and where the winning branch's tokens begin and end — and
//! replaying that decision on every further row with the same leaf as a few
//! slice copies.
//!
//! Patterns that are *not* transparent (a literal such as `'CPT'` or `'N/A'`
//! can distinguish values with identical leaves) are never decided from the
//! leaf; the plan records a per-row check for them instead.
//!
//! ## Cached leaves from the column data plane
//!
//! The argument above is a statement about leaves, not about *when* the
//! leaf was computed. `clx-column`'s [`Column`](clx_column::Column) caches
//! each distinct value's leaf at construction by calling the very same
//! [`clx_pattern::tokenize`] — `tokenize_detailed` is tested to agree with
//! `tokenize` token-for-token — so a cached leaf handed to
//! [`crate::CompiledProgram::transform_one_cached`] is exactly the leaf
//! `transform_one` would have derived itself, and every conclusion drawn
//! from it (which branch fires, where the splits fall) carries over
//! unchanged. If the tokenizer's class rules (`precise_class`, the
//! ASCII-only `contains_char`) ever change, the column cache and the
//! executor move together because both delegate to `clx-pattern`; what
//! would break the argument is caching leaves produced by *different*
//! rules, which is why `transform_one_cached` debug-asserts the leaf
//! against a fresh tokenization.
//!
//! ## Integer leaf-ids
//!
//! The same reasoning extends from cached leaves to cached leaf *ids*: a
//! `clx-column` interner assigns one dense integer per distinct leaf
//! pattern, so "two values share a leaf" becomes "two values carry the same
//! leaf-id" — an integer comparison. [`DispatchCache`] therefore keeps a
//! second, dense tier indexed by leaf-id; the column executors look plans
//! up by array index and never hash a `Pattern` at all. The id is only
//! meaningful within the interner that assigned it, so the dense tier is
//! bound to the interner's process-unique instance id and resets when ids
//! from a different id space appear.
//!
//! ## The full cascade
//!
//! Altogether a row's decision falls through four tiers, most-specific
//! first: the dense leaf-id array (columnar paths), this cache's hashed
//! leaf map (`&[String]` paths), and — on a genuine first sight — the
//! fused decision automaton (see the `fused` module), which classifies the
//! new leaf against the target and every transparent branch in one pass
//! *and* derives the winning branch's split boundaries from that pass's
//! accepting path — single-pass first sight, no second `Pattern::split`
//! run over the tokens — with the per-branch Pike-VM loop as the recorded
//! per-program fallback and the per-value check for opaque patterns.
//! Tiers 1 and 2 replay what tiers 3 and 4 decided.
//!
//! ## Rebinding without a reset
//!
//! Handing the cache to a *different* program normally clears both plan
//! tiers ([`DispatchCache::rebind`]): plans embed branch indices and
//! split boundaries of the program that built them. But a program *swap*
//! mid-stream ([`crate::ColumnStream::swap_program`]) usually changes only
//! a few branches, and a [`crate::ProgramDelta`] can prove, per leaf, that
//! the old plan's every step is still valid under the new program — same
//! target verdict, identical branches at identical indices, and no changed
//! branch able to match the leaf. For those leaves
//! [`DispatchCache::rebind_retaining`] re-binds the cache to the new
//! program instance while keeping the proven plans in place, dense tier
//! included: only affected leaf-ids lose their slot and rebuild (through
//! the new program's fused automaton, built once at compile time) on next
//! sight. The interner binding (`source`) is untouched — the id space did
//! not move, only the program did.

use std::collections::HashMap;
use std::sync::Arc;

use clx_pattern::Pattern;

/// One decision step of a [`LeafPlan`], replayed per row in program order.
///
/// A plan is the prefix of the sequential decision sequence (target first,
/// then each branch) that could not be resolved from the leaf alone,
/// terminated by the first leaf-resolved outcome. Falling off the end of
/// the plan means no pattern matched: the row is flagged.
#[derive(Debug)]
pub(crate) enum Step {
    /// The target pattern matches every row with this leaf: conforming.
    Conforming,
    /// Branch `branch` matches every row with this leaf; rewrite the row
    /// using the precomputed token boundaries.
    Apply {
        /// Index of the winning branch.
        branch: usize,
        /// Token boundaries shared by every row with this leaf.
        split: Arc<SplitPlan>,
    },
    /// The target pattern is opaque; test it against the concrete row.
    CheckTarget,
    /// Branch `branch` is opaque; test it against the concrete row.
    CheckBranch {
        /// Index of the branch to test.
        branch: usize,
    },
}

/// The decision sequence for one leaf pattern.
#[derive(Debug)]
pub(crate) struct LeafPlan {
    pub(crate) steps: Vec<Step>,
}

/// Precomputed per-token character boundaries for a (leaf, branch) pair:
/// `ranges[i]` is the half-open character span of source token `i + 1`.
#[derive(Debug)]
pub(crate) struct SplitPlan {
    pub(crate) ranges: Vec<(usize, usize)>,
}

/// The per-worker dispatch cache mapping leaf patterns to their plans.
///
/// Each executor thread owns one cache; real columns have a handful of
/// distinct leaves, so the state stays tiny and never needs synchronization.
/// The cache has two tiers:
///
/// * the **hashed path** — a `Pattern`-keyed map, used by the `&[String]`
///   executors that derive each row's leaf themselves; and
/// * the **dense path** — a plain `Vec` indexed by the integer *leaf-id* a
///   [`clx_column::ColumnInterner`] hands out per distinct leaf pattern.
///   The column executors ([`crate::CompiledProgram::execute_column`],
///   [`crate::StreamSession::push_column_chunk`]) dispatch through it, so a
///   plan lookup on the column path is an array index: no `Pattern` is ever
///   hashed or compared.
///
/// Plans are only meaningful for the program that built them, so the cache
/// remembers that program's process-unique instance id and transparently
/// resets itself when it is handed to a different compiled program — a
/// stale plan can never be replayed against the wrong branch list. The
/// dense tier is additionally bound to the id space that handed out its
/// leaf-ids: the interner **instance**
/// ([`clx_column::Column::interner_id`]) *and* that interner's eviction
/// [`generation`](clx_column::ColumnInterner::generation). A bounded
/// interner ([`clx_column::StreamBudget`]) recycles leaf-ids when it
/// evicts, bumping its generation; the generation binding guarantees a
/// recycled leaf-id is never served the evicted leaf's plan — the tier
/// resets instead of aliasing. Ids from a different interner instance
/// likewise clear the dense slots.
///
/// The hashed tier is capped (at 2^16 plans by default): an adversarial
/// `&[String]` stream in which every row carries a fresh leaf would
/// otherwise grow the map without bound. A miss on a full tier flushes and
/// restarts it — identical outcomes either way, and leaves arriving after
/// a junk burst are cached again within one flush cycle.
#[derive(Debug)]
pub struct DispatchCache {
    program: Option<u64>,
    plans: HashMap<Pattern, Arc<LeafPlan>>,
    /// Upper bound on `plans` entries (tests shrink it to exercise the cap).
    hashed_cap: usize,
    /// The id space binding of the dense tier: the interner instance whose
    /// leaf-ids index `dense`, plus that interner's eviction generation.
    source: Option<(u64, u64)>,
    /// Leaf-id -> plan; the column-path fast tier.
    dense: Vec<Option<Arc<LeafPlan>>>,
    /// Number of `Some` slots in `dense`.
    dense_decided: usize,
    /// Lifetime hit/miss tallies per tier; survives rebinds and resets.
    stats: DispatchStats,
}

/// Lifetime hit/miss counters for the two [`DispatchCache`] tiers.
///
/// Plain `u64` fields bumped inline (never atomics — each cache is
/// thread-owned), cumulative across program rebinds and dense-tier
/// resets, so stream-long ratios survive eviction generations. A *hit*
/// replayed an existing plan; a *miss* ran the plan builder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Dense-tier (leaf-id indexed) lookups served from the cache.
    pub dense_hits: u64,
    /// Dense-tier lookups that had to build a plan.
    pub dense_misses: u64,
    /// Hashed-tier (`Pattern`-keyed) lookups served from the cache.
    pub hashed_hits: u64,
    /// Hashed-tier lookups that had to build a plan.
    pub hashed_misses: u64,
}

impl DispatchStats {
    /// Total lookups across both tiers.
    pub fn lookups(&self) -> u64 {
        self.dense_hits + self.dense_misses + self.hashed_hits + self.hashed_misses
    }

    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.dense_hits + self.hashed_hits
    }
}

/// Default bound on the hashed (`Pattern`-keyed) tier: far above any real
/// column's leaf diversity, small enough that adversarial all-new-leaf
/// streams stay bounded.
const HASHED_PLAN_CAP: usize = 1 << 16;

impl Default for DispatchCache {
    fn default() -> Self {
        DispatchCache {
            program: None,
            plans: HashMap::new(),
            hashed_cap: HASHED_PLAN_CAP,
            source: None,
            dense: Vec::new(),
            dense_decided: 0,
            stats: DispatchStats::default(),
        }
    }
}

impl DispatchCache {
    /// An empty cache.
    pub fn new() -> Self {
        DispatchCache::default()
    }

    /// Number of distinct leaf patterns decided via the hashed
    /// (`Pattern`-keyed) path.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Number of distinct leaf-ids decided via the dense (integer-indexed)
    /// path.
    pub fn dense_len(&self) -> usize {
        self.dense_decided
    }

    /// `true` if no leaf has been decided yet on either path.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty() && self.dense_decided == 0
    }

    /// Lifetime per-tier hit/miss counters. Cumulative over the cache's
    /// whole life — rebinding to another program or resetting the dense
    /// tier clears the *plans*, never the tallies.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }

    /// Reset everything if the cache is handed to a different compiled
    /// program.
    fn rebind(&mut self, instance: u64) {
        if self.program != Some(instance) {
            self.plans.clear();
            self.dense.clear();
            self.dense_decided = 0;
            self.source = None;
            self.program = Some(instance);
        }
    }

    /// Re-bind the cache to program `new_instance` keeping every plan the
    /// caller can prove still valid — the mid-stream program-swap path
    /// (see "Rebinding without a reset" in the module docs).
    ///
    /// `retain_hashed` is asked once per hashed-tier leaf pattern and
    /// `retain_dense` once per decided dense slot (by leaf-id); answering
    /// `true` keeps the plan for the new program, `false` drops it so the
    /// next sight rebuilds it. The interner binding and the lifetime
    /// hit/miss tallies are preserved either way. Returns
    /// `(dense_retained, dense_dropped)`.
    ///
    /// Soundness is the caller's obligation: retain a plan only when every
    /// step in it replays identically under the new program —
    /// [`crate::ProgramDelta::affects_leaf`] answering `false` is exactly
    /// that proof.
    pub(crate) fn rebind_retaining(
        &mut self,
        new_instance: u64,
        retain_hashed: impl Fn(&Pattern) -> bool,
        retain_dense: impl Fn(u32) -> bool,
    ) -> (usize, usize) {
        if self.program == Some(new_instance) {
            return (self.dense_decided, 0);
        }
        self.program = Some(new_instance);
        self.plans.retain(|leaf, _| retain_hashed(leaf));
        let mut retained = 0;
        let mut dropped = 0;
        for (leaf_id, slot) in self.dense.iter_mut().enumerate() {
            if slot.is_none() {
                continue;
            }
            if retain_dense(leaf_id as u32) {
                retained += 1;
            } else {
                *slot = None;
                self.dense_decided -= 1;
                dropped += 1;
            }
        }
        (retained, dropped)
    }

    /// The plan for `leaf` under the program instance identified by
    /// `instance`, building it with `build` on first sight. The leaf is
    /// borrowed for the (common) hit path and only cloned into the map when
    /// a plan is decided for the first time.
    pub(crate) fn plan_for(
        &mut self,
        instance: u64,
        leaf: &Pattern,
        build: impl FnOnce(&Pattern) -> LeafPlan,
    ) -> Arc<LeafPlan> {
        self.rebind(instance);
        if let Some(plan) = self.plans.get(leaf) {
            self.stats.hashed_hits += 1;
            return Arc::clone(plan);
        }
        self.stats.hashed_misses += 1;
        let plan = Arc::new(build(leaf));
        // Bounded retention: a miss on a full map flushes the tier and
        // restarts it. Adversarial all-new-leaf streams stay bounded, and
        // — unlike a fill-once cap — legitimate leaves arriving *after* a
        // junk burst get cached again within one flush cycle.
        if self.plans.len() >= self.hashed_cap {
            self.plans.clear();
        }
        self.plans.insert(leaf.clone(), Arc::clone(&plan));
        plan
    }

    /// The plan for the leaf with dense id `leaf_id` (handed out by the
    /// interner instance `source` at eviction generation
    /// `source_generation`) under program `instance`, building it on first
    /// sight. Pure array indexing on the hit path — the leaf pattern
    /// itself is never hashed or compared.
    ///
    /// A generation change (the interner evicted, possibly recycling
    /// leaf-ids) resets the dense tier, so a stale plan is never served
    /// under a reused id.
    pub(crate) fn plan_for_leaf_id(
        &mut self,
        instance: u64,
        source: u64,
        source_generation: u64,
        leaf_id: u32,
        build: impl FnOnce() -> LeafPlan,
    ) -> Arc<LeafPlan> {
        self.rebind(instance);
        if self.source != Some((source, source_generation)) {
            self.dense.clear();
            self.dense_decided = 0;
            self.source = Some((source, source_generation));
        }
        let slot = leaf_id as usize;
        if slot >= self.dense.len() {
            self.dense.resize(slot + 1, None);
        }
        if let Some(plan) = &self.dense[slot] {
            self.stats.dense_hits += 1;
            return Arc::clone(plan);
        }
        self.stats.dense_misses += 1;
        let plan = Arc::new(build());
        self.dense[slot] = Some(Arc::clone(&plan));
        self.dense_decided += 1;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    /// A sentinel plan recognizable by its step shape: serving it after its
    /// id space moved would be the eviction-aliasing bug this module's
    /// generation binding exists to prevent.
    fn poisoned() -> LeafPlan {
        LeafPlan {
            steps: vec![Step::CheckTarget, Step::CheckTarget, Step::CheckTarget],
        }
    }

    fn benign() -> LeafPlan {
        LeafPlan {
            steps: vec![Step::Conforming],
        }
    }

    fn is_poisoned(plan: &LeafPlan) -> bool {
        plan.steps.len() == 3
    }

    #[test]
    fn generation_bump_invalidates_dense_entries() {
        let mut cache = DispatchCache::new();
        // Decide leaf-id 0 under (source 7, generation 0) with the sentinel.
        let plan = cache.plan_for_leaf_id(1, 7, 0, 0, poisoned);
        assert!(is_poisoned(&plan));
        assert_eq!(cache.dense_len(), 1);
        // Same generation: served from the dense tier, builder not run.
        let plan = cache.plan_for_leaf_id(1, 7, 0, 0, || panic!("must be cached"));
        assert!(is_poisoned(&plan));
        // The interner evicted (generation bumped, leaf-id 0 possibly
        // recycled for a different leaf): the stale sentinel must never be
        // served — the tier resets and the builder runs again.
        let plan = cache.plan_for_leaf_id(1, 7, 1, 0, benign);
        assert!(!is_poisoned(&plan));
        assert_eq!(cache.dense_len(), 1);
        // The poisoned plan is gone for good, even if generation 0 ids
        // were ever replayed.
        let plan = cache.plan_for_leaf_id(1, 7, 0, 0, benign);
        assert!(!is_poisoned(&plan));
    }

    #[test]
    fn interner_switch_still_resets_the_dense_tier() {
        let mut cache = DispatchCache::new();
        cache.plan_for_leaf_id(1, 7, 0, 0, poisoned);
        let plan = cache.plan_for_leaf_id(1, 8, 0, 0, benign);
        assert!(!is_poisoned(&plan));
        assert_eq!(cache.dense_len(), 1);
    }

    #[test]
    fn hashed_tier_is_capped_and_recovers_after_a_flush() {
        let mut cache = DispatchCache::new();
        cache.hashed_cap = 2;
        let leaves = [tokenize("a"), tokenize("ab"), tokenize("abc")];
        for leaf in &leaves {
            cache.plan_for(1, leaf, |_| benign());
        }
        // The third insert flushed the full tier and restarted it: the map
        // never exceeds the cap, and caching keeps working afterwards.
        assert_eq!(cache.len(), 1);
        cache.plan_for(1, &leaves[2], |_| panic!("must be cached post-flush"));
        // A pre-flush leaf was dropped and is simply rebuilt on next sight.
        let mut rebuilt = false;
        cache.plan_for(1, &leaves[0], |_| {
            rebuilt = true;
            benign()
        });
        assert!(rebuilt);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn stats_survive_rebinds_and_resets() {
        let mut cache = DispatchCache::new();
        assert_eq!(cache.stats(), DispatchStats::default());

        cache.plan_for_leaf_id(1, 7, 0, 0, benign); // dense miss
        cache.plan_for_leaf_id(1, 7, 0, 0, benign); // dense hit
        cache.plan_for(1, &tokenize("a"), |_| benign()); // hashed miss
        cache.plan_for(1, &tokenize("a"), |_| benign()); // hashed hit

        // Generation bump resets the dense *tier*, not the tallies; a new
        // program instance resets every plan, still not the tallies.
        cache.plan_for_leaf_id(1, 7, 1, 0, benign); // dense miss (reset)
        cache.plan_for(2, &tokenize("a"), |_| benign()); // hashed miss (rebind)

        let stats = cache.stats();
        assert_eq!(stats.dense_hits, 1);
        assert_eq!(stats.dense_misses, 2);
        assert_eq!(stats.hashed_hits, 1);
        assert_eq!(stats.hashed_misses, 2);
        assert_eq!(stats.lookups(), 6);
        assert_eq!(stats.hits(), 2);
    }
}
