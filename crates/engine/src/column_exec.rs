//! Batch execution over the shared column data plane.
//!
//! [`CompiledProgram::execute`] tokenizes every row to dispatch it; a
//! [`Column`] already carries each distinct value's leaf signature, and its
//! shared row map says where every duplicate lives. Executing a column
//! therefore needs exactly one *decision* per distinct value — reusing the
//! cached leaf for dispatch, never re-tokenizing — and the resulting
//! [`BatchReport`] is columnar: it keeps the distinct decisions plus a
//! reference-counted clone of the column's row map, so nothing is cloned
//! per duplicate row.
//!
//! On duplicate-heavy columns (the common real-world case) this makes the
//! whole batch run — pattern matching *and* reporting — O(distinct).

use clx_column::Column;

use crate::compiled::CompiledProgram;
use crate::dispatch::DispatchCache;
use crate::report::{BatchReport, RowOutcome};

impl CompiledProgram {
    /// Execute the program over a [`Column`], transforming each *distinct*
    /// value exactly once via its cached leaf signature. The report shares
    /// the column's row map instead of fanning outcomes out per row.
    ///
    /// The report is row-for-row identical to
    /// [`CompiledProgram::execute`] over the same rows: a program is a pure
    /// function of the row value, so duplicates share one outcome.
    pub fn execute_column(&self, column: &Column) -> BatchReport {
        let mut cache = DispatchCache::new();
        self.execute_column_pooled(column, &mut cache)
    }

    /// [`CompiledProgram::execute_column`] reusing a caller-owned dispatch
    /// cache across calls.
    ///
    /// Dispatch runs on the cache's **dense leaf-id tier**: every distinct
    /// value carries the integer leaf-id its building interner assigned
    /// ([`clx_column::DistinctValue::leaf_id`]), so a plan lookup is an
    /// array index — no `Pattern` is hashed or compared anywhere on this
    /// path.
    ///
    /// Because leaf-ids are only meaningful within one id space, the dense
    /// tier carries over between calls only for columns sharing an
    /// [`interner_id`](clx_column::Column::interner_id) — re-executing the
    /// same column (or its clones). Handing in a column from a different
    /// interner resets the tier and re-decides its leaves; for cross-chunk
    /// reuse over a *stream* of data, intern the chunks through one
    /// persistent interner and use
    /// [`StreamSession::push_column_chunk`](crate::StreamSession::push_column_chunk)
    /// or [`ColumnStream`](crate::ColumnStream) instead.
    pub fn execute_column_pooled(&self, column: &Column, cache: &mut DispatchCache) -> BatchReport {
        // One decision per distinct value, dispatched by dense leaf-id.
        let decided: Vec<RowOutcome> = column
            .distinct_values()
            .map(|v| {
                self.transform_one_by_leaf_id(
                    cache,
                    column.interner_id(),
                    column.interner_generation(),
                    v.leaf_id(),
                    v.text(),
                    v.leaf(),
                )
            })
            .collect();
        BatchReport::columnar(self.target().clone(), decided, column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;
    use clx_unifi::{Branch, Expr, Program, StringExpr};

    fn compiled() -> CompiledProgram {
        let program = Program::new(vec![Branch::new(
            tokenize("734.236.3466"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )]);
        CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap()
    }

    fn duplicate_heavy_rows(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| match i % 4 {
                0 | 1 => format!("{:03}.{:03}.{:04}", 100 + i % 5, 200 + i % 5, 3000 + i % 5),
                2 => format!("{:03}-{:03}-{:04}", 100 + i % 5, 200 + i % 5, 3000 + i % 5),
                _ => "N/A".to_string(),
            })
            .collect()
    }

    #[test]
    fn column_execution_equals_row_execution() {
        let program = compiled();
        let rows = duplicate_heavy_rows(1_000);
        let column = Column::from_rows(rows.clone());
        assert!(column.distinct_count() < rows.len() / 10);

        let by_rows = program.execute(&rows);
        let by_column = program.execute_column(&column);
        assert!(by_column.is_columnar());
        assert_eq!(
            by_rows.iter_rows().collect::<Vec<_>>(),
            by_column.iter_rows().collect::<Vec<_>>()
        );
        assert_eq!(by_rows.stats, by_column.stats);
        // The columnar report stores only the distinct decisions.
        assert_eq!(by_column.outcomes().len(), column.distinct_count());
        assert_eq!(by_rows.outcomes().len(), rows.len());
    }

    #[test]
    fn empty_column_reports_empty() {
        let report = compiled().execute_column(&Column::default());
        assert!(report.is_empty());
        assert_eq!(report.chunk_count, 0);
    }

    #[test]
    fn column_dispatch_is_dense_only() {
        // The column path must never touch the hashed (Pattern-keyed) tier
        // of the dispatch cache: every plan is decided and replayed through
        // the dense leaf-id index.
        let program = compiled();
        let column = Column::from_rows(duplicate_heavy_rows(500));
        let mut cache = DispatchCache::new();
        let report = program.execute_column_pooled(&column, &mut cache);
        assert_eq!(report.len(), 500);
        assert_eq!(cache.len(), 0, "no Pattern was hashed on the column path");
        assert_eq!(cache.dense_len(), column.leaf_count());
        assert!(cache.dense_len() > 0);

        // A second column from a different interner resets the dense tier
        // instead of aliasing its ids.
        let other = Column::from_values(&["N/A"]);
        assert_ne!(other.interner_id(), column.interner_id());
        program.execute_column_pooled(&other, &mut cache);
        assert_eq!(cache.dense_len(), other.leaf_count());
    }

    #[test]
    fn outcomes_fan_out_to_duplicate_rows() {
        let program = compiled();
        let column = Column::from_values(&["111.222.3333", "N/A", "111.222.3333", "111.222.3333"]);
        let report = program.execute_column(&column);
        assert_eq!(report.transformed_count(), 3);
        assert_eq!(report.flagged_count(), 1);
        assert_eq!(
            report.values(),
            vec!["111-222-3333", "N/A", "111-222-3333", "111-222-3333"]
        );
    }
}
