//! Compilation errors.

use std::fmt;

use clx_unifi::EvalError;

/// Why a UniFi program could not be compiled for batch execution.
///
/// Everything here indicates an ill-formed *program* (a synthesizer bug or a
/// hand-built program), never ill-formed data: data problems surface as
/// flagged rows, exactly as in the sequential path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A branch references source tokens outside its own pattern. The
    /// sequential evaluator would report the same defect lazily, on the
    /// first row reaching that branch; compilation rejects it up front.
    InvalidBranch {
        /// Index of the offending branch.
        index: usize,
        /// The underlying bounds violation.
        source: EvalError,
    },
    /// A pattern-derived regex failed to compile (indicates a bug in the
    /// pattern-to-regex rendering).
    Regex {
        /// The offending branch, or `None` for the target pattern.
        branch: Option<usize>,
        /// The regex engine's error message.
        message: String,
    },
    /// Strict-mode compilation
    /// ([`compile_strict`](crate::CompiledProgram::compile_strict)) found
    /// `Error`-severity static diagnostics. The default compile entry
    /// points only *record* diagnostics; this variant exists solely for
    /// callers that opted into rejection.
    RejectedByAnalysis {
        /// One rendered line per `Error`-severity diagnostic.
        findings: Vec<String>,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidBranch { index, source } => {
                write!(f, "branch {index} is ill-formed: {source}")
            }
            CompileError::Regex {
                branch: Some(i),
                message,
            } => write!(f, "branch {i} pattern regex failed to compile: {message}"),
            CompileError::Regex {
                branch: None,
                message,
            } => write!(f, "target pattern regex failed to compile: {message}"),
            CompileError::RejectedByAnalysis { findings } => {
                write!(
                    f,
                    "static analysis rejected the program ({} error finding{}): {}",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                    findings.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_culprit() {
        let e = CompileError::InvalidBranch {
            index: 3,
            source: EvalError::ExtractOutOfBounds {
                from: 7,
                to: 7,
                pattern_len: 2,
                rule: clx_unifi::ExtractRule::PastEnd,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("branch 3"));
        assert!(msg.contains("token 7"));

        let e = CompileError::Regex {
            branch: None,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("target pattern"));
        let e = CompileError::Regex {
            branch: Some(1),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("branch 1"));
    }
}
