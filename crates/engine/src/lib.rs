//! # clx-engine
//!
//! A compiled, parallel batch-transformation subsystem for CLX.
//!
//! The interactive `ClxSession` (in `clx-core`) drives the paper's
//! Cluster–Label–Transform loop and re-interprets the synthesized UniFi
//! program on every row — the right trade-off for a user study, the wrong
//! one for serving large columns. This crate is the execution layer that
//! consumes the session's output:
//!
//! * [`CompiledProgram::compile`] turns a UniFi [`Program`](clx_unifi::Program)
//!   plus its labelled target pattern into an immutable, `Send + Sync`
//!   executable: branch `Extract` bounds are validated up front, every
//!   pattern gets a pre-built Pike-VM regex program (`clx-regex`), and a
//!   transparency analysis marks the patterns whose match relation is a
//!   function of a row's token-class signature;
//! * execution dispatches rows by that signature — each distinct leaf
//!   pattern is decided once (which branch fires and where its tokens sit)
//!   and every further row with the same signature is rewritten with a few
//!   slice copies, skipping full pattern matching entirely;
//! * first-sight decisions themselves are fused: compilation builds one
//!   bit-parallel decision automaton over the target plus every
//!   transparent branch pattern (see the `fused` module), so classifying a
//!   *new* leaf is a single pass over its tokens instead of up to k+1
//!   per-branch matcher runs — with a recorded, behavior-identical
//!   fallback ([`CompiledProgram::fused_fallback`]) when a program cannot
//!   be encoded, and [`CompiledProgram::decide`] exposing the decision
//!   directly;
//! * [`CompiledProgram::execute`] runs whole columns in parallel chunks
//!   over `std::thread::scope` workers, merging per-chunk
//!   [`ChunkReport`]s into an order-preserving [`BatchReport`];
//! * [`CompiledProgram::stream`] (then [`StreamSession::push_chunk`] /
//!   [`StreamSession::finish`]) processes columns larger than memory,
//!   retaining only O(1) counters; [`ColumnStream`] (and
//!   [`StreamSession::push_column_chunk`]) is the columnar ingest variant —
//!   chunks are interned through a persistent
//!   [`ColumnInterner`](clx_column::ColumnInterner), so a distinct value is
//!   tokenized and decided once per *stream* and dispatch is an integer
//!   leaf-id array index;
//! * [`CompiledProgram::execute_column`] executes a `clx-column`
//!   [`Column`](clx_column::Column) by deciding each *distinct* value once
//!   through its cached leaf signature — no row of a session column is
//!   ever tokenized twice;
//! * [`ProgramCache`] is a bounded, thread-safe LRU of compiled programs
//!   keyed by the structural fingerprint of `(program, target)`.
//!
//! The executor's semantics are exactly those of the sequential path: rows
//! already matching the target conform, the first matching branch rewrites,
//! everything else is left unchanged and flagged (§6.1 of the paper).
//!
//! ```
//! use clx_engine::CompiledProgram;
//! use clx_pattern::tokenize;
//! use clx_unifi::{Branch, Expr, Program, StringExpr};
//!
//! // dd/dd/dddd -> dd-dd-dddd
//! let program = Program::new(vec![Branch::new(
//!     tokenize("12/11/2017"),
//!     Expr::concat(vec![
//!         StringExpr::extract(1),
//!         StringExpr::const_str("-"),
//!         StringExpr::extract(3),
//!         StringExpr::const_str("-"),
//!         StringExpr::extract(5),
//!     ]),
//! )]);
//! let compiled = CompiledProgram::compile(&program, &tokenize("12-11-2017")).unwrap();
//!
//! let column: Vec<String> = vec![
//!     "12/11/2017".into(),
//!     "03-04-2018".into(),
//!     "unknown".into(),
//! ];
//! let report = compiled.execute(&column);
//! assert_eq!(report.values(), vec!["12-11-2017", "03-04-2018", "unknown"]);
//! assert_eq!(report.transformed_count(), 1);
//! assert_eq!(report.conforming_count(), 1);
//! assert_eq!(report.flagged_values(), vec!["unknown"]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod column_exec;
mod compiled;
mod delta;
mod dispatch;
mod error;
mod fused;
mod parallel;
mod report;
mod stream;

pub use cache::{ProgramCache, ProgramCacheStats};
pub use compiled::{CompiledBranch, CompiledProgram, Decision, FusedStats};
pub use delta::ProgramDelta;
pub use dispatch::{DispatchCache, DispatchStats};
pub use error::CompileError;
pub use fused::{FusedFallback, FUSED_MAX_WIDTH};
pub use parallel::ExecOptions;
pub use report::{BatchReport, ChunkReport, ChunkStats, PatchStats, RowOutcome, RowOutcomes};
pub use stream::{ColumnStream, StreamSession, StreamSummary, SwapSummary};
