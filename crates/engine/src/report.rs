//! Mergeable execution reports.
//!
//! The parallel executor produces one [`ChunkReport`] per chunk; chunk
//! reports merge (in chunk order) into a column-level [`BatchReport`]. Both
//! carry [`ChunkStats`], a small commutative summary that also powers the
//! streaming API, where whole-column row storage is exactly what must be
//! avoided.

use clx_pattern::Pattern;

/// The outcome of the batch executor for one input row.
///
/// Mirrors the sequential session semantics exactly: rows already in the
/// target pattern are left untouched, rows matching a branch are rewritten,
/// and rows matching nothing are left unchanged and flagged for review
/// (§6.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row already matched the target pattern.
    Conforming {
        /// The (unchanged) value.
        value: String,
    },
    /// A branch of the compiled program transformed the row.
    Transformed {
        /// The original value.
        from: String,
        /// The transformed value.
        to: String,
    },
    /// No branch matched; the row is left unchanged and flagged.
    Flagged {
        /// The (unchanged) value.
        value: String,
    },
}

impl RowOutcome {
    /// The output value of the row.
    pub fn value(&self) -> &str {
        match self {
            RowOutcome::Conforming { value } | RowOutcome::Flagged { value } => value,
            RowOutcome::Transformed { to, .. } => to,
        }
    }

    /// `true` if a branch rewrote the row.
    pub fn is_transformed(&self) -> bool {
        matches!(self, RowOutcome::Transformed { .. })
    }

    /// `true` if the row was flagged for manual review.
    pub fn is_flagged(&self) -> bool {
        matches!(self, RowOutcome::Flagged { .. })
    }

    /// `true` if the row already matched the target pattern.
    pub fn is_conforming(&self) -> bool {
        matches!(self, RowOutcome::Conforming { .. })
    }
}

/// Commutative per-chunk counters; merging chunks sums them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    /// Rows rewritten by a branch.
    pub transformed: usize,
    /// Rows that already matched the target.
    pub conforming: usize,
    /// Rows flagged for review.
    pub flagged: usize,
}

impl ChunkStats {
    /// Total rows covered by these counters.
    pub fn rows(&self) -> usize {
        self.transformed + self.conforming + self.flagged
    }

    /// Count one outcome.
    pub(crate) fn record(&mut self, outcome: &RowOutcome) {
        match outcome {
            RowOutcome::Conforming { .. } => self.conforming += 1,
            RowOutcome::Transformed { .. } => self.transformed += 1,
            RowOutcome::Flagged { .. } => self.flagged += 1,
        }
    }

    /// Fold another chunk's counters into this one.
    pub fn absorb(&mut self, other: &ChunkStats) {
        self.transformed += other.transformed;
        self.conforming += other.conforming;
        self.flagged += other.flagged;
    }
}

/// The outcome of executing a compiled program over one chunk of rows.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Zero-based position of the chunk within the column (or stream).
    pub index: usize,
    /// One outcome per row of the chunk, in row order.
    pub rows: Vec<RowOutcome>,
    /// Counters over `rows`.
    pub stats: ChunkStats,
}

impl ChunkReport {
    /// Build a report from outcomes, computing the counters.
    pub fn new(index: usize, rows: Vec<RowOutcome>) -> Self {
        let mut stats = ChunkStats::default();
        for row in &rows {
            stats.record(row);
        }
        ChunkReport { index, rows, stats }
    }
}

/// A column-level report: the merge of every chunk, in input order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The target pattern the program was compiled against.
    pub target: Pattern,
    /// One outcome per input row, in input order.
    pub rows: Vec<RowOutcome>,
    /// Counters over `rows`.
    pub stats: ChunkStats,
    /// Number of chunks merged into this report.
    pub chunk_count: usize,
}

impl BatchReport {
    /// An empty report for `target`.
    pub fn empty(target: Pattern) -> Self {
        BatchReport {
            target,
            rows: Vec::new(),
            stats: ChunkStats::default(),
            chunk_count: 0,
        }
    }

    /// Merge chunk reports (sorted by `index`) into a column-level report.
    ///
    /// # Panics
    ///
    /// Panics if the chunks are not in ascending `index` order — that would
    /// silently permute the output column.
    pub fn from_chunks(target: Pattern, chunks: Vec<ChunkReport>) -> Self {
        let mut report = BatchReport::empty(target);
        for chunk in chunks {
            report.push_chunk(chunk);
        }
        report
    }

    /// Append one chunk to this report, enforcing chunk order.
    pub fn push_chunk(&mut self, chunk: ChunkReport) {
        assert_eq!(
            chunk.index, self.chunk_count,
            "chunk reports must merge in index order"
        );
        self.stats.absorb(&chunk.stats);
        self.rows.extend(chunk.rows);
        self.chunk_count += 1;
    }

    /// The output column (one value per row, in input order).
    pub fn values(&self) -> Vec<String> {
        self.rows.iter().map(|r| r.value().to_string()).collect()
    }

    /// Rows rewritten by a branch.
    pub fn transformed_count(&self) -> usize {
        self.stats.transformed
    }

    /// Rows that already matched the target.
    pub fn conforming_count(&self) -> usize {
        self.stats.conforming
    }

    /// Rows flagged for review.
    pub fn flagged_count(&self) -> usize {
        self.stats.flagged
    }

    /// The flagged values, in input order.
    pub fn flagged_values(&self) -> Vec<&str> {
        self.rows
            .iter()
            .filter(|r| r.is_flagged())
            .map(|r| r.value())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn chunk(index: usize, values: &[&str]) -> ChunkReport {
        ChunkReport::new(
            index,
            values
                .iter()
                .map(|v| RowOutcome::Flagged {
                    value: v.to_string(),
                })
                .collect(),
        )
    }

    #[test]
    fn chunk_report_counts() {
        let report = ChunkReport::new(
            0,
            vec![
                RowOutcome::Conforming { value: "a".into() },
                RowOutcome::Transformed {
                    from: "b".into(),
                    to: "c".into(),
                },
                RowOutcome::Flagged { value: "d".into() },
            ],
        );
        assert_eq!(report.stats.conforming, 1);
        assert_eq!(report.stats.transformed, 1);
        assert_eq!(report.stats.flagged, 1);
        assert_eq!(report.stats.rows(), 3);
    }

    #[test]
    fn merge_preserves_chunk_order() {
        let merged = BatchReport::from_chunks(
            tokenize("1"),
            vec![chunk(0, &["a", "b"]), chunk(1, &["c"]), chunk(2, &["d"])],
        );
        assert_eq!(merged.values(), vec!["a", "b", "c", "d"]);
        assert_eq!(merged.chunk_count, 3);
        assert_eq!(merged.flagged_count(), 4);
        assert_eq!(merged.flagged_values(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "index order")]
    fn out_of_order_chunks_are_rejected() {
        BatchReport::from_chunks(tokenize("1"), vec![chunk(1, &["a"])]);
    }

    #[test]
    fn row_outcome_accessors() {
        let t = RowOutcome::Transformed {
            from: "a".into(),
            to: "b".into(),
        };
        assert_eq!(t.value(), "b");
        assert!(t.is_transformed() && !t.is_flagged() && !t.is_conforming());
        assert_eq!(RowOutcome::Conforming { value: "x".into() }.value(), "x");
        assert_eq!(RowOutcome::Flagged { value: "y".into() }.value(), "y");
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = ChunkStats {
            transformed: 1,
            conforming: 2,
            flagged: 3,
        };
        a.absorb(&ChunkStats {
            transformed: 10,
            conforming: 20,
            flagged: 30,
        });
        assert_eq!(
            a,
            ChunkStats {
                transformed: 11,
                conforming: 22,
                flagged: 33,
            }
        );
    }
}
