//! Mergeable, columnar execution reports.
//!
//! The parallel executor produces one [`ChunkReport`] per chunk; chunk
//! reports merge (in chunk order) into a column-level [`BatchReport`]. Both
//! carry [`ChunkStats`], a small commutative summary that also powers the
//! streaming API, where whole-column row storage is exactly what must be
//! avoided.
//!
//! A [`BatchReport`] stores its outcomes *columnar*: a list of stored
//! [`RowOutcome`]s plus a row→outcome map. The chunked path stores one
//! outcome per row (an identity map, costing nothing extra); the column
//! path ([`crate::CompiledProgram::execute_column`]) stores one outcome per
//! **distinct** value and shares the column's row map by reference count,
//! so a duplicate-heavy report costs O(distinct) — no outcome is ever
//! cloned per duplicate row. Row-oriented access ([`BatchReport::iter_rows`],
//! [`BatchReport::row`], [`BatchReport::values`]) is identical for both
//! representations.

use std::sync::Arc;

use clx_column::Column;
use clx_pattern::Pattern;
use clx_telemetry::MetricSink;

use crate::compiled::CompiledProgram;
use crate::delta::ProgramDelta;
use crate::dispatch::DispatchCache;

/// What [`BatchReport::patch`] did: how much of the report the
/// [`ProgramDelta`] let it keep, and how much it had to re-decide.
///
/// Published (by the `_observed` variant) as the
/// `engine.delta.{distincts_redecided,outcomes_patched}` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Changed branch slots in the delta (after the facts intersection).
    pub branches_changed: usize,
    /// Stored outcomes the delta could not prove stable, hence re-decided.
    pub distincts_redecided: usize,
    /// Re-decided outcomes that actually changed and were rewritten.
    pub outcomes_patched: usize,
}

/// The outcome of the batch executor for one input row.
///
/// Mirrors the sequential session semantics exactly: rows already in the
/// target pattern are left untouched, rows matching a branch are rewritten,
/// and rows matching nothing are left unchanged and flagged for review
/// (§6.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOutcome {
    /// The row already matched the target pattern.
    Conforming {
        /// The (unchanged) value.
        value: String,
    },
    /// A branch of the compiled program transformed the row.
    Transformed {
        /// The original value.
        from: String,
        /// The transformed value.
        to: String,
    },
    /// No branch matched; the row is left unchanged and flagged.
    Flagged {
        /// The (unchanged) value.
        value: String,
    },
}

impl RowOutcome {
    /// The output value of the row.
    pub fn value(&self) -> &str {
        match self {
            RowOutcome::Conforming { value } | RowOutcome::Flagged { value } => value,
            RowOutcome::Transformed { to, .. } => to,
        }
    }

    /// `true` if a branch rewrote the row.
    pub fn is_transformed(&self) -> bool {
        matches!(self, RowOutcome::Transformed { .. })
    }

    /// `true` if the row was flagged for manual review.
    pub fn is_flagged(&self) -> bool {
        matches!(self, RowOutcome::Flagged { .. })
    }

    /// `true` if the row already matched the target pattern.
    pub fn is_conforming(&self) -> bool {
        matches!(self, RowOutcome::Conforming { .. })
    }
}

/// Commutative per-chunk counters; merging chunks sums them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    /// Rows rewritten by a branch.
    pub transformed: usize,
    /// Rows that already matched the target.
    pub conforming: usize,
    /// Rows flagged for review.
    pub flagged: usize,
}

impl ChunkStats {
    /// Total rows covered by these counters.
    pub fn rows(&self) -> usize {
        self.transformed + self.conforming + self.flagged
    }

    /// Count one outcome.
    pub(crate) fn record(&mut self, outcome: &RowOutcome) {
        self.record_weighted(outcome, 1);
    }

    /// Count one outcome standing for `weight` rows (the multiplicity of a
    /// distinct value in a columnar report).
    pub(crate) fn record_weighted(&mut self, outcome: &RowOutcome, weight: usize) {
        match outcome {
            RowOutcome::Conforming { .. } => self.conforming += weight,
            RowOutcome::Transformed { .. } => self.transformed += weight,
            RowOutcome::Flagged { .. } => self.flagged += weight,
        }
    }

    /// Un-count one outcome standing for `weight` rows — the inverse of
    /// [`ChunkStats::record_weighted`], used when a patched report rewrites
    /// a stored outcome in place.
    pub(crate) fn discount_weighted(&mut self, outcome: &RowOutcome, weight: usize) {
        match outcome {
            RowOutcome::Conforming { .. } => self.conforming -= weight,
            RowOutcome::Transformed { .. } => self.transformed -= weight,
            RowOutcome::Flagged { .. } => self.flagged -= weight,
        }
    }

    /// Fold another chunk's counters into this one.
    pub fn absorb(&mut self, other: &ChunkStats) {
        self.transformed += other.transformed;
        self.conforming += other.conforming;
        self.flagged += other.flagged;
    }
}

/// The outcome of executing a compiled program over one chunk of rows.
///
/// Like [`BatchReport`], a chunk report stores its outcomes *columnar*: the
/// per-row paths store one outcome per row (an identity map), while the
/// column-chunk path ([`crate::StreamSession::push_column_chunk`]) stores
/// one outcome per distinct value appearing in the chunk plus the chunk's
/// row→distinct map — O(distinct-in-chunk), no per-duplicate clones.
/// Row-oriented access ([`ChunkReport::iter_rows`], [`ChunkReport::row`],
/// [`ChunkReport::into_row_outcomes`]) is identical for both.
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Zero-based position of the chunk within the column (or stream).
    pub index: usize,
    /// Stored outcomes: per row (identity map) or per distinct-in-chunk.
    outcomes: Vec<RowOutcome>,
    /// Row index -> stored outcome index, for columnar chunks.
    map: Option<Vec<u32>>,
    /// Counters over the chunk's rows (multiplicity-weighted when columnar).
    pub stats: ChunkStats,
}

impl ChunkReport {
    /// Build a per-row report from one outcome per row, computing the
    /// counters.
    pub fn new(index: usize, rows: Vec<RowOutcome>) -> Self {
        let mut stats = ChunkStats::default();
        for row in &rows {
            stats.record(row);
        }
        ChunkReport {
            index,
            outcomes: rows,
            map: None,
            stats,
        }
    }

    /// Reassemble a per-row report whose counters are already known (the
    /// streaming `&[String]` path re-wraps a merged batch).
    pub(crate) fn from_rows_with_stats(
        index: usize,
        rows: Vec<RowOutcome>,
        stats: ChunkStats,
    ) -> Self {
        ChunkReport {
            index,
            outcomes: rows,
            map: None,
            stats,
        }
    }

    /// Build a columnar report: `outcomes[k]` is the decision for the
    /// `k`-th distinct value appearing in the chunk, and `row_map[r]` names
    /// the outcome of row `r`. Stats are multiplicity-weighted, so
    /// construction is O(rows) integer work plus O(distinct-in-chunk)
    /// outcomes — never a per-duplicate outcome clone.
    ///
    /// # Panics
    ///
    /// Panics if a `row_map` entry does not index `outcomes`.
    pub fn columnar(index: usize, outcomes: Vec<RowOutcome>, row_map: Vec<u32>) -> Self {
        let mut multiplicity = vec![0usize; outcomes.len()];
        for &stored in &row_map {
            assert!(
                (stored as usize) < outcomes.len(),
                "row map entry {stored} out of bounds ({} outcomes)",
                outcomes.len()
            );
            multiplicity[stored as usize] += 1;
        }
        let mut stats = ChunkStats::default();
        for (outcome, &weight) in outcomes.iter().zip(&multiplicity) {
            stats.record_weighted(outcome, weight);
        }
        ChunkReport {
            index,
            outcomes,
            map: Some(row_map),
            stats,
        }
    }

    /// Number of rows covered by this chunk.
    pub fn len(&self) -> usize {
        match &self.map {
            None => self.outcomes.len(),
            Some(map) => map.len(),
        }
    }

    /// `true` when the chunk covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when outcomes are stored per distinct value rather than per
    /// row.
    pub fn is_columnar(&self) -> bool {
        self.map.is_some()
    }

    /// The stored outcomes: one per distinct-in-chunk value for columnar
    /// chunks, one per row otherwise.
    pub fn outcomes(&self) -> &[RowOutcome] {
        &self.outcomes
    }

    /// The outcome of row `index` within the chunk.
    pub fn row(&self, index: usize) -> &RowOutcome {
        match &self.map {
            None => &self.outcomes[index],
            Some(map) => &self.outcomes[map[index] as usize],
        }
    }

    /// Every row's outcome, in chunk row order (duplicate rows yield the
    /// same `&RowOutcome` in a columnar chunk).
    pub fn iter_rows(&self) -> RowOutcomes<'_> {
        RowOutcomes {
            outcomes: &self.outcomes,
            map: self.map.as_deref(),
            next: 0,
            len: self.len(),
        }
    }

    /// Borrowing iterator over every row's *output value*, in chunk row
    /// order — the allocation-free way to hand streamed rows to a sink.
    pub fn iter_values(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        self.iter_rows().map(RowOutcome::value)
    }

    /// Materialize one owned outcome per row, in chunk row order (cloning
    /// per duplicate row for columnar chunks — the row-oriented escape
    /// hatch).
    pub fn into_row_outcomes(self) -> Vec<RowOutcome> {
        match self.map {
            None => self.outcomes,
            Some(map) => map
                .iter()
                .map(|&i| self.outcomes[i as usize].clone())
                .collect(),
        }
    }
}

/// The row→outcome map of a [`BatchReport`].
#[derive(Debug, Clone)]
enum RowMap {
    /// Stored outcome `i` *is* row `i` (the chunked per-row paths).
    Identity,
    /// Row `r` holds stored outcome `map[r]` (the columnar path); the map
    /// is the column's own row→distinct map, shared by reference count.
    Shared(Arc<[u32]>),
}

/// A column-level report: every row's outcome, stored columnar.
///
/// Reports from the chunked paths ([`crate::CompiledProgram::execute`],
/// [`BatchReport::from_chunks`]) store one outcome per row. Reports from
/// [`crate::CompiledProgram::execute_column`] store one outcome per
/// *distinct* value plus the column's shared row map — O(distinct) space,
/// no per-duplicate clones. Both answer row-oriented queries identically.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The target pattern the program was compiled against.
    pub target: Pattern,
    /// Stored outcomes: per row (identity map) or per distinct value.
    outcomes: Vec<RowOutcome>,
    /// Row index -> stored outcome index.
    row_map: RowMap,
    /// Counters over all rows (multiplicity-weighted for columnar reports).
    pub stats: ChunkStats,
    /// Number of chunks merged into this report (1 for a non-empty columnar
    /// report, which is built whole).
    pub chunk_count: usize,
    /// Per-stored-outcome row multiplicities for columnar reports (`None`
    /// for identity-mapped reports, whose weight is always 1). Kept so
    /// [`BatchReport::patch`] can adjust `stats` in O(1) per rewritten
    /// outcome instead of re-scanning the row map.
    multiplicities: Option<Arc<[u32]>>,
}

impl BatchReport {
    /// An empty report for `target`.
    pub fn empty(target: Pattern) -> Self {
        BatchReport {
            target,
            outcomes: Vec::new(),
            row_map: RowMap::Identity,
            stats: ChunkStats::default(),
            chunk_count: 0,
            multiplicities: None,
        }
    }

    /// Merge chunk reports (sorted by `index`) into a column-level report.
    ///
    /// # Panics
    ///
    /// Panics if the chunks are not in ascending `index` order — that would
    /// silently permute the output column.
    pub fn from_chunks(target: Pattern, chunks: Vec<ChunkReport>) -> Self {
        let mut report = BatchReport::empty(target);
        for chunk in chunks {
            report.push_chunk(chunk);
        }
        report
    }

    /// Build a columnar report: `outcomes[k]` is the decision for the
    /// `k`-th distinct value of `column`, fanned out to every duplicate row
    /// through the column's shared row map. Construction is O(distinct):
    /// the row map is reference-counted, not copied, and the stats are
    /// multiplicity-weighted instead of being counted row by row.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` does not have exactly one entry per distinct
    /// value of `column`.
    pub fn columnar(target: Pattern, outcomes: Vec<RowOutcome>, column: &Column) -> Self {
        assert_eq!(
            outcomes.len(),
            column.distinct_count(),
            "one outcome per distinct value"
        );
        let mut stats = ChunkStats::default();
        let mut multiplicities = Vec::with_capacity(outcomes.len());
        for (outcome, value) in outcomes.iter().zip(column.distinct_values()) {
            stats.record_weighted(outcome, value.multiplicity());
            multiplicities.push(value.multiplicity() as u32);
        }
        BatchReport {
            target,
            outcomes,
            row_map: RowMap::Shared(column.row_map().clone()),
            stats,
            chunk_count: usize::from(!column.is_empty()),
            multiplicities: Some(multiplicities.into()),
        }
    }

    /// Append one chunk to this report, enforcing chunk order.
    ///
    /// # Panics
    ///
    /// Panics on out-of-order chunks, or if the report is columnar (those
    /// are built whole by [`BatchReport::columnar`]).
    pub fn push_chunk(&mut self, chunk: ChunkReport) {
        assert!(
            matches!(self.row_map, RowMap::Identity),
            "cannot append chunks to a columnar report"
        );
        assert_eq!(
            chunk.index, self.chunk_count,
            "chunk reports must merge in index order"
        );
        self.stats.absorb(&chunk.stats);
        self.outcomes.extend(chunk.into_row_outcomes());
        self.chunk_count += 1;
    }

    /// Re-verify this report against `new_program`, rewriting in place
    /// only the stored outcomes `delta` cannot prove stable.
    ///
    /// Every stored outcome keeps the original input recoverable
    /// (`Conforming`/`Flagged` carry the value, `Transformed` carries
    /// `from`), so an affected outcome is re-decided by running the new
    /// program on that input; unaffected outcomes — and the shared row
    /// map — are untouched. Cost is O(stored outcomes) cheap delta checks
    /// plus a full decide for the affected ones only; the multiplicity
    /// weights captured at construction make each stats adjustment O(1).
    ///
    /// `delta` must have been built with [`ProgramDelta::between`] from
    /// the program that produced this report to `new_program`; when the
    /// delta reports a target change the report's `target` follows the new
    /// program's.
    pub fn patch(&mut self, delta: &ProgramDelta, new_program: &CompiledProgram) -> PatchStats {
        self.patch_observed(delta, new_program, None)
    }

    /// [`BatchReport::patch`], additionally publishing the
    /// `engine.delta.{distincts_redecided,outcomes_patched}` counters.
    pub fn patch_observed(
        &mut self,
        delta: &ProgramDelta,
        new_program: &CompiledProgram,
        sink: Option<&Arc<dyn MetricSink>>,
    ) -> PatchStats {
        self.patch_inner(delta, new_program, sink, None)
    }

    /// [`BatchReport::patch`] for a columnar report still paired with the
    /// [`Column`] it was built over — the session's re-verification path.
    ///
    /// The column's per-distinct *cached leaf signatures* replace the
    /// patch's per-value tokenization: the affected-screen memoizes by
    /// dense leaf-id (one fused classification per distinct *leaf*, an
    /// integer map lookup per distinct value) and each re-decide
    /// dispatches through [`CompiledProgram::transform_one_by_leaf_id`]
    /// without re-tokenizing the input. Falls back to the self-contained
    /// [`BatchReport::patch_observed`] when `column` is not the report's
    /// own (different row map or distinct count) — answers are identical
    /// either way.
    pub fn patch_columnar(
        &mut self,
        delta: &ProgramDelta,
        new_program: &CompiledProgram,
        column: &Column,
    ) -> PatchStats {
        self.patch_columnar_observed(delta, new_program, column, None)
    }

    /// [`BatchReport::patch_columnar`], additionally publishing the
    /// `engine.delta.{distincts_redecided,outcomes_patched}` counters.
    pub fn patch_columnar_observed(
        &mut self,
        delta: &ProgramDelta,
        new_program: &CompiledProgram,
        column: &Column,
        sink: Option<&Arc<dyn MetricSink>>,
    ) -> PatchStats {
        let aligned = self.outcomes.len() == column.distinct_count()
            && matches!(&self.row_map, RowMap::Shared(map) if Arc::ptr_eq(map, column.row_map()));
        self.patch_inner(delta, new_program, sink, aligned.then_some(column))
    }

    fn patch_inner(
        &mut self,
        delta: &ProgramDelta,
        new_program: &CompiledProgram,
        sink: Option<&Arc<dyn MetricSink>>,
        column: Option<&Column>,
    ) -> PatchStats {
        debug_assert_eq!(
            new_program.instance(),
            delta.new_instance(),
            "patch must re-decide with the program the delta diffs to"
        );
        let mut patch = PatchStats {
            branches_changed: delta.branches_changed(),
            ..PatchStats::default()
        };
        if !delta.is_identity() {
            let mut cache = DispatchCache::new();
            // Screening memos: distincts sharing a leaf signature answer
            // the affected-check once, not once per value. With a column
            // the memo keys on the cached dense leaf-id; without one it
            // keys on the leaf pattern `affects_outcome_memo` tokenizes.
            let mut leaf_memo = std::collections::HashMap::new();
            let mut id_memo: std::collections::HashMap<u32, Option<(bool, bool)>> =
                std::collections::HashMap::new();
            for (index, outcome) in self.outcomes.iter_mut().enumerate() {
                let affected = match column {
                    Some(col) if !outcome.is_conforming() && !delta.target_changed() => {
                        let distinct = col.distinct(index);
                        debug_assert_eq!(
                            distinct.text(),
                            match &*outcome {
                                RowOutcome::Conforming { value }
                                | RowOutcome::Flagged { value } => value.as_str(),
                                RowOutcome::Transformed { from, .. } => from.as_str(),
                            },
                            "columnar outcome k must belong to distinct k"
                        );
                        let screen = *id_memo
                            .entry(distinct.leaf_id())
                            .or_insert_with(|| delta.screen_leaf(distinct.leaf()));
                        match screen {
                            Some(hits) => delta.hits_affect(outcome, hits),
                            None => delta.affects_outcome(outcome),
                        }
                    }
                    Some(_) => delta.affects_outcome(outcome),
                    None => delta.affects_outcome_memo(outcome, &mut leaf_memo),
                };
                if !affected {
                    continue;
                }
                patch.distincts_redecided += 1;
                let redecided = match column {
                    Some(col) => {
                        let distinct = col.distinct(index);
                        new_program.transform_one_by_leaf_id(
                            &mut cache,
                            col.interner_id(),
                            col.interner_generation(),
                            distinct.leaf_id(),
                            distinct.text(),
                            distinct.leaf(),
                        )
                    }
                    None => {
                        let input = match &*outcome {
                            RowOutcome::Conforming { value } | RowOutcome::Flagged { value } => {
                                value.clone()
                            }
                            RowOutcome::Transformed { from, .. } => from.clone(),
                        };
                        new_program.transform_one(&mut cache, &input)
                    }
                };
                if redecided != *outcome {
                    let weight = self
                        .multiplicities
                        .as_ref()
                        .map_or(1, |m| m[index] as usize);
                    self.stats.discount_weighted(outcome, weight);
                    self.stats.record_weighted(&redecided, weight);
                    *outcome = redecided;
                    patch.outcomes_patched += 1;
                }
            }
            if delta.target_changed() {
                self.target = new_program.target().clone();
            }
        }
        if let Some(sink) = sink {
            sink.counter(
                "engine.delta.distincts_redecided",
                patch.distincts_redecided as u64,
            );
            sink.counter(
                "engine.delta.outcomes_patched",
                patch.outcomes_patched as u64,
            );
        }
        patch
    }

    /// Number of rows covered by this report.
    pub fn len(&self) -> usize {
        match &self.row_map {
            RowMap::Identity => self.outcomes.len(),
            RowMap::Shared(map) => map.len(),
        }
    }

    /// `true` when the report covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when outcomes are stored per distinct value (one entry shared
    /// by all duplicate rows) rather than per row.
    pub fn is_columnar(&self) -> bool {
        matches!(self.row_map, RowMap::Shared(_))
    }

    /// The stored outcomes: one per *distinct* value for columnar reports,
    /// one per row otherwise.
    pub fn outcomes(&self) -> &[RowOutcome] {
        &self.outcomes
    }

    /// The outcome of row `index`.
    pub fn row(&self, index: usize) -> &RowOutcome {
        match &self.row_map {
            RowMap::Identity => &self.outcomes[index],
            RowMap::Shared(map) => &self.outcomes[map[index] as usize],
        }
    }

    /// Every row's outcome, in input order (duplicate rows yield the same
    /// `&RowOutcome` in a columnar report).
    pub fn iter_rows(&self) -> RowOutcomes<'_> {
        RowOutcomes {
            outcomes: &self.outcomes,
            map: match &self.row_map {
                RowMap::Identity => None,
                RowMap::Shared(map) => Some(map),
            },
            next: 0,
            len: self.len(),
        }
    }

    /// Materialize one owned outcome per row, in input order (cloning per
    /// duplicate row — the explicitly row-oriented escape hatch).
    pub fn into_row_outcomes(self) -> Vec<RowOutcome> {
        match self.row_map {
            RowMap::Identity => self.outcomes,
            RowMap::Shared(map) => map
                .iter()
                .map(|&i| self.outcomes[i as usize].clone())
                .collect(),
        }
    }

    /// The output column (one value per row, in input order).
    pub fn values(&self) -> Vec<String> {
        self.iter_rows().map(|r| r.value().to_string()).collect()
    }

    /// Borrowing iterator over every row's *output value*, in input order.
    /// Unlike [`BatchReport::values`] this materializes nothing: serving
    /// paths can stream the output column without one `String` per row.
    pub fn iter_values(&self) -> impl ExactSizeIterator<Item = &str> + '_ {
        self.iter_rows().map(RowOutcome::value)
    }

    /// Rows rewritten by a branch.
    pub fn transformed_count(&self) -> usize {
        self.stats.transformed
    }

    /// Rows that already matched the target.
    pub fn conforming_count(&self) -> usize {
        self.stats.conforming
    }

    /// Rows flagged for review.
    pub fn flagged_count(&self) -> usize {
        self.stats.flagged
    }

    /// The flagged values, in input order (one entry per flagged row).
    pub fn flagged_values(&self) -> Vec<&str> {
        self.iter_rows()
            .filter(|r| r.is_flagged())
            .map(|r| r.value())
            .collect()
    }

    /// `true` when every row's output matches the target pattern. Checked
    /// once per *stored* outcome, so O(distinct) on a columnar report.
    pub fn is_perfect(&self) -> bool {
        self.outcomes.iter().all(|o| self.target.matches(o.value()))
    }

    /// Fraction of rows whose output matches the target pattern. Pattern
    /// matching runs once per stored outcome; only the row-weighting pass
    /// touches every row.
    pub fn conformance_ratio(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let ok: Vec<bool> = self
            .outcomes
            .iter()
            .map(|o| self.target.matches(o.value()))
            .collect();
        let matching = match &self.row_map {
            RowMap::Identity => ok.iter().filter(|&&b| b).count(),
            RowMap::Shared(map) => map.iter().filter(|&&i| ok[i as usize]).count(),
        };
        matching as f64 / self.len() as f64
    }
}

/// Iterator over every row's outcome of a [`BatchReport`], in input order.
#[derive(Debug, Clone)]
pub struct RowOutcomes<'a> {
    outcomes: &'a [RowOutcome],
    map: Option<&'a [u32]>,
    next: usize,
    len: usize,
}

impl<'a> Iterator for RowOutcomes<'a> {
    type Item = &'a RowOutcome;

    fn next(&mut self) -> Option<&'a RowOutcome> {
        if self.next >= self.len {
            return None;
        }
        let stored = match self.map {
            Some(map) => map[self.next] as usize,
            None => self.next,
        };
        self.next += 1;
        Some(&self.outcomes[stored])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.len - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RowOutcomes<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    fn chunk(index: usize, values: &[&str]) -> ChunkReport {
        ChunkReport::new(
            index,
            values
                .iter()
                .map(|v| RowOutcome::Flagged {
                    value: v.to_string(),
                })
                .collect(),
        )
    }

    #[test]
    fn chunk_report_counts() {
        let report = ChunkReport::new(
            0,
            vec![
                RowOutcome::Conforming { value: "a".into() },
                RowOutcome::Transformed {
                    from: "b".into(),
                    to: "c".into(),
                },
                RowOutcome::Flagged { value: "d".into() },
            ],
        );
        assert_eq!(report.stats.conforming, 1);
        assert_eq!(report.stats.transformed, 1);
        assert_eq!(report.stats.flagged, 1);
        assert_eq!(report.stats.rows(), 3);
    }

    #[test]
    fn merge_preserves_chunk_order() {
        let merged = BatchReport::from_chunks(
            tokenize("1"),
            vec![chunk(0, &["a", "b"]), chunk(1, &["c"]), chunk(2, &["d"])],
        );
        assert_eq!(merged.values(), vec!["a", "b", "c", "d"]);
        assert_eq!(merged.chunk_count, 3);
        assert_eq!(merged.len(), 4);
        assert!(!merged.is_columnar());
        assert_eq!(merged.flagged_count(), 4);
        assert_eq!(merged.flagged_values(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    #[should_panic(expected = "index order")]
    fn out_of_order_chunks_are_rejected() {
        BatchReport::from_chunks(tokenize("1"), vec![chunk(1, &["a"])]);
    }

    #[test]
    fn columnar_report_stores_one_outcome_per_distinct_value() {
        let column = Column::from_values(&["a", "b", "a", "a", "b"]);
        let outcomes = vec![
            RowOutcome::Transformed {
                from: "a".into(),
                to: "A".into(),
            },
            RowOutcome::Flagged { value: "b".into() },
        ];
        let report = BatchReport::columnar(tokenize("X"), outcomes, &column);
        assert!(report.is_columnar());
        assert_eq!(report.outcomes().len(), 2);
        assert_eq!(report.len(), 5);
        // Stats are multiplicity-weighted.
        assert_eq!(report.transformed_count(), 3);
        assert_eq!(report.flagged_count(), 2);
        // Row-oriented access fans the decisions back out in input order.
        assert_eq!(report.values(), vec!["A", "b", "A", "A", "b"]);
        assert_eq!(report.row(3).value(), "A");
        assert_eq!(report.flagged_values(), vec!["b", "b"]);
        // Materializing rows clones per duplicate.
        assert_eq!(report.clone().into_row_outcomes().len(), 5);
        // The row map is shared with the column, not copied.
        let shared = match &report.row_map {
            RowMap::Shared(map) => map,
            RowMap::Identity => panic!("columnar report must share the map"),
        };
        assert!(Arc::ptr_eq(shared, column.row_map()));
    }

    #[test]
    fn columnar_report_of_empty_column_is_empty() {
        let report = BatchReport::columnar(tokenize("X"), Vec::new(), &Column::default());
        assert!(report.is_empty());
        assert_eq!(report.chunk_count, 0);
        assert_eq!(report.iter_rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot append chunks")]
    fn columnar_reports_reject_chunks() {
        let column = Column::from_values(&["a"]);
        let outcomes = vec![RowOutcome::Flagged { value: "a".into() }];
        let mut report = BatchReport::columnar(tokenize("X"), outcomes, &column);
        report.push_chunk(chunk(1, &["b"]));
    }

    #[test]
    fn iter_rows_is_exact_size() {
        let column = Column::from_values(&["a", "a", "b"]);
        let outcomes = vec![
            RowOutcome::Conforming { value: "a".into() },
            RowOutcome::Conforming { value: "b".into() },
        ];
        let report = BatchReport::columnar(tokenize("X"), outcomes, &column);
        let mut iter = report.iter_rows();
        assert_eq!(iter.len(), 3);
        iter.next();
        assert_eq!(iter.len(), 2);
    }

    #[test]
    fn row_outcome_accessors() {
        let t = RowOutcome::Transformed {
            from: "a".into(),
            to: "b".into(),
        };
        assert_eq!(t.value(), "b");
        assert!(t.is_transformed() && !t.is_flagged() && !t.is_conforming());
        assert_eq!(RowOutcome::Conforming { value: "x".into() }.value(), "x");
        assert_eq!(RowOutcome::Flagged { value: "y".into() }.value(), "y");
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = ChunkStats {
            transformed: 1,
            conforming: 2,
            flagged: 3,
        };
        a.absorb(&ChunkStats {
            transformed: 10,
            conforming: 20,
            flagged: 30,
        });
        assert_eq!(
            a,
            ChunkStats {
                transformed: 11,
                conforming: 22,
                flagged: 33,
            }
        );
    }

    mod patch {
        use super::*;
        use crate::delta::ProgramDelta;
        use crate::CompiledProgram;
        use clx_pattern::parse_pattern;
        use clx_unifi::{Branch, Expr, Program, StringExpr};

        /// digits → join; letters → join. `suffix` repairs the digit plan.
        fn program(suffix: &str) -> CompiledProgram {
            let digits = parse_pattern("<D>2'-'<D>2").unwrap();
            let letters = parse_pattern("<L>+'.'<L>+").unwrap();
            CompiledProgram::compile(
                &Program::new(vec![
                    Branch::new(
                        digits,
                        Expr::concat(vec![
                            StringExpr::extract(1),
                            StringExpr::extract(3),
                            StringExpr::const_str(suffix),
                        ]),
                    ),
                    Branch::new(
                        letters,
                        Expr::concat(vec![StringExpr::extract(1), StringExpr::extract(3)]),
                    ),
                ]),
                &parse_pattern("<AN>4").unwrap(),
            )
            .unwrap()
        }

        fn full_recompute(program: &CompiledProgram, column: &Column) -> BatchReport {
            let mut cache = crate::DispatchCache::new();
            let outcomes: Vec<RowOutcome> = column
                .distinct_values()
                .map(|v| program.transform_one(&mut cache, v.text()))
                .collect();
            BatchReport::columnar(program.target().clone(), outcomes, column)
        }

        #[test]
        fn patch_rewrites_only_affected_outcomes_and_matches_full_recompute() {
            // "cafe" conforms to <AN>4, "!!" is flagged either way.
            let column = Column::from_values(&["12-34", "ab.cd", "12-34", "cafe", "!!"]);
            let old = program("");
            let new = program("#");
            let mut report = full_recompute(&old, &column);
            let before: Vec<RowOutcome> = report.outcomes().to_vec();

            let delta = ProgramDelta::between(&old, &new);
            let stats = report.patch(&delta, &new);
            assert_eq!(stats.branches_changed, 2);
            assert_eq!(
                stats.distincts_redecided, 1,
                "only the digit distinct re-decides"
            );
            assert_eq!(stats.outcomes_patched, 1);

            let expected = full_recompute(&new, &column);
            assert_eq!(
                report.iter_rows().collect::<Vec<_>>(),
                expected.iter_rows().collect::<Vec<_>>()
            );
            assert_eq!(report.stats, expected.stats, "weighted stats re-balanced");
            // Everything the delta proved stable is byte-identical.
            for (i, outcome) in report.outcomes().iter().enumerate() {
                if before[i].value() != "1234" {
                    assert_eq!(outcome, &before[i]);
                }
            }
        }

        #[test]
        fn identity_patch_changes_nothing() {
            let column = Column::from_values(&["12-34", "ab.cd"]);
            let old = program("");
            let new = program("");
            let mut report = full_recompute(&old, &column);
            let before = report.clone();
            let delta = ProgramDelta::between(&old, &new);
            let stats = report.patch(&delta, &new);
            assert_eq!(stats, PatchStats::default());
            assert_eq!(
                report.iter_rows().collect::<Vec<_>>(),
                before.iter_rows().collect::<Vec<_>>()
            );
        }

        #[test]
        fn target_change_patch_re_decides_everything_and_retargets() {
            let column = Column::from_values(&["12-34", "cafe"]);
            let old = program("");
            let digits = parse_pattern("<D>2'-'<D>2").unwrap();
            let new = CompiledProgram::compile(
                &Program::new(vec![Branch::new(
                    digits,
                    Expr::concat(vec![StringExpr::extract(1), StringExpr::extract(3)]),
                )]),
                &parse_pattern("<D>+").unwrap(),
            )
            .unwrap();
            let mut report = full_recompute(&old, &column);
            let delta = ProgramDelta::between(&old, &new);
            let stats = report.patch(&delta, &new);
            assert_eq!(stats.distincts_redecided, 2, "target change affects all");
            assert_eq!(report.target, *new.target());
            let expected = full_recompute(&new, &column);
            assert_eq!(
                report.iter_rows().collect::<Vec<_>>(),
                expected.iter_rows().collect::<Vec<_>>()
            );
            assert_eq!(report.stats, expected.stats);
        }

        #[test]
        fn patch_columnar_equals_self_contained_patch() {
            let column = Column::from_values(&["12-34", "ab.cd", "12-34", "cafe", "!!"]);
            let old = program("");
            let new = program("#");
            let delta = ProgramDelta::between(&old, &new);
            let baseline = full_recompute(&old, &column);

            let mut self_contained = baseline.clone();
            let generic_stats = self_contained.patch(&delta, &new);
            let mut columnar = baseline.clone();
            let columnar_stats = columnar.patch_columnar(&delta, &new, &column);
            assert_eq!(columnar_stats, generic_stats, "same screen, same counts");
            assert_eq!(
                columnar.iter_rows().collect::<Vec<_>>(),
                self_contained.iter_rows().collect::<Vec<_>>()
            );
            assert_eq!(columnar.stats, self_contained.stats);

            // A column that is not the report's own (same values, different
            // row-map Arc) silently falls back to the self-contained path.
            let stranger = Column::from_values(&["12-34", "ab.cd", "12-34", "cafe", "!!"]);
            let mut fallback = baseline.clone();
            let fallback_stats = fallback.patch_columnar(&delta, &new, &stranger);
            assert_eq!(fallback_stats, generic_stats);
            assert_eq!(
                fallback.iter_rows().collect::<Vec<_>>(),
                self_contained.iter_rows().collect::<Vec<_>>()
            );
        }
    }
}
