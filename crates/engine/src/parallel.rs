//! Chunked parallel execution over whole `&[String]` columns.
//!
//! This is the per-row half of the executor: every row is tokenized to
//! dispatch it. Callers holding a [`clx_column::Column`] (or streaming
//! interned chunks) should prefer the column paths
//! ([`CompiledProgram::execute_column`],
//! [`crate::StreamSession::push_column_chunk`]), which decide each
//! *distinct* value once and dispatch by dense integer leaf-id.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::compiled::CompiledProgram;
use crate::dispatch::DispatchCache;
use crate::report::{BatchReport, ChunkReport, RowOutcome};

/// Tuning knobs for [`CompiledProgram::execute_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Rows per chunk; `0` picks a size that gives each worker several
    /// chunks (for load balancing) without chunk bookkeeping dominating.
    pub chunk_size: usize,
}

impl ExecOptions {
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    fn resolved_chunk_size(&self, rows: usize, threads: usize) -> usize {
        if self.chunk_size > 0 {
            return self.chunk_size;
        }
        // Aim for ~4 chunks per worker, within sane bounds.
        (rows / (threads * 4).max(1)).clamp(256, 65_536)
    }
}

impl CompiledProgram {
    /// Execute the program over a column with default options.
    pub fn execute(&self, column: &[String]) -> BatchReport {
        self.execute_with(column, ExecOptions::default())
    }

    /// Execute the program over a column: the column is cut into chunks,
    /// worker threads pull chunks off a shared queue (each with its own
    /// [`DispatchCache`]), and the per-chunk reports merge back in input
    /// order.
    pub fn execute_with(&self, column: &[String], options: ExecOptions) -> BatchReport {
        let mut caches = Vec::new();
        self.execute_pooled(column, options, &mut caches)
    }

    /// [`CompiledProgram::execute_with`] reusing caller-owned per-worker
    /// dispatch caches across calls (worker `i` uses `caches[i]`, growing
    /// the vector as needed). The streaming API threads its caches through
    /// here so leaf decisions are made once per stream, not once per chunk.
    pub(crate) fn execute_pooled(
        &self,
        column: &[String],
        options: ExecOptions,
        caches: &mut Vec<DispatchCache>,
    ) -> BatchReport {
        if column.is_empty() {
            return BatchReport::empty(self.target.clone());
        }
        let threads = options.resolved_threads();
        let chunk_size = options.resolved_chunk_size(column.len(), threads);
        let chunks: Vec<&[String]> = column.chunks(chunk_size).collect();
        let workers = threads.min(chunks.len());
        if caches.len() < workers {
            caches.resize_with(workers, DispatchCache::new);
        }

        if workers <= 1 {
            let cache = &mut caches[0];
            let reports = chunks
                .iter()
                .enumerate()
                .map(|(i, chunk)| self.execute_chunk(i, chunk, cache))
                .collect();
            return BatchReport::from_chunks(self.target.clone(), reports);
        }

        let next = &AtomicUsize::new(0);
        let slots: &Vec<Mutex<Option<ChunkReport>>> =
            &(0..chunks.len()).map(|_| Mutex::new(None)).collect();
        let chunks = &chunks;
        std::thread::scope(|scope| {
            for cache in caches.iter_mut().take(workers) {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let report = self.execute_chunk(i, chunks[i], cache);
                    *slots[i].lock().expect("chunk slot poisoned") = Some(report);
                });
            }
        });
        let reports = slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("chunk slot poisoned")
                    .take()
                    .expect("every chunk index was claimed by a worker")
            })
            .collect();
        BatchReport::from_chunks(self.target.clone(), reports)
    }

    /// Execute one chunk sequentially with a caller-provided dispatch cache
    /// (reusing a cache across chunks amortizes leaf decisions).
    pub fn execute_chunk(
        &self,
        index: usize,
        rows: &[String],
        cache: &mut DispatchCache,
    ) -> ChunkReport {
        let outcomes: Vec<RowOutcome> = rows
            .iter()
            .map(|value| self.transform_one(cache, value))
            .collect();
        ChunkReport::new(index, outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;
    use clx_unifi::{Branch, Expr, Program, StringExpr};

    fn dash_program() -> (Program, clx_pattern::Pattern) {
        // (ddd) ddd-dddd and (ddd)ddd-dddd -> ddd-ddd-dddd
        let program = Program::new(vec![
            Branch::new(
                tokenize("(734) 645-8397"),
                Expr::concat(vec![
                    StringExpr::extract(2),
                    StringExpr::const_str("-"),
                    StringExpr::extract(5),
                    StringExpr::const_str("-"),
                    StringExpr::extract(7),
                ]),
            ),
            Branch::new(
                tokenize("(734)586-7252"),
                Expr::concat(vec![
                    StringExpr::extract(2),
                    StringExpr::const_str("-"),
                    StringExpr::extract(4),
                    StringExpr::const_str("-"),
                    StringExpr::extract(6),
                ]),
            ),
        ]);
        (program, tokenize("734-422-8073"))
    }

    fn column(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| match i % 4 {
                0 => format!(
                    "({:03}) {:03}-{:04}",
                    100 + i % 800,
                    200 + i % 700,
                    i % 9999
                ),
                1 => format!("({:03}){:03}-{:04}", 100 + i % 800, 200 + i % 700, i % 9999),
                2 => format!("{:03}-{:03}-{:04}", 100 + i % 800, 200 + i % 700, i % 9999),
                _ => "N/A".to_string(),
            })
            .collect()
    }

    #[test]
    fn parallel_equals_sequential() {
        let (program, target) = dash_program();
        let compiled = CompiledProgram::compile(&program, &target).unwrap();
        let data = column(2_000);
        let sequential = compiled.execute_with(
            &data,
            ExecOptions {
                threads: 1,
                chunk_size: 0,
            },
        );
        let parallel = compiled.execute_with(
            &data,
            ExecOptions {
                threads: 8,
                chunk_size: 64,
            },
        );
        assert_eq!(
            sequential.iter_rows().collect::<Vec<_>>(),
            parallel.iter_rows().collect::<Vec<_>>()
        );
        assert_eq!(sequential.stats, parallel.stats);
        assert_eq!(parallel.chunk_count, data.len().div_ceil(64));
    }

    #[test]
    fn outcomes_are_correct_and_ordered() {
        let (program, target) = dash_program();
        let compiled = CompiledProgram::compile(&program, &target).unwrap();
        let data = column(999);
        let report = compiled.execute_with(
            &data,
            ExecOptions {
                threads: 4,
                chunk_size: 100,
            },
        );
        assert_eq!(report.len(), data.len());
        for (row, input) in report.iter_rows().zip(&data) {
            match input.chars().next() {
                Some('(') => assert!(row.is_transformed(), "{input} -> {row:?}"),
                Some('N') => assert!(row.is_flagged(), "{input} -> {row:?}"),
                _ => assert!(row.is_conforming(), "{input} -> {row:?}"),
            }
            if !row.is_flagged() {
                assert!(target.matches(row.value()), "{row:?}");
            }
        }
        assert_eq!(report.stats.rows(), 999);
    }

    #[test]
    fn empty_column() {
        let (program, target) = dash_program();
        let compiled = CompiledProgram::compile(&program, &target).unwrap();
        let report = compiled.execute(&[]);
        assert!(report.is_empty());
        assert_eq!(report.chunk_count, 0);
    }

    #[test]
    fn auto_options_handle_any_size() {
        let (program, target) = dash_program();
        let compiled = CompiledProgram::compile(&program, &target).unwrap();
        for n in [1, 2, 255, 256, 257, 5_000] {
            let report = compiled.execute(&column(n));
            assert_eq!(report.len(), n, "size {n}");
        }
    }
}
