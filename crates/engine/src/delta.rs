//! Change-impact analysis between two compiled programs.
//!
//! A [`ProgramDelta`] is the substrate of the incremental re-verification
//! loop (ROADMAP item 5): after a repair (or any program swap) it answers,
//! per already-decided outcome and per leaf pattern, *"can the new program
//! decide this differently?"* — without re-running anything. Consumers
//! then re-decide only what the delta cannot prove unchanged:
//!
//! * [`crate::BatchReport::patch`] rewrites only the affected outcomes of
//!   a finished report in place;
//! * [`crate::ColumnStream::swap_program`] invalidates only the affected
//!   entries of its decision cache and retains dense dispatch plans for
//!   unaffected leaf-ids.
//!
//! # How the diff works
//!
//! Branches of the old and new program are matched greedily in order on
//! `(pattern, expr)` equality (an order-preserving two-pointer scan).
//! Matched branches are *identical*; everything unmatched is a changed
//! branch — removed/modified on the old side, added/modified on the new.
//! The changed sets are then intersected with `clx-analyze`'s per-branch
//! [`BranchFacts`](clx_analyze::BranchFacts): a changed branch **proven
//! unreachable** on its own side can never (have) won a row, so it is
//! skipped entirely and widens no impact set.
//!
//! # Why `affects_outcome` is sound
//!
//! Take a value `v` whose stored outcome the delta reports unaffected
//! (target unchanged, `v` full-matches no changed branch's regex, old and
//! new side). If the outcome was `Conforming`, the target still matches —
//! branches are never consulted. Otherwise `v`'s old winner (or, for
//! `Flagged`, the absence of one) involved only *unchanged* branches, the
//! greedy matching preserves their relative order, and every changed
//! branch ahead of the winner in the new order fails to match `v` — so
//! the new program picks the same winner with the same plan and produces
//! byte-for-byte the same outcome. A regex full-match is a superset of
//! "fires" (an opaque branch additionally needs its plan to evaluate), so
//! the test errs toward re-deciding, never toward staleness.
//!
//! # Why `affects_leaf` can retain whole dispatch plans
//!
//! A [`LeafPlan`](crate::dispatch) embeds branch *indices*, so plans are
//! only retainable at all when every matched branch keeps its index
//! ([`ProgramDelta::index_stable`]) and the target is unchanged. Opaque
//! branches get `CheckBranch` steps in **every** plan, so any opaque
//! change conservatively affects every leaf. Transparent branches appear
//! in a plan only when they match the leaf signature — and transparent
//! matching is decided *by* the leaf signature — so a leaf that no changed
//! transparent pattern matches (answered by one pass over a dedicated
//! multi-pattern automaton over just the changed patterns) keeps a plan
//! that is step-for-step valid under the new program.

use std::collections::HashMap;
use std::sync::Arc;

use clx_pattern::{tokenize, Pattern};
use clx_regex::Regex;
use clx_telemetry::MetricSink;
use clx_unifi::{Branch, Program};

use crate::compiled::CompiledProgram;
use crate::fused::FusedMatcher;
use crate::report::RowOutcome;

/// One changed branch slot: enough of the compiled branch to test values
/// and leaves against it without holding the whole program alive.
#[derive(Debug)]
struct ChangedBranch {
    /// The branch's source pattern (kept for the leaf-level matcher).
    pattern: Pattern,
    /// The branch's linear-time matcher, cloned from the compiled form.
    regex: Regex,
    /// Whether pattern matching is decided by the leaf signature alone.
    transparent: bool,
}

/// The compiled difference between an old and a new [`CompiledProgram`]:
/// which branch slots changed, and the machinery to test whether a stored
/// outcome or a cached per-leaf plan can be invalidated by the change.
///
/// Built by [`ProgramDelta::between`]; all queries are read-only and
/// `O(changed branches)` per call.
#[derive(Debug)]
pub struct ProgramDelta {
    /// Instance id of the program the delta diffs *to*.
    new_instance: u64,
    /// `true` when the labelled target pattern itself differs — every
    /// outcome and every leaf is affected.
    target_changed: bool,
    /// `true` when both programs have the same branch count and every
    /// matched (identical) branch keeps its index — the precondition for
    /// retaining dispatch plans, which embed branch indices.
    index_stable: bool,
    /// Branches present in the old program with no identical counterpart
    /// in the new one (removed or modified), minus proven-unreachable ones.
    changed_old: Vec<ChangedBranch>,
    /// Branches present in the new program with no identical counterpart
    /// in the old one (added or modified), minus proven-unreachable ones.
    changed_new: Vec<ChangedBranch>,
    /// `true` when any changed branch (either side) is opaque: opaque
    /// branches are checked per value in every plan, so leaf-level
    /// retention is off the table.
    has_opaque_change: bool,
    /// One automaton over all changed *transparent* patterns (old and new
    /// sides together): classifies a leaf against every changed pattern in
    /// a single pass. `None` when there is nothing transparent to fuse or
    /// construction fell back — queries then answer conservatively.
    leaf_matcher: Option<FusedMatcher>,
    /// Number of changed transparent patterns behind `leaf_matcher`.
    leaf_matcher_width: usize,
}

impl ProgramDelta {
    /// Diff `old` against `new`. Cost is `O(branches²)` worst case on the
    /// greedy matching (linear when branch order is preserved, the repair
    /// case) plus one `clx-analyze` run per program — all program-sized,
    /// never row- or distinct-sized.
    pub fn between(old: &CompiledProgram, new: &CompiledProgram) -> ProgramDelta {
        ProgramDelta::between_observed(old, new, None)
    }

    /// [`ProgramDelta::between`], additionally publishing the
    /// `engine.delta.branches_changed` counter to `sink`.
    pub fn between_observed(
        old: &CompiledProgram,
        new: &CompiledProgram,
        sink: Option<&Arc<dyn MetricSink>>,
    ) -> ProgramDelta {
        let target_changed = old.target() != new.target();

        // Greedy order-preserving matching on (pattern, expr) equality.
        let old_branches = old.branches();
        let new_branches = new.branches();
        let mut matched_new = vec![false; new_branches.len()];
        let mut identity = old_branches.len() == new_branches.len();
        let mut changed_old_idx = Vec::new();
        let mut next_new = 0;
        for (i, ob) in old_branches.iter().enumerate() {
            let hit = (next_new..new_branches.len()).find(|&j| {
                new_branches[j].pattern() == ob.pattern() && new_branches[j].expr() == ob.expr()
            });
            match hit {
                Some(j) => {
                    matched_new[j] = true;
                    next_new = j + 1;
                    identity &= i == j;
                }
                None => changed_old_idx.push(i),
            }
        }
        let changed_new_idx: Vec<usize> = (0..new_branches.len())
            .filter(|&j| !matched_new[j])
            .collect();
        let index_stable = identity;

        // Facts intersection: a changed branch proven unreachable on its
        // own side can never (have) decided a row — drop it so it widens
        // no impact set. Matched branches are identical by construction,
        // so their facts are identical too and they are skipped already.
        let changed_old_idx = filter_reachable(old, changed_old_idx);
        let changed_new_idx = filter_reachable(new, changed_new_idx);

        let snapshot = |branches: &[crate::CompiledBranch], idx: &[usize]| {
            idx.iter()
                .map(|&i| ChangedBranch {
                    pattern: branches[i].pattern().clone(),
                    regex: branches[i].regex().clone(),
                    transparent: branches[i].is_transparent(),
                })
                .collect::<Vec<_>>()
        };
        let changed_old = snapshot(old_branches, &changed_old_idx);
        let changed_new = snapshot(new_branches, &changed_new_idx);

        let has_opaque_change = changed_old
            .iter()
            .chain(&changed_new)
            .any(|b| !b.transparent);

        // One automaton over every changed transparent pattern, so
        // `affects_leaf` is a single classification pass regardless of how
        // many branches changed. Opaque changes make leaf-level retention
        // moot, so the matcher is only built in the all-transparent case.
        let transparent: Vec<&Pattern> = changed_old
            .iter()
            .chain(&changed_new)
            .filter(|b| b.transparent)
            .map(|b| &b.pattern)
            .collect();
        let (leaf_matcher, leaf_matcher_width) = if has_opaque_change || transparent.is_empty() {
            (None, 0)
        } else {
            let slots: Vec<Option<&Pattern>> = transparent.iter().copied().map(Some).collect();
            match FusedMatcher::build(None, &slots) {
                Ok(m) => (Some(m), transparent.len()),
                Err(_) => (None, 0),
            }
        };

        let delta = ProgramDelta {
            new_instance: new.instance(),
            target_changed,
            index_stable,
            changed_old,
            changed_new,
            has_opaque_change,
            leaf_matcher,
            leaf_matcher_width,
        };
        if let Some(sink) = sink {
            sink.counter(
                "engine.delta.branches_changed",
                delta.branches_changed() as u64,
            );
        }
        delta
    }

    /// Number of changed branch slots, counted on both sides: a removed or
    /// added branch counts once, a *modified* branch once per side (its old
    /// form and its new form are both live impact sources). Branches the
    /// facts intersection proved unreachable are not counted — they are
    /// skipped entirely.
    pub fn branches_changed(&self) -> usize {
        self.changed_old.len() + self.changed_new.len()
    }

    /// `true` when the two programs decide every value identically — same
    /// target, no changed branch slots (identical programs recompiled, or
    /// differing only in proven-unreachable branches).
    pub fn is_identity(&self) -> bool {
        !self.target_changed && self.changed_old.is_empty() && self.changed_new.is_empty()
    }

    /// `true` when the labelled target pattern changed (which affects
    /// every outcome).
    pub fn target_changed(&self) -> bool {
        self.target_changed
    }

    /// `true` when every branch shared by the two programs keeps its
    /// index — the precondition for retaining compiled dispatch plans,
    /// which embed branch indices in their steps.
    pub fn index_stable(&self) -> bool {
        self.index_stable
    }

    /// Instance id of the program the delta diffs *to*.
    pub(crate) fn new_instance(&self) -> u64 {
        self.new_instance
    }

    /// Can the new program decide the row behind `outcome` differently?
    ///
    /// `false` is a proof of stability (the outcome may be kept verbatim);
    /// `true` means "re-decide to find out" — the test is conservative for
    /// opaque changed branches, whose firing needs a per-value evaluation.
    /// Cost: one regex full-match per changed branch, worst case.
    pub fn affects_outcome(&self, outcome: &RowOutcome) -> bool {
        if self.target_changed {
            return true;
        }
        match outcome {
            // Conforming short-circuits before any branch runs: only a
            // target change can disturb it.
            RowOutcome::Conforming { .. } => false,
            // A flagged value matched no old branch; only a branch new to
            // this program can pick it up.
            RowOutcome::Flagged { value } => Self::any_match(&self.changed_new, value),
            // A transformed value re-decides if its (potential) old winner
            // was removed/modified, or a changed new branch could now win.
            RowOutcome::Transformed { from, .. } => {
                Self::any_match(&self.changed_old, from) || Self::any_match(&self.changed_new, from)
            }
        }
    }

    fn any_match(changed: &[ChangedBranch], value: &str) -> bool {
        changed.iter().any(|b| b.regex.is_full_match(value))
    }

    /// [`ProgramDelta::affects_outcome`], memoized per *leaf signature*.
    ///
    /// A transparent pattern matches a value iff it matches the value's
    /// leaf signature (`tokenize(value)`), so when every changed branch is
    /// transparent the per-value regex checks collapse to one fused
    /// classification per **distinct leaf** — `memo` carries the answers
    /// (old-side hit, new-side hit) across calls. On a report whose
    /// distincts share a handful of formats this turns the screening cost
    /// from O(distincts × changed-branch regex runs) into
    /// O(distincts × tokenize + leaves × classify), which is what lets
    /// [`crate::BatchReport::patch`] beat a full columnar re-run.
    ///
    /// Falls back to the exact per-value check when an opaque branch
    /// changed (opaque matching can distinguish values within one leaf) or
    /// the fused matcher declined a pattern. Answers are identical to
    /// [`ProgramDelta::affects_outcome`] either way.
    pub(crate) fn affects_outcome_memo(
        &self,
        outcome: &RowOutcome,
        memo: &mut HashMap<Pattern, (bool, bool)>,
    ) -> bool {
        if self.target_changed {
            return true;
        }
        let value = match outcome {
            RowOutcome::Conforming { .. } => return false,
            RowOutcome::Flagged { value } => value,
            RowOutcome::Transformed { from, .. } => from,
        };
        if self.leaf_matcher.is_none() || self.has_opaque_change {
            return self.affects_outcome(outcome);
        }
        let leaf = tokenize(value);
        let hits = match memo.get(&leaf) {
            Some(&hits) => hits,
            None => match self.screen_leaf(&leaf) {
                Some(hits) => {
                    memo.insert(leaf, hits);
                    hits
                }
                // Not a tokenizer-producible signature (cannot happen for
                // a leaf we just tokenized, but stay exact): per-value.
                None => return self.affects_outcome(outcome),
            },
        };
        self.hits_affect(outcome, hits)
    }

    /// Classify `leaf` against the changed-pattern matcher: `Some((old
    /// side hit, new side hit))` when every changed branch is transparent
    /// and the matcher accepted the leaf. `None` means the screen cannot
    /// answer (an opaque branch changed, the matcher declined a pattern,
    /// or `leaf` is not a tokenizer-producible signature) — callers fall
    /// back to the exact per-value [`ProgramDelta::affects_outcome`].
    pub(crate) fn screen_leaf(&self, leaf: &Pattern) -> Option<(bool, bool)> {
        let matcher = match (&self.leaf_matcher, self.has_opaque_change) {
            (Some(matcher), false) => matcher,
            _ => return None,
        };
        let run = matcher.classify(leaf)?;
        // All changed patterns are transparent here, so the matcher's
        // slots are `changed_old` followed by `changed_new`.
        let split = self.changed_old.len();
        Some((
            (0..split).any(|i| matcher.branch_matches(&run, i)),
            (split..self.leaf_matcher_width).any(|i| matcher.branch_matches(&run, i)),
        ))
    }

    /// Resolve a [`ProgramDelta::screen_leaf`] answer for `outcome`'s
    /// kind — the transparent-case equivalent of
    /// [`ProgramDelta::affects_outcome`] (a target change overrides the
    /// screen; callers check it first for the usual short-circuit).
    pub(crate) fn hits_affect(
        &self,
        outcome: &RowOutcome,
        (old_hit, new_hit): (bool, bool),
    ) -> bool {
        if self.target_changed {
            return true;
        }
        match outcome {
            RowOutcome::Conforming { .. } => false,
            RowOutcome::Flagged { .. } => new_hit,
            RowOutcome::Transformed { .. } => old_hit || new_hit,
        }
    }

    /// Can the new program decide *any* value with leaf signature `leaf`
    /// differently than a plan compiled for the old program would replay
    /// it? `false` additionally guarantees the old plan's steps are valid
    /// under the new program (indices stable, embedded branches
    /// identical), so the plan may be retained as-is.
    pub fn affects_leaf(&self, leaf: &Pattern) -> bool {
        if self.target_changed || !self.index_stable {
            return true;
        }
        if self.changed_old.is_empty() && self.changed_new.is_empty() {
            return false;
        }
        // Opaque branches sit in every plan as per-value checks; their
        // change can flip any leaf's rows.
        if self.has_opaque_change {
            return true;
        }
        match &self.leaf_matcher {
            Some(matcher) => match matcher.classify(leaf) {
                // `branch_matches` slot i is pattern i of the changed set
                // (the matcher was built with no target segment occupying
                // slot 0 — `FusedMatcher` still offsets internally).
                Some(run) => (0..self.leaf_matcher_width).any(|i| matcher.branch_matches(&run, i)),
                // Not a tokenizer-producible leaf signature: answer
                // conservatively rather than guess.
                None => true,
            },
            // Changed transparent patterns but no matcher (construction
            // fell back): conservative.
            None => true,
        }
    }
}

/// Drop the changed-branch indices whose branch the analyzer proves can
/// never fire in `program`.
fn filter_reachable(program: &CompiledProgram, changed: Vec<usize>) -> Vec<usize> {
    if changed.is_empty() {
        return changed;
    }
    let source = Program::new(
        program
            .branches()
            .iter()
            .map(|b| Branch::new(b.pattern().clone(), b.expr().clone()))
            .collect(),
    );
    let diagnostics = clx_analyze::analyze_program(&source, program.target());
    changed
        .into_iter()
        .filter(|&i| diagnostics.branch_facts(i).reachable)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};
    use clx_unifi::{Expr, StringExpr};

    fn compile(branches: Vec<Branch>, target: &str) -> CompiledProgram {
        CompiledProgram::compile(&Program::new(branches), &parse_pattern(target).unwrap())
            .expect("test programs compile")
    }

    fn extract_all(pattern: &Pattern) -> Expr {
        Expr::concat(vec![StringExpr::extract_range(1, pattern.len())])
    }

    #[test]
    fn identical_programs_are_an_identity_delta() {
        let p = tokenize("12-34");
        let a = compile(vec![Branch::new(p.clone(), extract_all(&p))], "<D>+'-'<D>+");
        let b = compile(vec![Branch::new(p.clone(), extract_all(&p))], "<D>+'-'<D>+");
        let delta = ProgramDelta::between(&a, &b);
        assert!(delta.is_identity());
        assert!(delta.index_stable());
        assert_eq!(delta.branches_changed(), 0);
        assert!(!delta.affects_outcome(&RowOutcome::Flagged { value: "xy".into() }));
        assert!(!delta.affects_leaf(&tokenize("12-34")));
    }

    #[test]
    fn target_change_affects_everything() {
        let p = tokenize("12-34");
        let a = compile(vec![Branch::new(p.clone(), extract_all(&p))], "<D>+'-'<D>+");
        let b = compile(vec![Branch::new(p.clone(), extract_all(&p))], "<D>+");
        let delta = ProgramDelta::between(&a, &b);
        assert!(delta.target_changed());
        assert!(delta.affects_outcome(&RowOutcome::Conforming { value: "1".into() }));
        assert!(delta.affects_leaf(&tokenize("zz")));
    }

    #[test]
    fn repaired_branch_affects_only_values_it_matches() {
        let digits = parse_pattern("<D>2'-'<D>2").unwrap();
        let letters = parse_pattern("<L>+").unwrap();
        let a = compile(
            vec![
                Branch::new(digits.clone(), extract_all(&digits)),
                Branch::new(letters.clone(), extract_all(&letters)),
            ],
            "<AN>+",
        );
        let b = compile(
            vec![
                Branch::new(
                    digits.clone(),
                    Expr::concat(vec![StringExpr::extract(1), StringExpr::extract(3)]),
                ),
                Branch::new(letters.clone(), extract_all(&letters)),
            ],
            "<AN>+",
        );
        let delta = ProgramDelta::between(&a, &b);
        assert!(!delta.is_identity());
        assert!(delta.index_stable(), "unchanged branch keeps its index");
        // Modified branch counts on both sides.
        assert_eq!(delta.branches_changed(), 2);
        // A value the repaired branch matches must re-decide...
        assert!(delta.affects_outcome(&RowOutcome::Transformed {
            from: "12-34".into(),
            to: "1234".into(),
        }));
        // ...one decided by the untouched branch must not...
        assert!(!delta.affects_outcome(&RowOutcome::Transformed {
            from: "abc".into(),
            to: "abc".into(),
        }));
        // ...and flagged values stay flagged unless a *new* branch could
        // pick them up (the repaired branch's new form matches "56-78").
        assert!(!delta.affects_outcome(&RowOutcome::Flagged { value: "!!".into() }));
        assert!(delta.affects_outcome(&RowOutcome::Flagged {
            value: "56-78".into()
        }));
        // Leaf-level: the digits leaf is affected, the letters leaf not.
        assert!(delta.affects_leaf(&tokenize("12-34")));
        assert!(!delta.affects_leaf(&tokenize("abc")));
    }

    #[test]
    fn inserted_branch_breaks_index_stability() {
        let digits = parse_pattern("<D>+").unwrap();
        let letters = parse_pattern("<L>+").unwrap();
        let a = compile(
            vec![Branch::new(letters.clone(), extract_all(&letters))],
            "<AN>+",
        );
        let b = compile(
            vec![
                Branch::new(digits.clone(), extract_all(&digits)),
                Branch::new(letters.clone(), extract_all(&letters)),
            ],
            "<AN>+",
        );
        let delta = ProgramDelta::between(&a, &b);
        assert!(!delta.index_stable(), "shared branch shifted from 0 to 1");
        assert_eq!(delta.branches_changed(), 1);
        // Index instability forfeits every leaf's plan...
        assert!(delta.affects_leaf(&tokenize("abc")));
        // ...but outcome-level impact stays sharp: only values the new
        // branch matches re-decide.
        assert!(delta.affects_outcome(&RowOutcome::Flagged { value: "99".into() }));
        assert!(!delta.affects_outcome(&RowOutcome::Transformed {
            from: "abc".into(),
            to: "abc".into(),
        }));
    }

    #[test]
    fn swapped_branch_order_is_conservatively_changed() {
        let d2 = parse_pattern("<D>2").unwrap();
        let dplus = parse_pattern("<D>+").unwrap();
        let a = compile(
            vec![
                Branch::new(d2.clone(), Expr::concat(vec![StringExpr::const_str("two")])),
                Branch::new(
                    dplus.clone(),
                    Expr::concat(vec![StringExpr::const_str("many")]),
                ),
            ],
            "<L>+",
        );
        let b = compile(
            vec![
                Branch::new(
                    dplus.clone(),
                    Expr::concat(vec![StringExpr::const_str("many")]),
                ),
                Branch::new(d2.clone(), Expr::concat(vec![StringExpr::const_str("two")])),
            ],
            "<L>+",
        );
        let delta = ProgramDelta::between(&a, &b);
        // "12" used to hit the <D>2 branch, now hits <D>+ first: the delta
        // must not call it unaffected.
        assert!(delta.affects_outcome(&RowOutcome::Transformed {
            from: "12".into(),
            to: "two".into(),
        }));
    }

    #[test]
    fn unreachable_changed_branches_are_skipped_entirely() {
        let dplus = parse_pattern("<D>+").unwrap();
        let d2 = parse_pattern("<D>2").unwrap();
        // <D>2 is shadowed by <D>+ in both programs: the analyzer proves
        // it unreachable, so editing it changes no outcome and the facts
        // intersection drops it from the changed sets.
        let a = compile(
            vec![
                Branch::new(
                    dplus.clone(),
                    Expr::concat(vec![StringExpr::const_str("n")]),
                ),
                Branch::new(d2.clone(), Expr::concat(vec![StringExpr::const_str("a")])),
            ],
            "<L>+",
        );
        let b = compile(
            vec![
                Branch::new(
                    dplus.clone(),
                    Expr::concat(vec![StringExpr::const_str("n")]),
                ),
                Branch::new(d2.clone(), Expr::concat(vec![StringExpr::const_str("b")])),
            ],
            "<L>+",
        );
        let delta = ProgramDelta::between(&a, &b);
        assert!(delta.is_identity(), "only a dead branch differs");
        assert_eq!(delta.branches_changed(), 0);
        assert!(!delta.affects_outcome(&RowOutcome::Transformed {
            from: "12".into(),
            to: "n".into(),
        }));
    }
}
